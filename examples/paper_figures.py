#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one command.

Uses :mod:`repro.paper`, the library's canonical encoding of the
evaluation section.  By default this runs a *quick* pass (shorter
simulations, fewer replications) so it finishes in about a minute; pass
``--full`` for the bench-grade fidelity used by EXPERIMENTS.md.

Run:  python examples/paper_figures.py [--full]
"""

import argparse
import time

from repro.paper import run_figure8, run_figure9, run_figure10, table1, table2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="bench-grade fidelity (sim_time=2000, up to 20 replications)",
    )
    args = parser.parse_args()

    if args.full:
        knobs = {"sim_time": 2000, "replications": (5, 20)}
    else:
        knobs = {"sim_time": 1000, "replications": (3, 6)}

    print(table1())
    print()
    print(table2())
    print()

    for name, runner in (
        ("Figure 8", run_figure8),
        ("Figure 9", run_figure9),
        ("Figure 10", run_figure10),
    ):
        start = time.time()
        figure = runner(**knobs)
        print(figure.table)
        print(f"[{name} regenerated in {time.time() - start:.1f}s]\n")


if __name__ == "__main__":
    main()
