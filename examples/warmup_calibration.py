#!/usr/bin/env python
"""Calibrating the warm-up period with Welch's procedure.

Every experiment in this framework (and in the paper's Mobius runs)
discards an initial warm-up before rewards accumulate.  Picking that
number by gut feel risks either biasing the steady state (too short)
or wasting simulation budget (too long).  Welch's procedure does it
honestly: average a transient-sensitive metric's time series over
replications, smooth it, and find where it settles.

This example also demonstrates a trap worth knowing: the per-tick
BUSY-VCPU count of the virtualization model is **phase-locked** — all
replications share the deterministic timeslice-rotation boundaries, so
the averaged raw series oscillates forever with the rotation period
and Welch correctly reports "never settles".  Binning observations by
one rotation period (timeslice x ceil(VCPUs / PCPUs) ticks) removes
the periodicity and reveals the true (tiny) transient.

Run:  python examples/warmup_calibration.py
"""

from repro.core import SystemSpec, VMSpec, build_system
from repro.des import StreamFactory
from repro.metrics import welch_warmup
from repro.san import SANSimulator
from repro.schedulers import VCPUStatus
from repro.vmm import slot_value_place

SPEC = SystemSpec(
    vms=[VMSpec(2), VMSpec(1), VMSpec(1)],
    pcpus=2,
    scheduler="rrs",
    sim_time=600,
    warmup=0,
)
REPLICATIONS = 6
HORIZON = 480
ROTATION = 30 * 2  # timeslice x (4 VCPUs / 2 PCPUs) = one full rotation


def busy_series(replication: int) -> list:
    """Per-tick number of BUSY VCPUs over one replication."""
    system = build_system(SPEC, replication=replication, root_seed=77)
    sim = SANSimulator(system, StreamFactory(77, replication))
    slots = [slot_value_place(system, g) for g in range(len(system.slot_map))]
    series = []
    for t in range(1, HORIZON + 1):
        sim.run(until=t + 0.5)
        series.append(
            sum(1.0 for s in slots if s.value["status"] == VCPUStatus.BUSY)
        )
    return series


def binned(series: list, width: int) -> list:
    """Averages over consecutive width-tick bins."""
    return [
        sum(series[i : i + width]) / width
        for i in range(0, len(series) - width + 1, width)
    ]


def main() -> None:
    print(f"collecting {REPLICATIONS} replications x {HORIZON} ticks ...")
    replications = [busy_series(rep) for rep in range(REPLICATIONS)]

    raw = welch_warmup(replications, window=10, tolerance=0.05)
    print(
        f"\nWelch on the raw per-tick series : {raw} / {HORIZON} ticks"
        "  <- 'never settles': the series is phase-locked to the"
        "\n                                   timeslice rotation, not transient!"
    )

    bins = [binned(series, ROTATION) for series in replications]
    averaged = [
        sum(series[i] for series in bins) / REPLICATIONS for i in range(len(bins[0]))
    ]
    print(f"\nper-rotation bins ({ROTATION} ticks each), replication-averaged:")
    for i, value in enumerate(averaged):
        print(f"  bin {i}  [{i * ROTATION + 1:4d}..{(i + 1) * ROTATION:4d}]  {value:.3f}")

    settled_bins = welch_warmup(bins, window=1, tolerance=0.05)
    recommendation = settled_bins * ROTATION
    print(f"\nWelch on the binned series: {settled_bins} bins")
    print(f"recommended warm-up       : {recommendation} ticks")
    print("repository default        : 200 ticks (for sim_time = 2000)")
    verdict = (
        "comfortably conservative"
        if recommendation <= 200
        else "TOO SHORT - raise it"
    )
    print(f"verdict on the default    : {verdict}")


if __name__ == "__main__":
    main()
