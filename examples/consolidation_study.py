#!/usr/bin/env python
"""Workload-consolidation study: useful work per host as VMs pile on.

The paper's introduction motivates VCPU scheduling with Cloud
consolidation: packing more VMs per host saves energy and money *if*
the scheduler keeps synchronization latency in check.  This study asks
the operator's question directly: on a 4-PCPU host running one 3-VCPU
VM plus a growing number of 2-VCPU VMs, how much of the host's
capacity does *useful work* under each scheduler?

Useful-work efficiency = total BUSY VCPU-ticks / (PCPUs x time): the
fraction of physical capacity spent processing, as opposed to idling
(SCS fragmentation) or spinning READY at barriers (RRS sync latency).

Run:  python examples/consolidation_study.py
"""

from repro.core import SystemSpec, VMSpec, WorkloadSpec, run_experiment
from repro.core.results import render_table

PCPUS = 4
BASE_VM = 3  # one 3-VCPU VM anchors the mix (heterogeneous shapes)
MAX_EXTRA = 5


def measure(scheduler: str, extra_vms: int):
    vms = [VMSpec(BASE_VM, WorkloadSpec(sync_ratio=5))]
    vms += [VMSpec(2, WorkloadSpec(sync_ratio=5)) for _ in range(extra_vms)]
    spec = SystemSpec(
        vms=vms,
        pcpus=PCPUS,
        scheduler=scheduler,
        sim_time=1500,
        warmup=200,
    )
    result = run_experiment(spec, min_replications=3, max_replications=8)
    total_vcpus = BASE_VM + 2 * extra_vms
    # busy/total per VCPU, averaged -> scale to host capacity.
    useful = result.mean("vcpu_busy_fraction") * total_vcpus / PCPUS
    return {
        "useful_work": useful,
        "pcpu_util": result.mean("pcpu_utilization"),
        "vcpu_util": result.mean("vcpu_utilization"),
        "availability": result.mean("vcpu_availability"),
    }


def main() -> None:
    best = {}
    for scheduler in ("rrs", "scs", "rcs"):
        rows = []
        for extra in range(1, MAX_EXTRA + 1):
            metrics = measure(scheduler, extra)
            total_vcpus = BASE_VM + 2 * extra
            rows.append(
                [
                    f"1x3 + {extra}x2",
                    total_vcpus,
                    f"{metrics['useful_work']:.3f}",
                    f"{metrics['pcpu_util']:.3f}",
                    f"{metrics['vcpu_util']:.3f}",
                ]
            )
            best.setdefault(extra, {})[scheduler] = metrics["useful_work"]
        print(
            render_table(
                ["mix", "VCPUs", "useful_work", "pcpu_util", "vcpu_util"],
                rows,
                title=f"Consolidation on {PCPUS} PCPUs under {scheduler}",
            )
        )
        print()

    rows = []
    for extra, per_scheduler in sorted(best.items()):
        winner = max(per_scheduler, key=per_scheduler.get)
        rows.append(
            [f"1x3 + {extra}x2"]
            + [f"{per_scheduler[s]:.3f}" for s in ("rrs", "scs", "rcs")]
            + [winner]
        )
    print(
        render_table(
            ["mix", "rrs", "scs", "rcs", "winner"],
            rows,
            title="Useful-work efficiency by consolidation level",
        )
    )
    print(
        "\nReading: at low consolidation SCS wastes capacity to fragmentation\n"
        "(low pcpu_util -> low useful work even though its per-VCPU\n"
        "utilization is best) while RCS keeps PCPUs full and skew bounded —\n"
        "the operator-facing version of the paper's 'RCS is better than\n"
        "SCS'.  At high consolidation the schedulers converge: with many\n"
        "runnable VMs, any work-conserving policy finds useful work."
    )


if __name__ == "__main__":
    main()
