#!/usr/bin/env python
"""Quickstart: build a virtualization system, simulate, read the metrics.

Mirrors the paper's workflow end to end in ~20 lines:

1. describe the VMs (the paper's Figure 8 setup: one 2-VCPU VM and two
   1-VCPU VMs, synchronization ratio 1:5);
2. pick a VCPU scheduling algorithm and the PCPU count;
3. run replicated simulations to 95% confidence;
4. read availability / utilization, exactly the paper's reward variables.

Run:  python examples/quickstart.py
"""

from repro.core import SystemSpec, VMSpec, WorkloadSpec, run_experiment
from repro.core.results import render_table


def main() -> None:
    spec = SystemSpec(
        vms=[
            VMSpec(vcpus=2, workload=WorkloadSpec(sync_ratio=5)),
            VMSpec(vcpus=1, workload=WorkloadSpec(sync_ratio=5)),
            VMSpec(vcpus=1, workload=WorkloadSpec(sync_ratio=5)),
        ],
        pcpus=2,
        scheduler="rrs",  # try "scs", "rcs", "balance", "credit", "fifo"
        sim_time=2000,
        warmup=200,
    )

    result = run_experiment(spec)  # replicates until 95% CI < 0.1
    print(f"experiment: {result.label}  ({result.replications} replications)\n")

    rows = []
    for vcpu in ("VCPU1.1", "VCPU1.2", "VCPU2.1", "VCPU3.1"):
        rows.append(
            [
                vcpu,
                str(result.estimates[f"vcpu_availability[{vcpu}]"]),
                str(result.estimates[f"vcpu_utilization[{vcpu}]"]),
            ]
        )
    print(render_table(["vcpu", "availability", "utilization"], rows))
    print()
    print(f"PCPU utilization (averaged): {result.estimates['pcpu_utilization']}")
    print(f"VCPU utilization (averaged): {result.estimates['vcpu_utilization']}")


if __name__ == "__main__":
    main()
