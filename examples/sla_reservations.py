#!/usr/bin/env python
"""SLA study: protecting a latency-sensitive VM with reservations.

The related work the paper cites compares Xen's schedulers
(Cherkasova et al. [8]) and proposes hybrid frameworks (Weng et
al. [7]); this example puts those extensions to work on an operator
problem: one *production* VM must keep ≥ 40% of a PCPU no matter how
many best-effort batch VMs are consolidated next to it.

We sweep the number of batch VMs on a single PCPU and compare:

* ``rrs`` / ``credit`` (equal weights) — the share dilutes as 1/n;
* ``credit`` with a heavy weight — proportional protection;
* ``sedf`` with a (100, 40) reservation — an absolute guarantee;
* ``hybrid`` with the production VM declared concurrent — gang
  semantics (irrelevant for 1 VCPU, shown for completeness of the
  scheduler family).

Run:  python examples/sla_reservations.py
"""

from repro.core import SystemSpec, VMSpec, WorkloadSpec, run_experiment
from repro.core.results import render_table

SLA = 0.40  # the production VM must keep >= 40% of the PCPU
MAX_BATCH = 5


def measure(scheduler: str, scheduler_params: dict, batch_vms: int) -> float:
    spec = SystemSpec(
        vms=[VMSpec(1, WorkloadSpec(sync_ratio=None))]  # production VM = vm 0
        + [VMSpec(1, WorkloadSpec(sync_ratio=None)) for _ in range(batch_vms)],
        pcpus=1,
        scheduler=scheduler,
        scheduler_params=scheduler_params,
        sim_time=1500,
        warmup=150,
    )
    result = run_experiment(spec, min_replications=3, max_replications=6)
    return result.mean("vcpu_availability[VCPU1.1]")


CONTENDERS = [
    ("rrs (no protection)", "rrs", {}),
    ("credit, equal weights", "credit", {}),
    ("credit, weight 4x", "credit", {"weights": {0: 4.0}}),
    ("sedf, reserve 40/100", "sedf", {
        "reservations": {0: (100, 40)},
        "default_reservation": (100, 10),
    }),
]


def main() -> None:
    rows = []
    sla_held = {label: True for label, _, _ in CONTENDERS}
    for batch in range(1, MAX_BATCH + 1):
        row = [batch]
        for label, scheduler, params in CONTENDERS:
            share = measure(scheduler, params, batch)
            if share < SLA:
                sla_held[label] = False
            marker = "" if share >= SLA else " !"
            row.append(f"{share:.3f}{marker}")
        rows.append(row)
    print(
        render_table(
            ["batch VMs"] + [label for label, _, _ in CONTENDERS],
            rows,
            title=(
                f"Production VM's PCPU share vs consolidation "
                f"(1 PCPU, SLA >= {SLA:.0%}; '!' = SLA violated)"
            ),
        )
    )
    print("\nSLA verdict across the whole sweep:")
    for label, held in sla_held.items():
        print(f"  {'PASS' if held else 'FAIL'}  {label}")
    print(
        "\nReading: equal-share schedulers dilute to 1/(n+1); a 4x credit\n"
        "weight stretches the SLA a few VMs further but still dilutes;\n"
        "SEDF's reservation is the only absolute guarantee — the batch\n"
        "class only ever splits the remaining 60%."
    )


if __name__ == "__main__":
    main()
