#!/usr/bin/env python
"""Plug in your own VCPU scheduling algorithm — the paper's headline flow.

The paper's framework exports a C call interface::

    bool schedule(VCPU_host_external* vcpus, int num_vcpu,
                  PCPU_external* pcpus, int num_pcpu, long timestamp)

Here the same interface is one Python function.  This example implements
a simple *priority boost* policy — VCPUs that have waited longest since
their last PCPU tenure get dispatched first — registers it, and races it
against round-robin and the two co-schedulers on the paper's Figure 8
setup.

Run:  python examples/custom_scheduler.py
"""

from repro.core import (
    SystemSpec,
    VMSpec,
    WorkloadSpec,
    register_schedule_function,
    run_experiment,
)
from repro.core.results import render_table


def longest_wait_first(vcpus, num_vcpu, pcpus, num_pcpu, timestamp):
    """Dispatch idle VCPUs in order of how long they have been off-CPU.

    ``vcpus`` and ``pcpus`` are in/out arrays; setting ``schedule_in``
    (plus optionally ``next_timeslice`` / ``next_pcpu``) on a view asks
    the framework to assign a PCPU this tick.
    """
    free = sum(1 for p in pcpus if p.idle)
    if free == 0:
        return False
    waiting = sorted(
        (v for v in vcpus if not v.active),
        key=lambda v: v.last_scheduled_in,  # oldest tenure first
    )
    for view in waiting[:free]:
        view.schedule_in = True
        view.next_timeslice = 30
    return bool(waiting)


def main() -> None:
    register_schedule_function("longest-wait", longest_wait_first)

    contenders = ["rrs", "scs", "rcs", "longest-wait"]
    rows = []
    for scheduler in contenders:
        spec = SystemSpec(
            vms=[VMSpec(2, WorkloadSpec(sync_ratio=5)),
                 VMSpec(1, WorkloadSpec(sync_ratio=5)),
                 VMSpec(1, WorkloadSpec(sync_ratio=5))],
            pcpus=2,
            scheduler=scheduler,
            sim_time=2000,
            warmup=200,
        )
        result = run_experiment(spec)
        rows.append(
            [
                scheduler,
                f"{result.mean('vcpu_availability'):.3f}",
                f"{result.mean('pcpu_utilization'):.3f}",
                f"{result.mean('vcpu_utilization'):.3f}",
            ]
        )
    print(
        render_table(
            ["scheduler", "availability", "pcpu_util", "vcpu_util"],
            rows,
            title="Custom scheduler vs the paper's three (VMs 2+1+1, 2 PCPUs)",
        )
    )
    print(
        "\nThe plugged-in 'longest-wait' policy is a round-robin variant, so\n"
        "its numbers should track rrs closely — now go make it smarter."
    )


if __name__ == "__main__":
    main()
