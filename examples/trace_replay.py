#!/usr/bin/env python
"""Sample-path-identical scheduler comparison via workload traces.

Seeded streams already make experiments *distributionally* identical
across schedulers.  This example goes one step further: it records the
exact (load, sync_point) job sequence one VM generated during a probe
run, then replays that literal trace under every scheduler — so any
metric difference is attributable to scheduling alone, job for job.

This is the virtualization analogue of trace-driven cache simulation,
and it demonstrates the :mod:`repro.workloads.traces` API: record with
``RecordingWorkloadModel``, persist with ``WorkloadTrace.save``, replay
with ``TraceWorkloadModel``.

Run:  python examples/trace_replay.py
"""

import random
import tempfile

from repro.core.results import render_table
from repro.des import StreamFactory
from repro.metrics import standard_rewards
from repro.san import SANSimulator
from repro.schedulers import BUILTIN_ALGORITHMS
from repro.vmm import build_virtual_system
from repro.workloads import (
    RecordingWorkloadModel,
    TraceWorkloadModel,
    WorkloadModel,
    WorkloadTrace,
)

SIM_TIME = 2000
WARMUP = 200
TOPOLOGY = (2, 3)  # the paper's hardest Figure 9/10 set
PCPUS = 4


def record_traces() -> list:
    """Probe run: record each VM's generated job sequence under RRS."""
    recorders = [RecordingWorkloadModel(WorkloadModel()) for _ in TOPOLOGY]
    system = build_virtual_system(
        list(zip(TOPOLOGY, recorders)),
        BUILTIN_ALGORITHMS["rrs"](),
        PCPUS,
        StreamFactory(root_seed=2024),
    )
    SANSimulator(system, StreamFactory(root_seed=2024)).run(until=SIM_TIME)
    return [recorder.recorded for recorder in recorders]


def replay(traces, scheduler_name: str) -> dict:
    """Replay the recorded traces under another scheduler."""
    workloads = [TraceWorkloadModel(trace) for trace in traces]
    system = build_virtual_system(
        list(zip(TOPOLOGY, workloads)),
        BUILTIN_ALGORITHMS[scheduler_name](),
        PCPUS,
        StreamFactory(root_seed=2024),
    )
    sim = SANSimulator(system, StreamFactory(root_seed=2024))
    rewards = standard_rewards(system, warmup=WARMUP)
    for reward in rewards.values():
        sim.add_reward(reward)
    sim.run(until=SIM_TIME)
    return {name: reward.result() for name, reward in rewards.items()}


def main() -> None:
    traces = record_traces()
    for vm_index, trace in enumerate(traces):
        print(
            f"VM{vm_index + 1}: recorded {len(trace)} jobs, "
            f"total load {trace.total_load()} ticks, "
            f"sync ratio {trace.sync_ratio():.2f}"
        )

    # Traces round-trip through JSON files (useful for sharing workloads).
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as handle:
        traces[0].save(handle.name)
        reloaded = WorkloadTrace.load(handle.name)
        assert reloaded.jobs == traces[0].jobs
        print(f"(trace for VM1 round-tripped through {handle.name})\n")

    rows = []
    for scheduler in ("rrs", "scs", "rcs", "balance"):
        metrics = replay(traces, scheduler)
        rows.append(
            [
                scheduler,
                f"{metrics['vcpu_availability']:.3f}",
                f"{metrics['pcpu_utilization']:.3f}",
                f"{metrics['vcpu_utilization']:.3f}",
            ]
        )
    print(
        render_table(
            ["scheduler", "availability", "pcpu_util", "vcpu_util"],
            rows,
            title=(
                f"Identical job sequences (VMs {'+'.join(map(str, TOPOLOGY))}, "
                f"{PCPUS} PCPUs), scheduling the only variable"
            ),
        )
    )


if __name__ == "__main__":
    # Keep stdlib RNG deterministic for the tempfile demo as well.
    random.seed(0)
    main()
