#!/usr/bin/env python
"""A tour of the model-analysis tooling: structure, reachability, exactness.

The paper's §V closes with two wishes — debugging correctness problems
and "evaluating the fidelity of the model".  This example walks the
three tools that answer them:

1. **Structure** — export any model (here: the 2-VCPU Virtual Machine
   of Figure 2) to Graphviz DOT and print its Table-1 join places.
2. **Reachability** — enumerate every reachable settled marking of a
   small virtualization system, prove it deadlock-free, and check a
   structural invariant in *all* states (not just a sampled path).
3. **Exactness** — solve an M/M/c/K queue analytically with the CTMC
   solver and show the simulator lands on the same number.

Run:  python examples/model_inspection.py
"""

import random
import tempfile

from repro.des import (
    Deterministic,
    Exponential,
    MarkingDependentExponential,
    StreamFactory,
)
from repro.san import (
    CTMCSolver,
    InputGate,
    OutputGate,
    Place,
    RateReward,
    ReachabilityAnalyzer,
    SANModel,
    SANSimulator,
    TimedActivity,
    save_dot,
)
from repro.schedulers import RoundRobinScheduler, VCPUStatus
from repro.vmm import build_virtual_system, build_vm_model
from repro.workloads import NoSync, WorkloadModel


def part1_structure() -> None:
    print("== 1. Structure: DOT export + join places ==")
    vm = build_vm_model("VM_2VCPU_1", 2, WorkloadModel(), random.Random(0))
    with tempfile.NamedTemporaryFile("w", suffix=".dot", delete=False) as handle:
        save_dot(vm, handle.name, title="Virtual Machine (paper Fig. 2)")
        print(f"DOT graph written to {handle.name}  (render: dot -Tsvg)")
    print("join places (paper Table 1):")
    for row in vm.join_place_table():
        members = ", ".join(row["submodel_variables"])
        print(f"  {row['state_variable']:16s} <- {members}")
    print()


def part2_reachability() -> None:
    print("== 2. Reachability: deadlock freedom + invariants ==")
    system = build_virtual_system(
        [(1, WorkloadModel(Deterministic(2), NoSync()))],
        RoundRobinScheduler(timeslice=3),
        1,
        StreamFactory(0),
    )
    unbounded = ("Timestamp", "Num_Generated", "Last_Scheduled_In", "Spin_ticks")
    analyzer = ReachabilityAnalyzer(
        system,
        max_states=5000,
        ignore_place=lambda name: any(name.endswith(s) for s in unbounded),
    )
    count = analyzer.explore()
    print(f"reachable settled markings : {count}")
    print(f"deadlocks                  : {len(analyzer.deadlocks())}")
    slot = system.place("VCPU_Scheduler.VCPU1_slot")
    ready = system.place("VM_1VCPU_1.Num_VCPUs_ready")
    violations = analyzer.check_invariant(
        lambda: ready.tokens == (1 if slot.value["status"] == VCPUStatus.READY else 0)
    )
    print(f"ready-counter invariant    : {'holds in all states' if not violations else 'VIOLATED'}")
    print()


def part3_exactness() -> None:
    print("== 3. Exactness: CTMC vs simulation on M/M/2/6 ==")

    def build():
        m = SANModel("mm26")
        queue = m.add_place(Place("queue"))
        m.add_activity(
            TimedActivity(
                "arrive",
                Exponential(2.0),
                input_gates=[InputGate("space", lambda: queue.tokens < 6)],
                output_gates=[OutputGate("enq", queue.add)],
            )
        )
        m.add_activity(
            TimedActivity(
                "serve",
                MarkingDependentExponential(lambda: 1.0 * min(2, queue.tokens)),
                input_gates=[InputGate("busy", lambda: queue.tokens > 0)],
                output_gates=[OutputGate("deq", queue.remove)],
                reactivation=True,  # rate must track the marking
            )
        )
        return m, queue

    model, queue = build()
    solver = CTMCSolver(model)
    solver.explore()
    exact = solver.expected_reward(lambda: float(queue.tokens))
    print(f"exact mean jobs in system  : {exact:.4f}   ({solver.num_states} states)")

    model2, queue2 = build()
    sim = SANSimulator(model2, StreamFactory(42))
    reward = sim.add_reward(RateReward("n", lambda: float(queue2.tokens), warmup=500))
    sim.run(until=50_000)
    measured = reward.time_average()
    print(f"simulated (50k time units) : {measured:.4f}")
    print(f"relative error             : {abs(measured - exact) / exact:.2%}")


def main() -> None:
    part1_structure()
    part2_reachability()
    part3_exactness()


if __name__ == "__main__":
    main()
