#!/usr/bin/env python
"""ASCII Gantt charts: watch each scheduler make its decisions.

Renders the first 180 ticks of the paper's Figure 8 system (VMs 2+1+1)
on a ONE-PCPU host — the setup where the three algorithms diverge most
— as one timeline row per VCPU:

    #  BUSY      (processing on a PCPU)
    =  READY     (holding a PCPU, idle — barrier wait or no job)
    .  INACTIVE  (descheduled)

The signatures are visible at a glance: RRS rotates all four VCPUs
evenly; SCS never schedules the 2-VCPU VM at all (its first two rows
are solid dots — Figure 8's zero-availability result); RCS schedules
it but truncates its turns when the sibling skew trips the threshold.
`=` runs mark synchronization latency: a VCPU holding the PCPU while
its VM waits at a barrier for a descheduled sibling.

Run:  python examples/schedule_gantt.py
"""

from repro.core import SystemSpec, VMSpec, WorkloadSpec, build_system
from repro.des import StreamFactory
from repro.metrics import StateTimeline
from repro.san import SANSimulator
from repro.vmm import vcpu_label

TOPOLOGY = (2, 1, 1)
PCPUS = 1
HORIZON = 180
GLYPHS = {"BUSY": "#", "READY": "=", "INACTIVE": "."}


def timeline_for(scheduler: str) -> StateTimeline:
    spec = SystemSpec(
        vms=[VMSpec(n, WorkloadSpec(sync_ratio=3)) for n in TOPOLOGY],
        pcpus=PCPUS,
        scheduler=scheduler,
        sim_time=HORIZON + 10,
        warmup=0,
    )
    system = build_system(spec, replication=0, root_seed=5)
    sim = SANSimulator(system, StreamFactory(5, 0))
    timeline = StateTimeline(system)
    for t in range(1, HORIZON + 1):
        sim.run(until=t + 0.5)
        timeline.sample(t)
    timeline.labels = [vcpu_label(system, g) for g in range(len(system.slot_map))]
    return timeline


def render(timeline: StateTimeline, title: str) -> None:
    print(title)
    print("-" * len(title))
    for label in timeline.labels:
        series = timeline.series(label)
        row = "".join(GLYPHS[state] for state in series)
        active = timeline.active_fraction(label)
        print(f"{label:8s} {row}  [{active:.0%} active]")
    print()


def main() -> None:
    print(__doc__.split("Run:")[0])
    for scheduler in ("rrs", "scs", "rcs"):
        render(
            timeline_for(scheduler),
            f"{scheduler.upper()} on VMs 2+1+1, {PCPUS} PCPUs, sync 1:3 "
            f"(first {HORIZON} ticks)",
        )
    print("Legend: # BUSY   = READY (holding a PCPU, stalled/idle)   . INACTIVE")


if __name__ == "__main__":
    main()
