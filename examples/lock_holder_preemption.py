#!/usr/bin/env python
"""Lock-holder preemption: the paper's §II.B story, measured.

"Most critical sections in an OS kernel are non-preemptible as they
are designed to finish quickly ... However, VCPU scheduling is usually
unaware of guest preemptions [the semantic gap]; it may preempt a VCPU
which is in the middle of executing a critical section.  This causes
other threads, waiting on the same lock in other VCPUs, to wait
additional time."

This example uses the framework's critical-section extension (the §V
future-work item: richer synchronization than barriers): jobs
periodically execute inside a VM-wide spinlock; a preempted holder
keeps the lock, and sibling VCPUs *spin* — burning PCPU time with no
progress — until it returns and finishes.  We measure, per scheduler:

* spin_fraction — time the average VCPU wastes spinning;
* goodput       — productive BUSY time over ACTIVE time;
* spins per VCPU (raw counters).

Expected: co-scheduling (SCS/RCS) shrinks spin waste relative to the
sibling-oblivious schedulers (RRS/credit), because holder and waiter
are preempted and resumed together — the quantitative version of the
paper's motivation for co-scheduling.

Run:  python examples/lock_holder_preemption.py
"""

from repro.core.results import render_table
from repro.des import StreamFactory, UniformInt
from repro.metrics import mean_goodput, mean_spin_fraction, spin_tick_counts
from repro.san import SANSimulator
from repro.schedulers import BUILTIN_ALGORITHMS
from repro.vmm import build_virtual_system
from repro.workloads import LockingWorkloadModel

TOPOLOGY = (2, 3)
PCPUS = 4
CRITICAL_RATIO = 2  # every other job enters the critical section
SIM_TIME = 2000
WARMUP = 200
REPLICATIONS = 5


def measure(scheduler: str) -> dict:
    spin_total = goodput_total = 0.0
    spins = None
    for rep in range(REPLICATIONS):
        workloads = [
            LockingWorkloadModel(
                UniformInt(3, 8),
                critical_ratio=CRITICAL_RATIO,
                critical_load=UniformInt(2, 5),
            )
            for _ in TOPOLOGY
        ]
        system = build_virtual_system(
            list(zip(TOPOLOGY, workloads)),
            BUILTIN_ALGORITHMS[scheduler](),
            PCPUS,
            StreamFactory(7, rep),
        )
        sim = SANSimulator(system, StreamFactory(7, rep))
        spin = sim.add_reward(mean_spin_fraction(system, warmup=WARMUP))
        goodput = sim.add_reward(mean_goodput(system, warmup=WARMUP))
        sim.run(until=SIM_TIME)
        spin_total += spin.result() / REPLICATIONS
        goodput_total += goodput.result() / REPLICATIONS
        spins = spin_tick_counts(system)  # last replication, illustrative
    return {"spin": spin_total, "goodput": goodput_total, "counts": spins}


def main() -> None:
    rows = []
    results = {}
    for scheduler in ("rrs", "credit", "balance", "rcs", "scs"):
        metrics = measure(scheduler)
        results[scheduler] = metrics
        rows.append(
            [scheduler, f"{metrics['spin']:.3f}", f"{metrics['goodput']:.3f}"]
        )
    print(
        render_table(
            ["scheduler", "spin_fraction", "goodput"],
            rows,
            title=(
                f"Lock-holder preemption (VMs {'+'.join(map(str, TOPOLOGY))}, "
                f"{PCPUS} PCPUs, critical sections 1:{CRITICAL_RATIO})"
            ),
        )
    )
    improvement = results["rrs"]["spin"] / max(results["scs"]["spin"], 1e-9)
    print(
        f"\nSCS spins {improvement:.1f}x less than RRS: co-stopping the gang\n"
        "means a lock holder is never off-CPU while a sibling spins —\n"
        "exactly why VMware adopted co-scheduling (paper refs [2, 3])."
    )
    print("\nRaw spin counters (one RRS replication):")
    print("  ", results["rrs"]["counts"])


if __name__ == "__main__":
    main()
