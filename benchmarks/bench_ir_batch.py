"""Vectorized IR batch-kernel benchmark (the PR 9 acceptance bench).

Runs R replications of the fully-IR Fig-8 reference model
(:mod:`repro.san.refmodels`) through ``run_lanes`` — which hands a
fully-IR lane set to the vectorized kernel runner
(:mod:`repro.san.vector`), advancing all lanes through one
``(R, n_places)`` int64 matrix — against the same R replications run
serially on the compiled engine.  Interleaved best-of-``reps`` wall
clock, per-lane exact-``==`` comparison of rewards, completions and
final markings, and a machine-readable report (``BENCH_pr9.json``).

This is where the batch engine's original 5x aspiration is cashed in:
PR 7's wave loop could only reach parity because the real Fig-8 model's
gates are opaque Python closures (the scheduling function is
irreducibly procedural), leaving per-lane work irreducible.  The
expression IR removes that wall for models that declare their gates —
every predicate, effect, and reward rate evaluates for all R lanes in
a handful of numpy operations instead of R Python interpreter passes.
The CI gate is ``--fail-under 3.0`` (headroom for noisy shared
runners); the report records the 5x headline target and which side of
it the run landed on.
"""

import argparse
import json
import sys
import time

from repro.des.random_streams import StreamFactory
from repro.san import build_simulator, run_lanes
from repro.san.refmodels import build_ir_reference_model, reference_rewards

MODEL_PARAMS = {
    "topology": (2, 2, 2, 2),
    "num_pcpus": 2,
    "timeslice": 3,
    "job_size": 5,
    "arrival_mean": 6.0,
    "mtbf": 400.0,
    "mttr": 25.0,
}
SPEEDUP_TARGET = 5.0
ROOT_SEED = 0


def _build(engine, replication, warmup):
    model = build_ir_reference_model(**MODEL_PARAMS)
    rewards = reference_rewards(
        model, num_pcpus=MODEL_PARAMS["num_pcpus"], warmup=warmup
    )
    sim = build_simulator(
        model, StreamFactory(root_seed=ROOT_SEED, replication=replication),
        engine=engine,
    )
    for reward in rewards:
        sim.add_reward(reward)
    return sim, rewards, model


def _observe(sim, rewards, model):
    return {
        "completions": sim.completions,
        "metrics": {r.name: r.result() for r in rewards},
        "marking": {n: p.tokens for n, p in model.places().items()},
    }


def _sample_serial(replications, sim_time, warmup):
    """Time the serial runs only; construction is identical on both
    sides (every sample rebuilds fresh simulators either way) and is
    reported separately as ``build_seconds``."""
    built = time.perf_counter()
    bound = [_build("compiled", r, warmup) for r in replications]
    start = time.perf_counter()
    for sim, _rewards, _model in bound:
        sim.run(sim_time)
    wall = time.perf_counter() - start
    return {
        "wall_seconds": wall,
        "build_seconds": start - built,
        "runs": [_observe(*item) for item in bound],
    }


def _sample_vector(replications, sim_time, warmup):
    built = time.perf_counter()
    bound = [_build("batch", r, warmup) for r in replications]
    lanes = [sim for sim, _rewards, _model in bound]
    start = time.perf_counter()
    stats = run_lanes(lanes, sim_time)
    wall = time.perf_counter() - start
    return {
        "wall_seconds": wall,
        "build_seconds": start - built,
        "runs": [_observe(*item) for item in bound],
        "stats": stats,
    }


def _measure(sim_time, replications, warmup, reps):
    """Interleaved best-of-``reps``: alternate A/B order per round."""
    indices = range(replications)
    samplers = [
        ("compiled", lambda: _sample_serial(indices, sim_time, warmup)),
        ("batch", lambda: _sample_vector(indices, sim_time, warmup)),
    ]
    best = {}
    for round_index in range(max(1, reps)):
        ordered = samplers if round_index % 2 == 0 else samplers[::-1]
        for name, sampler in ordered:
            sample = sampler()
            if name not in best or sample["wall_seconds"] < best[name]["wall_seconds"]:
                best[name] = sample
    lanes_identical = [
        fast == reference
        for fast, reference in zip(best["batch"]["runs"], best["compiled"]["runs"])
    ]
    compiled_wall = best["compiled"]["wall_seconds"]
    batch_wall = best["batch"]["wall_seconds"]
    return {
        "compiled_wall_seconds": compiled_wall,
        "batch_wall_seconds": batch_wall,
        "build_seconds": {
            "compiled": best["compiled"]["build_seconds"],
            "batch": best["batch"]["build_seconds"],
        },
        "batch_over_compiled": (
            compiled_wall / batch_wall if batch_wall > 0 else float("inf")
        ),
        "per_replication_ms": {
            "compiled": 1000.0 * compiled_wall / replications,
            "batch": 1000.0 * batch_wall / replications,
        },
        "vectorized": best["batch"]["stats"].get("vectorized", 0) == 1,
        "lanes": [{"bit_identical": flag} for flag in lanes_identical],
        "bit_identical": all(lanes_identical),
    }


def compare_ir_batch(sim_time=1000, replications=192, warmup=100, reps=3):
    """Vectorized batch vs serial compiled on the IR model; report dict."""
    result = _measure(sim_time, replications, warmup, reps)
    return {
        "benchmark": "ir-vectorized-batch-engine",
        "config": {
            "model": "san.refmodels.build_ir_reference_model",
            "model_params": {
                key: list(value) if isinstance(value, tuple) else value
                for key, value in MODEL_PARAMS.items()
            },
            "sim_time": sim_time,
            "replications": replications,
            "warmup": warmup,
            "reps": reps,
            "root_seed": ROOT_SEED,
        },
        "results": result,
        "summary": {
            "speedup_target": SPEEDUP_TARGET,
            "speedup": result["batch_over_compiled"],
            "target_met": result["batch_over_compiled"] >= SPEEDUP_TARGET,
            "vectorized": result["vectorized"],
            "all_bit_identical": result["bit_identical"],
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Vectorized IR batch kernels vs serial compiled runs"
    )
    parser.add_argument("--out", default="BENCH_pr9.json", help="report path")
    parser.add_argument("--sim-time", type=int, default=1000)
    parser.add_argument("--replications", type=int, default=192)
    parser.add_argument("--warmup", type=int, default=100)
    parser.add_argument("--reps", type=int, default=3, help="best-of-N wall clock")
    parser.add_argument(
        "--fail-under",
        type=float,
        default=None,
        help="exit 1 if batch-over-compiled falls below this; CI uses 3.0 "
        "(5x is the headline target, gated with headroom for runner noise)",
    )
    args = parser.parse_args(argv)

    report = compare_ir_batch(
        sim_time=args.sim_time,
        replications=args.replications,
        warmup=args.warmup,
        reps=args.reps,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    result = report["results"]
    summary = report["summary"]
    print(
        f"ir-batch: {result['batch_over_compiled']:.2f}x over serial compiled "
        f"({result['per_replication_ms']['batch']:.2f} vs "
        f"{result['per_replication_ms']['compiled']:.2f} ms/replication), "
        f"vectorized={result['vectorized']}, "
        f"bit_identical={result['bit_identical']}"
    )
    print(
        f"target: {summary['speedup']:.2f}x achieved vs "
        f"{summary['speedup_target']:.1f}x headline "
        f"(target_met={summary['target_met']}), wrote {args.out}"
    )

    if not summary["vectorized"]:
        print("FAIL: the IR model fell back to the wave loop", file=sys.stderr)
        return 1
    if not summary["all_bit_identical"]:
        print("FAIL: batch diverged from serial compiled", file=sys.stderr)
        return 1
    if args.fail_under is not None and summary["speedup"] < args.fail_under:
        print(
            f"FAIL: batch-over-compiled {summary['speedup']:.2f}x below "
            f"--fail-under {args.fail_under}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
