"""Replication-batched engine benchmark (the PR 7 acceptance bench).

Runs R replications of the Figure 8 shape through ``simulate_batch``
(the batch engine's wave-loop lane driver, one shared calendar) against
the same R replications through serial ``simulate_once`` on the
compiled engine, interleaved best-of-``reps``, and writes a
machine-readable report (``BENCH_pr7.json``).

The gated configuration is rcs — the shape where the compiled engine's
clock-tick fast-forward never engages (per-tick skew bookkeeping means
no tick is skippable), so the comparison measures the lane driver
itself rather than riding the fast-forward win.  rrs is reported
alongside for the fast-forward-heavy regime.

Honest accounting: the issue's aspirational target for this bench is a
5x speedup from cross-replication numpy vectorization.  Gate predicates
and reward functions are opaque Python closures over mutable place
cells, so per-lane work is irreducible without breaking the plugin
contract — profiling shows the per-tick refresh churn is genuine
invalidation, evenly spread across VM activities.  What batching
delivers is a shared calendar, one wave loop, and grouped dispatch
(fewer scheduler round-trips in the sweep engine) at parity-or-better
wall clock.  The report records both the target and the achieved ratio
(``target_met`` says which side of 5x we landed on); the CI gate is
``--fail-under 0.9`` — parity with compiled, with a 10% allowance for
host noise (observed run-to-run swing on shared runners is ~±5%; batch
must never be *materially* slower than compiled).
"""

import argparse
import json
import sys
import time

from repro.core import SystemSpec, VMSpec, simulate_once
from repro.core.framework import simulate_batch

FIG8_TOPOLOGY = (2, 2, 2, 2)
FIG8_PCPUS = 2

#: rcs is the gated no-fast-forward shape; rrs shows the FF regime.
SCHEDULERS = ("rcs", "rrs")
GATED_SCHEDULER = "rcs"
SPEEDUP_TARGET = 5.0


def _fig8_spec(scheduler, sim_time):
    return SystemSpec(
        vms=[VMSpec(n) for n in FIG8_TOPOLOGY],
        pcpus=FIG8_PCPUS,
        scheduler=scheduler,
        sim_time=sim_time,
        warmup=0,
    )


def _sample_serial(spec, replications):
    start = time.perf_counter()
    runs = [
        simulate_once(spec, replication=rep, root_seed=0, engine="compiled")
        for rep in replications
    ]
    elapsed = time.perf_counter() - start
    return {"wall_seconds": elapsed, "runs": runs}


def _sample_batch(spec, replications, width):
    start = time.perf_counter()
    runs = simulate_batch(
        spec, list(replications), root_seed=0, width=width
    )
    elapsed = time.perf_counter() - start
    return {"wall_seconds": elapsed, "runs": runs}


def _measure(scheduler, sim_time, replications, width, reps):
    """Best-of-``reps`` for both paths, measured interleaved.

    Interleaving (compiled, batch, compiled, ...) keeps background-load
    drift from systematically favouring one side of the ratio.
    """
    spec = _fig8_spec(scheduler, sim_time)
    indices = range(replications)
    samplers = [
        ("compiled", lambda: _sample_serial(spec, indices)),
        ("batch", lambda: _sample_batch(spec, indices, width)),
    ]
    best = {}
    for round_index in range(max(1, reps)):
        # Alternate the A/B order each round: under monotone host drift
        # (thermal throttling) a fixed order biases whichever side runs
        # later in the pair.
        ordered = samplers if round_index % 2 == 0 else samplers[::-1]
        for name, sampler in ordered:
            sample = sampler()
            if name not in best or sample["wall_seconds"] < best[name]["wall_seconds"]:
                best[name] = sample
    bit_identical = all(
        fast.metrics == reference.metrics
        and fast.completions == reference.completions
        for fast, reference in zip(best["batch"]["runs"], best["compiled"]["runs"])
    )
    compiled_wall = best["compiled"]["wall_seconds"]
    batch_wall = best["batch"]["wall_seconds"]
    speedup = compiled_wall / batch_wall if batch_wall > 0 else float("inf")
    return {
        "compiled_wall_seconds": compiled_wall,
        "batch_wall_seconds": batch_wall,
        "batch_over_compiled": speedup,
        "per_replication_ms": {
            "compiled": 1000.0 * compiled_wall / replications,
            "batch": 1000.0 * batch_wall / replications,
        },
        "bit_identical": bit_identical,
    }


def compare_batch(sim_time=2000, replications=8, width=8, reps=3,
                  schedulers=SCHEDULERS):
    """Batch vs serial-compiled over R replications; full report dict."""
    results = {
        scheduler: _measure(scheduler, sim_time, replications, width, reps)
        for scheduler in schedulers
    }
    gated = results[GATED_SCHEDULER]
    return {
        "benchmark": "batch-replication-engine",
        "config": {
            "topology": list(FIG8_TOPOLOGY),
            "pcpus": FIG8_PCPUS,
            "sim_time": sim_time,
            "replications": replications,
            "batch_width": width,
            "reps": reps,
            "schedulers": list(schedulers),
            "gated_scheduler": GATED_SCHEDULER,
            "root_seed": 0,
        },
        "results": results,
        "summary": {
            "speedup_target": SPEEDUP_TARGET,
            "gated_speedup": gated["batch_over_compiled"],
            "target_met": gated["batch_over_compiled"] >= SPEEDUP_TARGET,
            "min_speedup": min(
                r["batch_over_compiled"] for r in results.values()
            ),
            "all_bit_identical": all(
                r["bit_identical"] for r in results.values()
            ),
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Compare the batch engine against serial compiled runs"
    )
    parser.add_argument("--out", default="BENCH_pr7.json", help="report path")
    parser.add_argument("--sim-time", type=int, default=2000)
    parser.add_argument("--replications", type=int, default=8)
    parser.add_argument("--width", type=int, default=8, help="lanes per group")
    parser.add_argument("--reps", type=int, default=3, help="best-of-N wall clock")
    parser.add_argument(
        "--fail-under",
        type=float,
        default=None,
        help="exit 1 if batch-over-compiled falls below this on the gated "
        "(no-fast-forward) scheduler; CI uses 0.9 = parity within noise",
    )
    args = parser.parse_args(argv)

    report = compare_batch(
        sim_time=args.sim_time,
        replications=args.replications,
        width=args.width,
        reps=args.reps,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for scheduler, entry in report["results"].items():
        print(
            f"{scheduler}: batch {entry['batch_over_compiled']:.2f}x over "
            f"serial compiled ({entry['per_replication_ms']['batch']:.1f} vs "
            f"{entry['per_replication_ms']['compiled']:.1f} ms/replication), "
            f"bit_identical={entry['bit_identical']}"
        )
    summary = report["summary"]
    print(
        f"gated ({GATED_SCHEDULER}): {summary['gated_speedup']:.2f}x achieved "
        f"vs {summary['speedup_target']:.1f}x target "
        f"(target_met={summary['target_met']}), wrote {args.out}"
    )

    if not summary["all_bit_identical"]:
        print("FAIL: batch diverged from serial compiled", file=sys.stderr)
        return 1
    if args.fail_under is not None and summary["gated_speedup"] < args.fail_under:
        print(
            f"FAIL: gated batch-over-compiled {summary['gated_speedup']:.2f}x "
            f"below --fail-under {args.fail_under}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
