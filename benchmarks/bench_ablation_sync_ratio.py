"""Ablation: synchronization-rate sensitivity, per scheduler.

Section III.B.3 singles out the sync ratio as "one important parameter
[that] affects the efficiency of synchronization latency solutions".
This bench extends Figure 10's 1:5 -> 1:2 sweep to a wider range and
to both sync-point generation policies (deterministic every-k versus
Bernoulli 1/k), checking that the co-scheduling advantage grows with
the rate and is robust to the policy choice.
"""

from repro.core import SystemSpec, VMSpec, WorkloadSpec, run_experiment
from repro.core.results import render_table

from conftest import bench_params

RATIOS = (10, 5, 3, 2)
TOPOLOGY = (2, 3)


def measure(scheduler, ratio, sync_kind, params):
    spec = SystemSpec(
        vms=[VMSpec(n, WorkloadSpec(sync_ratio=ratio, sync_kind=sync_kind)) for n in TOPOLOGY],
        pcpus=4,
        scheduler=scheduler,
        sim_time=params["sim_time"],
        warmup=200,
    )
    result = run_experiment(
        spec,
        min_replications=params["replications"][0],
        max_replications=params["replications"][1],
    )
    return result.mean("vcpu_utilization")


def run_sweep():
    params = bench_params()
    rows = []
    values = {}
    for ratio in RATIOS:
        for sync_kind in ("deterministic", "bernoulli"):
            row = [f"1:{ratio}", sync_kind]
            for scheduler in ("rrs", "scs", "rcs"):
                value = measure(scheduler, ratio, sync_kind, params)
                values[(scheduler, ratio, sync_kind)] = value
                row.append(f"{value:.3f}")
            rows.append(row)
    table = render_table(
        ["sync", "policy", "rrs", "scs", "rcs"],
        rows,
        title="Ablation: sync-rate sensitivity (VMs 2+3, 4 PCPUs, VCPU utilization)",
    )
    return values, table


def test_sync_ratio_ablation(benchmark, save_artifact):
    values, table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    save_artifact("ablation_sync_ratio", table)
    print("\n" + table)

    # The co-scheduling advantage over RRS grows with the sync rate.
    gap_low = values[("scs", 10, "deterministic")] - values[("rrs", 10, "deterministic")]
    gap_high = values[("scs", 2, "deterministic")] - values[("rrs", 2, "deterministic")]
    assert gap_high > 0

    # RRS degrades monotonically (within noise) as barriers densify.
    rrs = [values[("rrs", r, "deterministic")] for r in RATIOS]
    assert rrs[0] > rrs[-1]

    # The qualitative ordering survives the Bernoulli policy too.
    assert values[("scs", 2, "bernoulli")] > values[("rrs", 2, "bernoulli")] - 0.02
