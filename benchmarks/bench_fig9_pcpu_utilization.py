"""Reproduce Figure 9: averaged PCPU utilization (paper §IV.B).

Setup: three VM sets — (2+2), (2+3), (2+4) VCPUs — on four PCPUs,
sync rate 1:5.  Shape assertions (§IV.B):

* when VCPUs > PCPUs, the co-schedulers cannot fully utilize the
  PCPUs (the CPU fragmentation problem);
* relaxed co-scheduling mitigates it, always above 90%;
* RRS (work conserving) stays at full utilization.
"""

import pytest

from repro.paper import run_figure9

from conftest import bench_params


def utilization(figure, scheduler, vm_set):
    return figure.by_params(scheduler=scheduler, vm_set=vm_set).mean("pcpu_utilization")


def test_figure9(benchmark, save_artifact):
    figure = benchmark.pedantic(
        lambda: run_figure9(**bench_params()), rounds=1, iterations=1
    )
    save_artifact("figure9_pcpu_utilization", figure.table)
    print("\n" + figure.table)

    # Set 1 (4 VCPUs on 4 PCPUs): everyone is full.
    for scheduler in ("rrs", "scs", "rcs"):
        assert utilization(figure, scheduler, "set1 (2+2)") == pytest.approx(1.0, abs=0.02)

    for vm_set in ("set2 (2+3)", "set3 (2+4)"):
        rrs = utilization(figure, "rrs", vm_set)
        rcs = utilization(figure, "rcs", vm_set)
        scs = utilization(figure, "scs", vm_set)
        # RRS stays full; SCS fragments; RCS stays above the paper's 90%.
        assert rrs == pytest.approx(1.0, abs=0.02)
        assert scs < 0.85
        assert rcs > 0.9
        assert rcs > scs

    # The analytic fragmentation levels: (2/4 + 3/4)/2 and (2/4 + 4/4)/2.
    assert utilization(figure, "scs", "set2 (2+3)") == pytest.approx(0.625, abs=0.04)
    assert utilization(figure, "scs", "set3 (2+4)") == pytest.approx(0.75, abs=0.04)
