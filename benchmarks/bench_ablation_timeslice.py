"""Ablation: timeslice length vs synchronization latency.

The paper fixes one timeslice; this ablation sweeps it.  Finding: the
synchronization latency RRS suffers is proportional to the timeslice —
once a barrier-holding VCPU is preempted, its siblings stall until its
*next turn*, which is one full rotation of timeslices away.  Shrinking
the timeslice therefore pulls RRS up toward the co-schedulers, while
SCS — which always preempts and resumes whole gangs — is insensitive
to the granularity.  (This is the quantitative version of the paper's
§II.B argument that preempting a lock holder makes waiters "wait
additional time": the additional time is the rotation period.)
"""

from repro.core import SystemSpec, VMSpec, WorkloadSpec, run_experiment
from repro.core.results import render_table

from conftest import bench_params

TIMESLICES = (5, 10, 30, 60)
TOPOLOGY = (2, 3)


def run_sweep():
    params = bench_params()
    rows = []
    values = {}
    for timeslice in TIMESLICES:
        row = [timeslice]
        for scheduler in ("rrs", "scs"):
            spec = SystemSpec(
                vms=[VMSpec(n, WorkloadSpec(sync_ratio=5)) for n in TOPOLOGY],
                pcpus=4,
                scheduler=scheduler,
                scheduler_params={"timeslice": timeslice},
                sim_time=params["sim_time"],
                warmup=200,
            )
            result = run_experiment(
                spec,
                min_replications=params["replications"][0],
                max_replications=params["replications"][1],
            )
            value = result.mean("vcpu_utilization")
            values[(scheduler, timeslice)] = value
            row.append(f"{value:.3f} ±{result.half_width('vcpu_utilization'):.3f}")
        rows.append(row)
    table = render_table(
        ["timeslice", "rrs", "scs"],
        rows,
        title="Ablation: VCPU utilization vs timeslice (VMs 2+3, 4 PCPUs, sync 1:5)",
    )
    return values, table


def test_timeslice_ablation(benchmark, save_artifact):
    values, table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    save_artifact("ablation_timeslice", table)
    print("\n" + table)

    # RRS's synchronization latency grows with the timeslice: a preempted
    # barrier holder is away for a whole rotation.
    assert values[("rrs", 5)] > values[("rrs", 60)] + 0.05
    # SCS is insensitive: gangs stop and resume together at any granularity.
    scs_spread = max(values[("scs", t)] for t in TIMESLICES) - min(
        values[("scs", t)] for t in TIMESLICES
    )
    rrs_spread = values[("rrs", 5)] - values[("rrs", 60)]
    assert scs_spread < rrs_spread
    assert scs_spread < 0.03
