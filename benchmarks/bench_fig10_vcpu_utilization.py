"""Reproduce Figure 10: averaged VCPU utilization (paper §IV.C).

Setup: the same three VM sets on four PCPUs, synchronization rate
varied 1:5 -> 1:2.  VCPU utilization is BUSY time normalized by ACTIVE
time (the paper's reward variable "monitors the READY and BUSY states"
for exactly this ratio).  Shape assertions (§IV.C):

* set 1 (VCPUs == PCPUs): no difference among the algorithms;
* sets 2-3 at the paper's 1:5 rate: SCS achieves the highest VCPU
  utilization, followed by RCS, with RRS last (co-scheduling removes
  the synchronization latency of preempted lock holders);
* RRS degrades as the synchronization rate rises toward 1:2.
"""

import pytest

from repro.paper import run_figure10

from conftest import bench_params


def utilization(figure, scheduler, vm_set, ratio):
    result = figure.by_params(scheduler=scheduler, vm_set=vm_set, sync_ratio=ratio)
    return result.mean("vcpu_utilization")


def test_figure10(benchmark, save_artifact):
    figure = benchmark.pedantic(
        lambda: run_figure10(**bench_params()), rounds=1, iterations=1
    )
    save_artifact("figure10_vcpu_utilization", figure.table)
    print("\n" + figure.table)

    # Set 1: VCPUs == PCPUs -> no difference among the algorithms.
    for ratio in (5, 2):
        values = [
            utilization(figure, s, "set1 (2+2)", ratio) for s in ("rrs", "scs", "rcs")
        ]
        assert max(values) - min(values) < 0.02

    # Sets 2-3 at the paper's 1:5 rate: SCS > RCS > RRS.
    for vm_set in ("set2 (2+3)", "set3 (2+4)"):
        scs = utilization(figure, "scs", vm_set, 5)
        rcs = utilization(figure, "rcs", vm_set, 5)
        rrs = utilization(figure, "rrs", vm_set, 5)
        assert scs >= rcs - 0.01
        assert rcs > rrs
        assert scs > rrs + 0.03

    # RRS quickly degrades as the synchronization rate increases.
    for vm_set in ("set2 (2+3)", "set3 (2+4)"):
        relaxed = utilization(figure, "rrs", vm_set, 5)
        tight = utilization(figure, "rrs", vm_set, 2)
        assert tight < relaxed
