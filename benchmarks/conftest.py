"""Shared benchmark configuration.

Every figure bench runs the full experiment once (``benchmark.pedantic``
with one round — replication control lives inside the experiment
runner, not in pytest-benchmark), prints the reproduced table, and
saves it under ``benchmarks/results/`` so EXPERIMENTS.md can be checked
against fresh artifacts.

Environment knobs for quick passes:

* ``REPRO_BENCH_SIM_TIME`` — simulated ticks per replication (default 2000)
* ``REPRO_BENCH_MIN_REPS`` / ``REPRO_BENCH_MAX_REPS`` — replication bounds
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_params():
    """Simulation-fidelity knobs shared by the figure benches."""
    return {
        "sim_time": int(os.environ.get("REPRO_BENCH_SIM_TIME", "2000")),
        "replications": (
            int(os.environ.get("REPRO_BENCH_MIN_REPS", "5")),
            int(os.environ.get("REPRO_BENCH_MAX_REPS", "20")),
        ),
    }


@pytest.fixture
def save_artifact():
    """Write a reproduced table to benchmarks/results/<name>.txt."""

    def _save(name: str, text: str) -> pathlib.Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return path

    return _save
