"""Ablation: scheduler brittleness under PCPU failures (dependability).

SANs are a dependability formalism, and the paper's framework runs on
them; this ablation adds what the paper did not evaluate: an
exponential fail/repair process per PCPU (the classic SAN pattern) and
asks how each scheduling discipline degrades as the host loses and
regains capacity.

Finding: strict co-scheduling is *brittle* — a 4-VCPU gang needs all
four PCPUs simultaneously, so any single failure starves it outright,
and its availability collapses super-linearly with the failure rate.
Per-VCPU disciplines (RRS) and relaxed co-scheduling degrade
gracefully, roughly tracking the host's operational capacity.
"""

from repro.core import SystemSpec, VMSpec, WorkloadSpec, run_experiment
from repro.core.results import render_table
from repro.vmm import PCPUFailureModel

from conftest import bench_params

TOPOLOGY = (4, 2)  # the 4-VCPU VM is the brittleness probe
PCPUS = 4
FAILURE_LEVELS = [
    ("none", None),
    ("mild (A=0.9)", {"mtbf": 450.0, "mttr": 50.0}),
    ("harsh (A=0.6)", {"mtbf": 150.0, "mttr": 100.0}),
]
WIDE_VM_METRIC = "vcpu_availability[VCPU1.1]"


def measure(scheduler, failures, params):
    spec = SystemSpec(
        vms=[VMSpec(n, WorkloadSpec(sync_ratio=5)) for n in TOPOLOGY],
        pcpus=PCPUS,
        scheduler=scheduler,
        sim_time=params["sim_time"],
        warmup=200,
        pcpu_failures=failures,
    )
    result = run_experiment(
        spec,
        min_replications=params["replications"][0],
        max_replications=params["replications"][1],
        watch_metrics=["vcpu_availability"],
    )
    return result


def run_sweep():
    params = bench_params()
    rows = []
    values = {}
    for label, failures in FAILURE_LEVELS:
        row = [label]
        for scheduler in ("rrs", "scs", "rcs"):
            result = measure(scheduler, failures, params)
            wide = result.mean(WIDE_VM_METRIC)
            values[(scheduler, label)] = wide
            row.append(f"{wide:.3f}")
        rows.append(row)
    table = render_table(
        ["pcpu failures", "rrs", "scs", "rcs"],
        rows,
        title=(
            "Ablation: wide-VM (4 VCPUs) availability under PCPU failures "
            f"(VMs {'+'.join(map(str, TOPOLOGY))}, {PCPUS} PCPUs)"
        ),
    )
    return values, table


def test_failure_ablation(benchmark, save_artifact):
    values, table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    save_artifact("ablation_pcpu_failures", table)
    print("\n" + table)

    mild = PCPUFailureModel(mtbf=450, mttr=50).availability()
    assert mild == 0.9  # documentation of the scenario's analytic level

    # Everyone loses availability as failures appear...
    for scheduler in ("rrs", "scs", "rcs"):
        assert (
            values[(scheduler, "harsh (A=0.6)")]
            < values[(scheduler, "none")]
        )

    # ...but SCS collapses: its strict co-start needs ALL four PCPUs up
    # at once, so even the mild level hits it far harder than RRS.
    rrs_drop = values[("rrs", "none")] - values[("rrs", "mild (A=0.9)")]
    scs_drop = values[("scs", "none")] - values[("scs", "mild (A=0.9)")]
    assert scs_drop > 2 * rrs_drop

    # Under the harsh level SCS starves the wide VM almost entirely,
    # while RRS keeps it meaningfully scheduled.
    assert values[("scs", "harsh (A=0.6)")] < 0.1
    assert values[("rrs", "harsh (A=0.6)")] > 0.25

    # Relaxed co-scheduling sits between the two disciplines.
    assert (
        values[("scs", "harsh (A=0.6)")]
        < values[("rcs", "harsh (A=0.6)")]
        <= values[("rrs", "harsh (A=0.6)")] + 0.02
    )
