"""Ablation: the full scheduler zoo on the paper's hardest setup.

Runs all six implemented algorithms — the paper's three (RRS, SCS,
RCS) plus the related-work extensions (balance scheduling [Sukwong &
Kim], proportional-share credit, and non-preemptive FIFO) — on the
oversubscribed 2+3 set, reporting every headline metric side by side.

Expected placements:

* balance sits between RRS and the co-schedulers on VCPU utilization
  (anti-stacking removes some, not all, synchronization latency);
* credit tracks RRS (both sibling-oblivious and work conserving);
* FIFO trades fairness for run-to-completion efficiency;
* only SCS sacrifices PCPU utilization (fragmentation).
"""

from repro.analysis import comparison_strip
from repro.core import SystemSpec, VMSpec, WorkloadSpec, run_experiment
from repro.core.results import render_table
from repro.metrics import jain_fairness

from conftest import bench_params

ZOO = ("rrs", "scs", "rcs", "balance", "credit", "sedf", "hybrid", "fifo")
TOPOLOGY = (2, 3)
LABELS = ["VCPU1.1", "VCPU1.2", "VCPU2.1", "VCPU2.2", "VCPU2.3"]


def run_zoo():
    params = bench_params()
    rows = []
    metrics = {}
    for scheduler in ZOO:
        spec = SystemSpec(
            vms=[VMSpec(n, WorkloadSpec(sync_ratio=5)) for n in TOPOLOGY],
            pcpus=4,
            scheduler=scheduler,
            sim_time=params["sim_time"],
            warmup=200,
        )
        result = run_experiment(
            spec,
            min_replications=params["replications"][0],
            max_replications=params["replications"][1],
        )
        availability = [result.mean(f"vcpu_availability[{l}]") for l in LABELS]
        entry = {
            "pcpu_utilization": result.mean("pcpu_utilization"),
            "vcpu_utilization": result.mean("vcpu_utilization"),
            "vcpu_availability": result.mean("vcpu_availability"),
            "fairness": jain_fairness(availability),
        }
        metrics[scheduler] = entry
        rows.append(
            [
                scheduler,
                f"{entry['pcpu_utilization']:.3f}",
                f"{entry['vcpu_utilization']:.3f}",
                f"{entry['vcpu_availability']:.3f}",
                f"{entry['fairness']:.3f}",
            ]
        )
    table = render_table(
        ["scheduler", "pcpu_util", "vcpu_util", "availability", "jain_fairness"],
        rows,
        title="Scheduler zoo on VMs 2+3, 4 PCPUs, sync 1:5",
    )
    strip = comparison_strip(
        "VCPU utilization (BUSY/ACTIVE)",
        {name: metrics[name]["vcpu_utilization"] for name in ZOO},
    )
    return metrics, table + "\n\n" + strip


def test_scheduler_zoo(benchmark, save_artifact):
    metrics, table = benchmark.pedantic(run_zoo, rounds=1, iterations=1)
    save_artifact("ablation_scheduler_zoo", table)
    print("\n" + table)

    # Work-conserving schedulers keep the PCPUs full; only SCS fragments.
    for scheduler in ("rrs", "rcs", "balance", "credit", "sedf", "hybrid", "fifo"):
        assert metrics[scheduler]["pcpu_utilization"] > 0.95
    assert metrics["scs"]["pcpu_utilization"] < 0.85

    # Anti-stacking helps over plain RRS on synchronization latency.
    assert metrics["balance"]["vcpu_utilization"] > metrics["rrs"]["vcpu_utilization"] - 0.02

    # Credit with equal weights behaves like RRS.
    assert abs(
        metrics["credit"]["vcpu_utilization"] - metrics["rrs"]["vcpu_utilization"]
    ) < 0.08

    # The sibling-aware schedulers stay ahead of the oblivious ones.
    assert metrics["scs"]["vcpu_utilization"] > metrics["rrs"]["vcpu_utilization"]
    assert metrics["rcs"]["vcpu_utilization"] > metrics["rrs"]["vcpu_utilization"]

    # Everyone except SCS-on-starved-hosts stays reasonably fair here.
    for scheduler in ("rrs", "rcs", "balance", "credit", "hybrid"):
        assert metrics[scheduler]["fairness"] > 0.9
    # SEDF is reservation-based, not fair-share: with default (100, 20)
    # reservations the work-conserving leftovers are deadline-ordered,
    # not balanced, so it is allowed to be somewhat less even.
    assert metrics["sedf"]["fairness"] > 0.8
