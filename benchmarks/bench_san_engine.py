"""SAN engine micro-benchmarks.

The paper's pitch is *rapid* evaluation — assembling and simulating a
virtualization model in seconds instead of hacking a 300K-line
hypervisor.  These benches quantify the engine: raw timed-activity
throughput, instantaneous settle cost, and full virtualization-system
throughput in simulated ticks per second.

Run directly (``python benchmarks/bench_san_engine.py``) the module
compares the three enablement engines — compiled (with and without its
clock-tick fast-forward, ablating the skip from the flat-array
lowering), incremental, and the full-rescan reference — on the
Figure 8 configuration and writes a machine-readable report
(``BENCH_pr4.json``): wall-clock, events/second, input-gate
evaluations, tick fast-forward counters, speedup ratios, model-reuse
build amortization, and a bit-identical cross-check of every variant's
metrics.  ``--fail-under`` turns it into a CI gate.
"""

import argparse
import json
import sys
import time

from repro.core.framework import Simulation
from repro.des import Deterministic, Exponential, StreamFactory
from repro.san import (
    InputGate,
    InstantaneousActivity,
    OutputGate,
    Place,
    SANModel,
    SANSimulator,
    TimedActivity,
)
from repro.core import SystemSpec, VMSpec, simulate_once


def build_clock_model():
    m = SANModel("clock")
    count = m.add_place(Place("count"))
    m.add_activity(
        TimedActivity(
            "tick",
            Deterministic(1),
            input_gates=[InputGate("always", lambda: True)],
            output_gates=[OutputGate("bump", count.add)],
        )
    )
    return m


def test_timed_activity_throughput(benchmark):
    """Events per second for a bare deterministic clock."""

    def run():
        sim = SANSimulator(build_clock_model(), StreamFactory(0))
        sim.run(until=20_000)
        return sim.completions

    completions = benchmark.pedantic(run, rounds=3, iterations=1)
    assert completions == 19_999


def test_stochastic_race_throughput(benchmark):
    """Enable/abort churn: two exponential activities racing on a token."""

    def build():
        m = SANModel("race")
        token = m.add_place(Place("token", initial=1))
        for name in ("a", "b"):
            m.add_activity(
                TimedActivity(
                    name,
                    Exponential(1.0),
                    input_gates=[
                        InputGate(f"g{name}", lambda: token.tokens > 0, token.remove)
                    ],
                    output_gates=[OutputGate(f"o{name}", token.add)],
                )
            )
        return m

    def run():
        sim = SANSimulator(build(), StreamFactory(1))
        sim.run(until=5_000)
        return sim.completions

    completions = benchmark.pedantic(run, rounds=3, iterations=1)
    assert completions > 1_000


def test_instantaneous_settle_throughput(benchmark):
    """A clock fanning out to 16 instantaneous consumers each tick."""

    def build():
        m = SANModel("fanout")
        channels = [m.add_place(Place(f"ch{i}")) for i in range(16)]

        def deposit_all():
            for channel in channels:
                channel.add()

        m.add_activity(
            TimedActivity(
                "clock",
                Deterministic(1),
                input_gates=[InputGate("always", lambda: True)],
                output_gates=[OutputGate("fan", deposit_all)],
            )
        )
        for i, channel in enumerate(channels):
            m.add_activity(
                InstantaneousActivity(
                    f"consume{i}",
                    input_gates=[
                        InputGate(f"g{i}", lambda c=channel: c.tokens > 0, channel.remove)
                    ],
                )
            )
        return m

    def run():
        sim = SANSimulator(build(), StreamFactory(0))
        sim.run(until=1_000)
        return sim.completions

    completions = benchmark.pedantic(run, rounds=3, iterations=1)
    assert completions == 999 * 17


def test_full_system_ticks_per_second(benchmark):
    """Simulated ticks/second of the paper's Figure 8 system (6 sub-models)."""

    spec = SystemSpec(
        vms=[VMSpec(2), VMSpec(1), VMSpec(1)],
        pcpus=2,
        scheduler="rrs",
        sim_time=2_000,
        warmup=0,
    )

    def run():
        return simulate_once(spec).completions

    completions = benchmark.pedantic(run, rounds=3, iterations=1)
    assert completions > 10_000


# -- engine comparison (the PR 4 acceptance bench) ---------------------------
#
# The Figure 8 *shape* — more runnable VCPUs than PCPUs, so scheduling
# decisions bind every tick — scaled to four 2-VCPU VMs: co-scheduling
# comparisons need SMP VMs, and the engines' advantages grow with gate
# count, so the bench uses the larger of the paper's starved-host
# configurations.  Four variants run interleaved: compiled, compiled
# with tick fast-forward disabled (the ablation isolating the FF win
# from the flat-array lowering), incremental, and the rescan reference.
# rcs is the deliberate worst case: its per-tick skew bookkeeping means
# no tick is ever skippable, so it measures the lowering alone.

FIG8_TOPOLOGY = (2, 2, 2, 2)
FIG8_PCPUS = 2
FIG8_SCHEDULERS = ("rrs", "scs", "rcs")

_VARIANTS = ("compiled", "compiled_no_ff", "incremental", "rescan")


def _fig8_spec(scheduler, sim_time):
    return SystemSpec(
        vms=[VMSpec(n) for n in FIG8_TOPOLOGY],
        pcpus=FIG8_PCPUS,
        scheduler=scheduler,
        sim_time=sim_time,
        warmup=0,
    )


def _run_once(scheduler, sim_time, variant, root_seed=0):
    """Run one replication and report wall clock plus engine effort.

    ``gate_evaluations`` is a process-global delta, so it must be read
    immediately after the run, before any other simulator executes —
    which also makes it identical across reps (same seed, same path).
    """
    engine = "compiled" if variant.startswith("compiled") else variant
    sim = Simulation(
        _fig8_spec(scheduler, sim_time),
        replication=0,
        root_seed=root_seed,
        engine=engine,
    )
    if variant == "compiled_no_ff":
        sim.simulator.fast_forward = False
    start = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - start
    stats = sim.simulator.stats()
    return {
        "wall_seconds": elapsed,
        "events_per_second": result.completions / elapsed if elapsed > 0 else 0.0,
        "gate_evaluations": sim.simulator.gate_evaluations,
        "completions": result.completions,
        "ticks_fired": stats["ticks_fired"],
        "ticks_fast_forwarded": stats["ticks_fast_forwarded"],
        "metrics": result.metrics,
    }


def _measure_variants(scheduler, sim_time, reps):
    """Best-of-``reps`` for every engine variant, measured interleaved.

    The variants cycle (compiled, compiled_no_ff, incremental, rescan,
    compiled, ...) rather than running in blocks, so background-load
    drift on the host cannot systematically favour one side of a ratio.
    """
    best = {}
    for _ in range(max(1, reps)):
        for variant in _VARIANTS:
            sample = _run_once(scheduler, sim_time, variant)
            if (
                variant not in best
                or sample["wall_seconds"] < best[variant]["wall_seconds"]
            ):
                best[variant] = sample
    return best


def measure_tracing_overhead(sim_time=2000, reps=3, scheduler="rrs"):
    """Wall-clock cost of the tracing hooks when tracing is *off*.

    The observability layer promises zero overhead when disabled: every
    hook site is one module-level pointer test.  This measures the
    untraced run (hooks compiled in, tracer inactive) against a fully
    traced run for scale, reporting the untraced wall clock so drift in
    the disabled path shows up in the report next to the engine
    numbers.
    """
    from repro.observability import SimTracer

    def best_of(tracer_factory):
        best = None
        for _ in range(max(1, reps)):
            sim = Simulation(
                _fig8_spec(scheduler, sim_time),
                replication=0,
                root_seed=0,
                tracer=tracer_factory(),
            )
            start = time.perf_counter()
            sim.run()
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        return best

    off = best_of(lambda: None)
    on = best_of(SimTracer)
    return {
        "scheduler": scheduler,
        "untraced_wall_seconds": off,
        "traced_wall_seconds": on,
        "traced_over_untraced": on / off if off > 0 else float("inf"),
    }


def measure_model_reuse(sim_time=500, reps=3, scheduler="rrs"):
    """Build-cost amortization of cross-replication model reuse.

    Times full ``Simulation`` construction (the part reuse elides) for a
    fresh build vs a cache checkout of the compiled engine.
    """
    from repro.core.framework import clear_model_cache

    spec = _fig8_spec(scheduler, sim_time)

    def best_construction(reuse):
        best = None
        for replication in range(max(1, reps)):
            if not reuse:
                clear_model_cache()
            start = time.perf_counter()
            sim = Simulation(
                spec, replication=replication, engine="compiled", reuse=True
            )
            elapsed = time.perf_counter() - start
            sim.run()  # releases the cache entry for the next checkout
            if replication == 0 and reuse:
                continue  # the first reuse=True build primes the cache
            if best is None or elapsed < best:
                best = elapsed
        return best

    fresh = best_construction(reuse=False)
    reused = best_construction(reuse=True)
    clear_model_cache()
    return {
        "scheduler": scheduler,
        "fresh_build_seconds": fresh,
        "reused_build_seconds": reused,
        "build_speedup": fresh / reused if reused and reused > 0 else float("inf"),
    }


def compare_engines(sim_time=2000, reps=3, schedulers=FIG8_SCHEDULERS):
    """Benchmark compiled (with and without tick fast-forward),
    incremental, and rescan; returns the full report dict."""
    results = {}
    for scheduler in schedulers:
        best = _measure_variants(scheduler, sim_time, reps)
        reference = best["rescan"]
        compiled = best["compiled"]
        bit_identical = all(
            best[variant]["metrics"] == reference["metrics"]
            and best[variant]["completions"] == reference["completions"]
            for variant in _VARIANTS
        )
        entry = {
            variant: {k: v for k, v in best[variant].items() if k != "metrics"}
            for variant in _VARIANTS
        }
        entry.update(
            compiled_over_incremental=(
                best["incremental"]["wall_seconds"] / compiled["wall_seconds"]
            ),
            compiled_over_rescan=(
                reference["wall_seconds"] / compiled["wall_seconds"]
            ),
            incremental_over_rescan=(
                reference["wall_seconds"] / best["incremental"]["wall_seconds"]
            ),
            fast_forward_speedup=(
                best["compiled_no_ff"]["wall_seconds"] / compiled["wall_seconds"]
            ),
            # The FF win only exists where the scheduler certifies skips;
            # the CI gate applies to these schedulers (see main()).
            fast_forward_engaged=compiled["ticks_fast_forwarded"] > 0,
            bit_identical=bit_identical,
        )
        results[scheduler] = entry
    gated = [r for r in results.values() if r["fast_forward_engaged"]]
    return {
        "benchmark": "san-enablement-engine",
        "config": {
            "topology": list(FIG8_TOPOLOGY),
            "pcpus": FIG8_PCPUS,
            "sim_time": sim_time,
            "reps": reps,
            "schedulers": list(schedulers),
            "root_seed": 0,
            "replication": 0,
        },
        "results": results,
        "tracing_overhead": measure_tracing_overhead(
            sim_time=sim_time, reps=reps
        ),
        "model_reuse": measure_model_reuse(reps=reps),
        "summary": {
            "min_compiled_over_incremental": (
                min(r["compiled_over_incremental"] for r in gated)
                if gated
                else None
            ),
            "min_compiled_over_rescan": (
                min(r["compiled_over_rescan"] for r in gated) if gated else None
            ),
            "min_incremental_over_rescan": min(
                r["incremental_over_rescan"] for r in results.values()
            ),
            "all_bit_identical": all(r["bit_identical"] for r in results.values()),
        },
    }


# -- degradation overhead (the PR 6 acceptance bench) ------------------------
#
# The health layer must be pay-for-what-you-use: a run with degradation
# enabled swaps in the gated tick fan-out (per-tick capacity
# withholding + hv-debt burn) and conservatively narrows the compiled
# engine's fast-forward certificate, but with a moderate event rate and
# a condition-based crew repairing any non-pristine core the host is
# healthy most of the time, so spans still skip.  The gate bounds the
# end-to-end wall-clock ratio over the plain compiled run on the same
# configuration.  (Without maintenance the first degradation sticks
# forever and fast-forward stays off for the rest of the run — that
# regime costs whatever per-tick capacity withholding costs, ~2x, and
# is deliberately not the gated configuration.)

DEGRADATION_SPEC = {"p": 0.2, "h_max": 4, "mtbe": 500.0}
MAINTENANCE_SPEC = {"policy": "condition_based", "crews": 1, "mttr": 10.0,
                    "threshold": 1}

_DEGRADATION_VARIANTS = ("plain", "degraded", "full")


def _degraded_fig8_spec(variant, scheduler, sim_time):
    spec = _fig8_spec(scheduler, sim_time)
    if variant == "plain":
        return spec
    overrides = {
        "degradation": dict(DEGRADATION_SPEC),
        "maintenance": dict(MAINTENANCE_SPEC),
    }
    if variant == "full":
        overrides["hv_overhead"] = {"cost": 1}
    return spec.with_overrides(**overrides)


def _run_degradation_once(variant, scheduler, sim_time, engine="compiled"):
    sim = Simulation(
        _degraded_fig8_spec(variant, scheduler, sim_time),
        replication=0,
        root_seed=0,
        engine=engine,
    )
    start = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - start
    stats = sim.simulator.stats()
    return {
        "wall_seconds": elapsed,
        "completions": result.completions,
        "ticks_fired": stats["ticks_fired"],
        "ticks_fast_forwarded": stats["ticks_fast_forwarded"],
        "metrics": result.metrics,
    }


def compare_degradation(sim_time=2000, reps=3, schedulers=("rrs", "scs")):
    """Wall-clock cost of the health layer on the compiled engine.

    Measures plain vs degraded (degradation + condition-based
    maintenance) vs the full stack (+ hv overhead), interleaved
    best-of-``reps``, plus a compiled-vs-rescan bit-identical
    cross-check of the full stack.
    """
    results = {}
    for scheduler in schedulers:
        best = {}
        for _ in range(max(1, reps)):
            for variant in _DEGRADATION_VARIANTS:
                sample = _run_degradation_once(variant, scheduler, sim_time)
                if (
                    variant not in best
                    or sample["wall_seconds"] < best[variant]["wall_seconds"]
                ):
                    best[variant] = sample
        reference = _run_degradation_once(
            "full", scheduler, sim_time, engine="rescan"
        )
        entry = {
            variant: {k: v for k, v in best[variant].items() if k != "metrics"}
            for variant in _DEGRADATION_VARIANTS
        }
        plain = best["plain"]["wall_seconds"]
        entry.update(
            degraded_over_plain=best["degraded"]["wall_seconds"] / plain,
            full_over_plain=best["full"]["wall_seconds"] / plain,
            fast_forward_still_engaged=(
                best["full"]["ticks_fast_forwarded"] > 0
            ),
            bit_identical=(
                best["full"]["metrics"] == reference["metrics"]
                and best["full"]["completions"] == reference["completions"]
            ),
        )
        results[scheduler] = entry
    return {
        "benchmark": "pcpu-health-degradation-overhead",
        "config": {
            "topology": list(FIG8_TOPOLOGY),
            "pcpus": FIG8_PCPUS,
            "sim_time": sim_time,
            "reps": reps,
            "schedulers": list(schedulers),
            "degradation": dict(DEGRADATION_SPEC),
            "maintenance": dict(MAINTENANCE_SPEC),
            "hv_overhead": {"cost": 1},
            "root_seed": 0,
            "replication": 0,
        },
        "results": results,
        "summary": {
            "max_degraded_over_plain": max(
                r["degraded_over_plain"] for r in results.values()
            ),
            "max_full_over_plain": max(
                r["full_over_plain"] for r in results.values()
            ),
            "all_bit_identical": all(
                r["bit_identical"] for r in results.values()
            ),
        },
    }


def run_degradation_bench(args):
    report = compare_degradation(sim_time=args.sim_time, reps=args.reps)
    with open(args.degradation_out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for scheduler, entry in report["results"].items():
        print(
            f"{scheduler}: degraded {entry['degraded_over_plain']:.2f}x, "
            f"full stack {entry['full_over_plain']:.2f}x over plain compiled "
            f"(full: ticks fired {entry['full']['ticks_fired']}, "
            f"fast-forwarded {entry['full']['ticks_fast_forwarded']}), "
            f"bit_identical={entry['bit_identical']}"
        )
    summary = report["summary"]
    print(
        f"max degraded/plain {summary['max_degraded_over_plain']:.2f}x, "
        f"max full/plain {summary['max_full_over_plain']:.2f}x, "
        f"wrote {args.degradation_out}"
    )
    if not summary["all_bit_identical"]:
        print("FAIL: engines diverged under degradation", file=sys.stderr)
        return 1
    ceiling = args.degradation_fail_over
    worst = max(
        summary["max_degraded_over_plain"], summary["max_full_over_plain"]
    )
    if ceiling is not None and worst > ceiling:
        print(
            f"FAIL: degradation overhead {worst:.2f}x "
            f"exceeds --degradation-fail-over {ceiling}",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Compare the compiled, incremental, and rescan engines"
    )
    parser.add_argument("--out", default="BENCH_pr4.json", help="report path")
    parser.add_argument("--sim-time", type=int, default=2000)
    parser.add_argument("--reps", type=int, default=3, help="best-of-N wall clock")
    parser.add_argument(
        "--fail-under",
        type=float,
        default=None,
        help="exit 1 if compiled-over-incremental falls below this on any "
        "scheduler where tick fast-forward engages",
    )
    parser.add_argument(
        "--degradation",
        action="store_true",
        help="run the PCPU-health overhead bench instead of the engine "
        "comparison, writing --degradation-out",
    )
    parser.add_argument(
        "--degradation-out",
        default="BENCH_pr6.json",
        dest="degradation_out",
        help="report path for the degradation bench",
    )
    parser.add_argument(
        "--degradation-fail-over",
        type=float,
        default=None,
        dest="degradation_fail_over",
        help="exit 1 if the full health stack costs more than this ratio "
        "over the plain compiled run (e.g. 1.25 = 25%% overhead budget)",
    )
    args = parser.parse_args(argv)

    if args.degradation:
        return run_degradation_bench(args)

    report = compare_engines(sim_time=args.sim_time, reps=args.reps)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for scheduler, entry in report["results"].items():
        compiled = entry["compiled"]
        print(
            f"{scheduler}: compiled {entry['compiled_over_incremental']:.2f}x "
            f"over incremental, {entry['compiled_over_rescan']:.2f}x over "
            f"rescan (fast-forward alone {entry['fast_forward_speedup']:.2f}x; "
            f"ticks fired {compiled['ticks_fired']}, "
            f"fast-forwarded {compiled['ticks_fast_forwarded']}), "
            f"bit_identical={entry['bit_identical']}"
        )
    overhead = report["tracing_overhead"]
    print(
        f"tracing ({overhead['scheduler']}): untraced "
        f"{overhead['untraced_wall_seconds'] * 1000:.1f} ms, traced "
        f"{overhead['traced_wall_seconds'] * 1000:.1f} ms "
        f"({overhead['traced_over_untraced']:.2f}x)"
    )
    reuse = report["model_reuse"]
    print(
        f"model reuse ({reuse['scheduler']}): fresh build "
        f"{reuse['fresh_build_seconds'] * 1000:.1f} ms, cached checkout "
        f"{reuse['reused_build_seconds'] * 1000:.1f} ms "
        f"({reuse['build_speedup']:.1f}x)"
    )
    summary = report["summary"]
    print(
        f"min compiled/incremental {summary['min_compiled_over_incremental']:.2f}x, "
        f"min compiled/rescan {summary['min_compiled_over_rescan']:.2f}x "
        f"(fast-forward-capable schedulers), wrote {args.out}"
    )

    if not summary["all_bit_identical"]:
        print("FAIL: engines diverged — metrics are not bit-identical", file=sys.stderr)
        return 1
    floor = summary["min_compiled_over_incremental"]
    if args.fail_under is not None and (floor is None or floor < args.fail_under):
        print(
            f"FAIL: min compiled-over-incremental "
            f"{'n/a' if floor is None else f'{floor:.2f}x'} below "
            f"--fail-under {args.fail_under}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
