"""SAN engine micro-benchmarks.

The paper's pitch is *rapid* evaluation — assembling and simulating a
virtualization model in seconds instead of hacking a 300K-line
hypervisor.  These benches quantify the engine: raw timed-activity
throughput, instantaneous settle cost, and full virtualization-system
throughput in simulated ticks per second.
"""

from repro.des import Deterministic, Exponential, StreamFactory
from repro.san import (
    InputGate,
    InstantaneousActivity,
    OutputGate,
    Place,
    SANModel,
    SANSimulator,
    TimedActivity,
)
from repro.core import SystemSpec, VMSpec, simulate_once


def build_clock_model():
    m = SANModel("clock")
    count = m.add_place(Place("count"))
    m.add_activity(
        TimedActivity(
            "tick",
            Deterministic(1),
            input_gates=[InputGate("always", lambda: True)],
            output_gates=[OutputGate("bump", count.add)],
        )
    )
    return m


def test_timed_activity_throughput(benchmark):
    """Events per second for a bare deterministic clock."""

    def run():
        sim = SANSimulator(build_clock_model(), StreamFactory(0))
        sim.run(until=20_000)
        return sim.completions

    completions = benchmark.pedantic(run, rounds=3, iterations=1)
    assert completions == 19_999


def test_stochastic_race_throughput(benchmark):
    """Enable/abort churn: two exponential activities racing on a token."""

    def build():
        m = SANModel("race")
        token = m.add_place(Place("token", initial=1))
        for name in ("a", "b"):
            m.add_activity(
                TimedActivity(
                    name,
                    Exponential(1.0),
                    input_gates=[
                        InputGate(f"g{name}", lambda: token.tokens > 0, token.remove)
                    ],
                    output_gates=[OutputGate(f"o{name}", token.add)],
                )
            )
        return m

    def run():
        sim = SANSimulator(build(), StreamFactory(1))
        sim.run(until=5_000)
        return sim.completions

    completions = benchmark.pedantic(run, rounds=3, iterations=1)
    assert completions > 1_000


def test_instantaneous_settle_throughput(benchmark):
    """A clock fanning out to 16 instantaneous consumers each tick."""

    def build():
        m = SANModel("fanout")
        channels = [m.add_place(Place(f"ch{i}")) for i in range(16)]

        def deposit_all():
            for channel in channels:
                channel.add()

        m.add_activity(
            TimedActivity(
                "clock",
                Deterministic(1),
                input_gates=[InputGate("always", lambda: True)],
                output_gates=[OutputGate("fan", deposit_all)],
            )
        )
        for i, channel in enumerate(channels):
            m.add_activity(
                InstantaneousActivity(
                    f"consume{i}",
                    input_gates=[
                        InputGate(f"g{i}", lambda c=channel: c.tokens > 0, channel.remove)
                    ],
                )
            )
        return m

    def run():
        sim = SANSimulator(build(), StreamFactory(0))
        sim.run(until=1_000)
        return sim.completions

    completions = benchmark.pedantic(run, rounds=3, iterations=1)
    assert completions == 999 * 17


def test_full_system_ticks_per_second(benchmark):
    """Simulated ticks/second of the paper's Figure 8 system (6 sub-models)."""

    spec = SystemSpec(
        vms=[VMSpec(2), VMSpec(1), VMSpec(1)],
        pcpus=2,
        scheduler="rrs",
        sim_time=2_000,
        warmup=0,
    )

    def run():
        return simulate_once(spec).completions

    completions = benchmark.pedantic(run, rounds=3, iterations=1)
    assert completions > 10_000
