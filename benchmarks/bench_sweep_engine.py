"""Sweep-engine benchmarks: shared pool + adaptive allocation + cache.

The paper's campaigns are *sweeps* — Figure 8 alone is 12 (pcpus,
scheduler) points, each replicated to confidence.  PR 5's engine runs
the whole sweep through one shared worker pool with spec-affinity
placement, allocates replications across points by CI distance, and
memoizes finished replications in a persistent content-addressed
cache.  This bench quantifies all three against the status quo.

Run directly (``python benchmarks/bench_sweep_engine.py``) the module
executes the Figure 8 sweep four ways and writes ``BENCH_pr5.json``:

* ``serial`` — the baseline: one experiment per point in order, each
  spinning up its own ``ResilienceConfig(jobs=J)`` worker pool and
  blindly topping the pool up past the convergence cut;
* ``interleaved`` — the shared-pool adaptive engine, no cache;
* ``interleaved_cold`` — same, writing a fresh result cache;
* ``interleaved_warm`` — rerun against that cache, which must execute
  **zero** replications.

Every variant's metric estimates must be exactly ``==`` the serial
baseline's (the engine's core contract).  ``--fail-under`` turns the
interleaved-over-serial ratio into a CI gate; metric divergence or a
warm rerun that executes work fails unconditionally.
"""

import argparse
import json
import shutil
import sys
import tempfile
import time

from repro.core import run_sweep
from repro.core.experiment import resolve_sweep_points
from repro.core.sweeps import run_interleaved_sweep
from repro.paper import figure8_sweep
from repro.resilience import ResilienceConfig

_VARIANTS = ("serial", "interleaved", "interleaved_cold", "interleaved_warm")


def _extract(results):
    """Canonical per-point view for exact cross-variant comparison."""
    return [
        {
            "replications": result.replications,
            "values": {
                name: estimate.values for name, estimate in result.estimates.items()
            },
        }
        for result in results
    ]


def _stats_entry(outcome):
    stats = outcome.stats
    return {
        "points": stats.points,
        "executed": stats.executed,
        "cache_hits": stats.cache_hits,
        "dispatches": stats.dispatches,
        "executed_per_point": list(stats.executed_per_point),
    }


def run_serial(base, points, jobs, sim_args):
    """Baseline: serial ``run_sweep``, a fresh J-worker pool per point."""
    start = time.perf_counter()
    results = run_sweep(
        base,
        points,
        sweep_engine="serial",
        resilience=ResilienceConfig(jobs=jobs, engine="compiled"),
        **sim_args,
    )
    elapsed = time.perf_counter() - start
    return results, {"wall_seconds": elapsed, "jobs": jobs}


def run_interleaved(base, points, jobs, sim_args, cache_dir=None):
    """Shared-pool adaptive engine, optionally against a result cache."""
    resolved = resolve_sweep_points(base, points)
    start = time.perf_counter()
    outcome = run_interleaved_sweep(
        resolved,
        sweep_jobs=jobs,
        resilience=ResilienceConfig(engine="compiled", cache_dir=cache_dir),
        **sim_args,
    )
    elapsed = time.perf_counter() - start
    entry = {"wall_seconds": elapsed, "jobs": jobs}
    entry.update(_stats_entry(outcome))
    return outcome.results, entry


def compare_sweep_engines(
    sim_time=400, warmup=100, min_replications=3, max_replications=8, jobs=2
):
    """Run the Figure 8 sweep through every variant; return the report."""
    base, points = figure8_sweep(sim_time=sim_time, warmup=warmup)
    sim_args = {
        "min_replications": min_replications,
        "max_replications": max_replications,
        "root_seed": 0,
    }

    entries = {}
    extracted = {}
    results, entries["serial"] = run_serial(base, points, jobs, sim_args)
    extracted["serial"] = _extract(results)
    results, entries["interleaved"] = run_interleaved(base, points, jobs, sim_args)
    extracted["interleaved"] = _extract(results)

    cache_dir = tempfile.mkdtemp(prefix="bench_sweep_cache_")
    try:
        results, entries["interleaved_cold"] = run_interleaved(
            base, points, jobs, sim_args, cache_dir=cache_dir
        )
        extracted["interleaved_cold"] = _extract(results)
        results, entries["interleaved_warm"] = run_interleaved(
            base, points, jobs, sim_args, cache_dir=cache_dir
        )
        extracted["interleaved_warm"] = _extract(results)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    reference = extracted["serial"]
    all_equal = all(extracted[variant] == reference for variant in _VARIANTS)
    serial_wall = entries["serial"]["wall_seconds"]
    interleaved_speedup = serial_wall / entries["interleaved"]["wall_seconds"]
    cached_speedup = serial_wall / entries["interleaved_warm"]["wall_seconds"]
    return {
        "benchmark": "sweep-engine",
        "config": {
            "sweep": "figure8",
            "points": len(points),
            "sim_time": sim_time,
            "warmup": warmup,
            "min_replications": min_replications,
            "max_replications": max_replications,
            "jobs": jobs,
            "root_seed": 0,
            "engine": "compiled",
        },
        "results": entries,
        "summary": {
            "interleaved_over_serial": interleaved_speedup,
            "warm_cache_over_serial": cached_speedup,
            "warm_executed": entries["interleaved_warm"]["executed"],
            "warm_cache_hits": entries["interleaved_warm"]["cache_hits"],
            "all_metrics_equal": all_equal,
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Benchmark the interleaved sweep engine and result cache "
        "against the serial per-point baseline"
    )
    parser.add_argument("--out", default="BENCH_pr5.json", help="report path")
    parser.add_argument("--sim-time", type=int, default=400)
    parser.add_argument("--warmup", type=int, default=100)
    parser.add_argument("--min-replications", type=int, default=3)
    parser.add_argument("--max-replications", type=int, default=8)
    parser.add_argument("--jobs", type=int, default=2, help="worker processes")
    parser.add_argument(
        "--fail-under",
        type=float,
        default=None,
        help="exit 1 if interleaved-over-serial falls below this ratio",
    )
    args = parser.parse_args(argv)

    report = compare_sweep_engines(
        sim_time=args.sim_time,
        warmup=args.warmup,
        min_replications=args.min_replications,
        max_replications=args.max_replications,
        jobs=args.jobs,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    summary = report["summary"]
    for variant in _VARIANTS:
        entry = report["results"][variant]
        executed = entry.get("executed")
        detail = (
            f", executed {executed}, cache hits {entry['cache_hits']}"
            if executed is not None
            else ""
        )
        print(f"{variant}: {entry['wall_seconds']:.2f} s{detail}")
    print(
        f"interleaved {summary['interleaved_over_serial']:.2f}x over serial, "
        f"warm cache {summary['warm_cache_over_serial']:.2f}x over serial "
        f"(warm rerun executed {summary['warm_executed']} replications), "
        f"all_metrics_equal={summary['all_metrics_equal']}, wrote {args.out}"
    )

    if not summary["all_metrics_equal"]:
        print(
            "FAIL: sweep variants diverged — metrics are not exactly equal",
            file=sys.stderr,
        )
        return 1
    if summary["warm_executed"] != 0:
        print(
            f"FAIL: warm-cache rerun executed {summary['warm_executed']} "
            "replications (expected 0)",
            file=sys.stderr,
        )
        return 1
    floor = summary["interleaved_over_serial"]
    if args.fail_under is not None and floor < args.fail_under:
        print(
            f"FAIL: interleaved-over-serial {floor:.2f}x below "
            f"--fail-under {args.fail_under}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
