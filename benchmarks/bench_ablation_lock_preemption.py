"""Ablation: lock-holder preemption (critical-section extension).

The paper motivates co-scheduling with lock-holder preemption (§II.B)
but evaluates only barrier synchronization; richer mechanisms are its
§V future work.  This bench runs that future-work experiment: VMs
whose jobs periodically execute inside a VM-wide spinlock, measuring
the spin waste each scheduler induces at several critical-section
frequencies.

Expected shape: spin waste ranks RRS/credit (sibling-oblivious) worst,
balance slightly better (no stacking, but holders still get preempted),
RCS better, SCS best (gangs co-stop, so a holder is never off-CPU while
a waiter runs); the gap widens as critical sections densify.
"""

from repro.core.results import render_table
from repro.des import StreamFactory, UniformInt
from repro.metrics import mean_goodput, mean_spin_fraction
from repro.san import SANSimulator
from repro.schedulers import BUILTIN_ALGORITHMS
from repro.vmm import build_virtual_system
from repro.workloads import LockingWorkloadModel

from conftest import bench_params

TOPOLOGY = (2, 3)
PCPUS = 4
SCHEDULERS = ("rrs", "balance", "rcs", "scs")
CRITICAL_RATIOS = (4, 2)


def measure(scheduler, critical_ratio, sim_time, replications):
    spin_total = goodput_total = 0.0
    for rep in range(replications):
        workloads = [
            LockingWorkloadModel(
                UniformInt(3, 8),
                critical_ratio=critical_ratio,
                critical_load=UniformInt(2, 5),
            )
            for _ in TOPOLOGY
        ]
        system = build_virtual_system(
            list(zip(TOPOLOGY, workloads)),
            BUILTIN_ALGORITHMS[scheduler](),
            PCPUS,
            StreamFactory(11, rep),
        )
        sim = SANSimulator(system, StreamFactory(11, rep))
        spin = sim.add_reward(mean_spin_fraction(system, warmup=200))
        goodput = sim.add_reward(mean_goodput(system, warmup=200))
        sim.run(until=sim_time)
        spin_total += spin.result() / replications
        goodput_total += goodput.result() / replications
    return spin_total, goodput_total


def run_sweep():
    params = bench_params()
    replications = params["replications"][0]
    rows = []
    values = {}
    for ratio in CRITICAL_RATIOS:
        for scheduler in SCHEDULERS:
            spin, goodput = measure(
                scheduler, ratio, params["sim_time"], replications
            )
            values[(scheduler, ratio)] = (spin, goodput)
            rows.append([f"1:{ratio}", scheduler, f"{spin:.3f}", f"{goodput:.3f}"])
    table = render_table(
        ["critical", "scheduler", "spin_fraction", "goodput"],
        rows,
        title=(
            "Ablation: lock-holder preemption "
            f"(VMs {'+'.join(map(str, TOPOLOGY))}, {PCPUS} PCPUs)"
        ),
    )
    return values, table


def test_lock_preemption_ablation(benchmark, save_artifact):
    values, table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    save_artifact("ablation_lock_preemption", table)
    print("\n" + table)

    for ratio in CRITICAL_RATIOS:
        spin = {s: values[(s, ratio)][0] for s in SCHEDULERS}
        goodput = {s: values[(s, ratio)][1] for s in SCHEDULERS}
        # Co-scheduling cuts spin waste; SCS most, RCS in between.
        assert spin["scs"] < spin["rcs"] + 0.005
        assert spin["rcs"] < spin["rrs"]
        assert spin["scs"] < spin["rrs"] / 2
        # Goodput mirrors the spin ranking.
        assert goodput["scs"] > goodput["rrs"]

    # Denser critical sections widen the absolute RRS-vs-SCS gap.
    gap_sparse = values[("rrs", 4)][0] - values[("scs", 4)][0]
    gap_dense = values[("rrs", 2)][0] - values[("scs", 2)][0]
    assert gap_dense > gap_sparse
