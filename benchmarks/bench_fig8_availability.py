"""Reproduce Figure 8: VCPU availability fairness (paper §IV.A).

Setup (verbatim from the paper): three VMs — one 2-VCPU VM (VCPU1.1,
VCPU1.2) and two 1-VCPU VMs (VCPU2.1, VCPU3.1); synchronization rate
1:5; PCPUs varied from 1 to 4; RRS vs SCS vs RCS; 95% confidence with
half-width < 0.1.

Shape assertions (the claims of §IV.A):

* RRS achieves fairness regardless of resources;
* with one PCPU, SCS cannot schedule the 2-VCPU VM at all, while RCS
  can (at a skew-threshold penalty vs the 1-VCPU VMs);
* co-scheduling fairness improves with more PCPUs; RCS >= SCS;
* everything saturates at four PCPUs.
"""

import pytest

from repro.metrics import jain_fairness
from repro.paper import run_figure8

from conftest import bench_params

LABELS = ["VCPU1.1", "VCPU1.2", "VCPU2.1", "VCPU3.1"]


def availability(result, label):
    return result.mean(f"vcpu_availability[{label}]")


def fairness(figure, scheduler, pcpus):
    result = figure.by_params(scheduler=scheduler, pcpus=pcpus)
    return jain_fairness([availability(result, label) for label in LABELS])


def test_figure8(benchmark, save_artifact):
    figure = benchmark.pedantic(
        lambda: run_figure8(**bench_params()), rounds=1, iterations=1
    )
    save_artifact("figure8_availability", figure.table)
    print("\n" + figure.table)

    # RRS always achieves scheduling fairness regardless of the resource.
    for pcpus in (1, 2, 3, 4):
        result = figure.by_params(scheduler="rrs", pcpus=pcpus)
        values = [availability(result, label) for label in LABELS]
        assert max(values) - min(values) < 0.05
        assert sum(values) == pytest.approx(min(4.0, pcpus), abs=0.1)

    # One PCPU: SCS starves the 2-VCPU VM; RCS does not.
    scs1 = figure.by_params(scheduler="scs", pcpus=1)
    assert availability(scs1, "VCPU1.1") == 0.0
    assert availability(scs1, "VCPU1.2") == 0.0
    assert availability(scs1, "VCPU2.1") > 0.4
    rcs1 = figure.by_params(scheduler="rcs", pcpus=1)
    assert availability(rcs1, "VCPU1.1") > 0.15
    wide = (availability(rcs1, "VCPU1.1") + availability(rcs1, "VCPU1.2")) / 2
    narrow = (availability(rcs1, "VCPU2.1") + availability(rcs1, "VCPU3.1")) / 2
    assert wide <= narrow + 1e-9

    # Co-scheduling fairness improves as PCPUs increase; RCS >= SCS.
    for scheduler in ("scs", "rcs"):
        assert fairness(figure, scheduler, 4) >= fairness(figure, scheduler, 1)
    assert fairness(figure, "rcs", 1) > fairness(figure, "scs", 1)

    # Four PCPUs: everyone is always ACTIVE.
    for scheduler in ("rrs", "scs", "rcs"):
        result = figure.by_params(scheduler=scheduler, pcpus=4)
        for label in LABELS:
            assert availability(result, label) == pytest.approx(1.0, abs=0.02)
