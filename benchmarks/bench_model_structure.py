"""Benchmark + artifact generation for the paper's Tables 1 and 2.

Tables 1 and 2 are structural (join places of the composed models), so
"reproducing" them means constructing the models and emitting the same
rows.  The timed quantity is model construction itself, which backs the
paper's "rapid evaluation" claim: assembling a complete virtualization
system takes milliseconds, versus modifying a 300K-line hypervisor.
"""

from repro.paper import table1, table2


def test_table1_join_places(benchmark, save_artifact):
    text = benchmark.pedantic(table1, rounds=5, iterations=1)
    save_artifact("table1_join_places", text)
    print("\n" + text)
    # The paper's Table 1 rows, verbatim.
    for expected in [
        "Workload_Generator->Blocked",
        "VM_Job_Scheduler->Blocked",
        "VCPU1->Blocked",
        "VCPU2->Blocked",
        "VM_Job_Scheduler->VCPU1_slot",
        "VCPU1->VCPU_slot",
        "Workload_Generator->Workload",
    ]:
        assert expected in text


def test_table2_join_places(benchmark, save_artifact):
    text = benchmark.pedantic(table2, rounds=5, iterations=1)
    save_artifact("table2_join_places", text)
    print("\n" + text)
    # The paper's Table 2 rows for the first VM, verbatim (modulo its
    # arrow notation).
    for expected in [
        "VM_2VCPU_1->VCPU1.Schedule_In",
        "VCPU_Scheduler->VCPU1_Schedule_In",
        "VM_2VCPU_1->VCPU2.Schedule_In",
        "VCPU_Scheduler->VCPU2_Schedule_In",
        "VM_2VCPU_1->VCPU1.Schedule_Out",
        "VM_2VCPU_2->VCPU1.Schedule_In",
        "VCPU_Scheduler->VCPU3_Schedule_In",
    ]:
        assert expected in text
