"""Service load test: hundreds of concurrent clients against one server.

Boots a real :class:`~repro.service.SimulationServer` on localhost and
fires ``--clients`` concurrent stdlib-asyncio clients at it, each
submitting one experiment and polling it to completion.  The client
population shares ``--distinct`` experiment identities (different root
seeds), deliberately oversubscribed — the realistic shape of a shared
simulation service where many users ask overlapping questions — so the
content-addressed cache carries most of the traffic.

Three phases, written to ``BENCH_pr8.json``:

* ``serial`` — the baseline: every *distinct* experiment through plain
  ``run_experiment``, no server;
* ``cold`` — the full client swarm against a fresh cache: the first
  job of each identity executes, every duplicate warm-hits;
* ``warm`` — the same swarm again: every job must execute **zero**
  replications.

Reported per phase: throughput (jobs/s), p50/p99 submit-to-done
latency, executed/cached replication counts, and the server's cache
hit ratio.  Hard gates (exit 1): every submit must be 202 and every
job must finish ``done``, service results must be exactly ``==`` the
serial baseline, the warm phase must execute zero replications, and
shutdown must leave zero live children.

``--smoke`` shrinks the swarm for CI; the same entry point is reused
by ``tests/service/test_bench_smoke.py``.
"""

import argparse
import asyncio
import json
import math
import multiprocessing
import shutil
import sys
import tempfile
import time

from repro.core import SystemSpec, run_experiment
from repro.service import ServiceClient, ServiceConfig, SimulationServer

SPEC = {
    "vms": [{"vcpus": 2}, {"vcpus": 1}],
    "pcpus": 2,
    "scheduler": "rrs",
    "sim_time": 250,
    "warmup": 50,
}

PROTOCOL = {"min_replications": 2, "max_replications": 3}


def _payload(seed, sim_time):
    spec = dict(SPEC, sim_time=sim_time)
    return {"spec": spec, "root_seed": seed, **PROTOCOL}


def _percentile(samples, q):
    """Nearest-rank percentile of a non-empty sample list."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


async def _one_client(client, payload, record):
    """Submit one job, poll it to a terminal state, log the round trip."""
    start = time.perf_counter()
    status, body = await client.submit(payload)
    if status != 202:
        record.append({"ok": False, "submit_status": status, "body": body})
        return
    final = await client.wait(body["job"], timeout=600.0)
    record.append(
        {
            "ok": final["status"] == "done",
            "submit_status": status,
            "final_status": final["status"],
            "latency": time.perf_counter() - start,
            "executed": final.get("executed", 0),
            "cache_hits": final.get("cache_hits", 0),
            "metrics": final.get("metrics"),
            "root_seed": payload["root_seed"],
        }
    )


async def _run_phase(server, payloads):
    """Fire one coroutine per payload, all concurrently; return the log."""
    client = ServiceClient("127.0.0.1", server.port)
    record = []
    start = time.perf_counter()
    await asyncio.gather(
        *[_one_client(client, payload, record) for payload in payloads]
    )
    wall = time.perf_counter() - start
    latencies = [entry["latency"] for entry in record if "latency" in entry]
    return {
        "jobs": len(payloads),
        "ok": sum(1 for entry in record if entry["ok"]),
        "wall_seconds": wall,
        "throughput_jobs_per_s": len(payloads) / wall if wall else 0.0,
        "p50_ms": _percentile(latencies, 0.50) * 1000 if latencies else None,
        "p99_ms": _percentile(latencies, 0.99) * 1000 if latencies else None,
        "executed": sum(entry.get("executed", 0) for entry in record),
        "cache_hits": sum(entry.get("cache_hits", 0) for entry in record),
        "warm_jobs": sum(1 for entry in record if entry.get("executed") == 0),
    }, record


def _serial_baseline(seeds, sim_time):
    """Every distinct experiment through plain ``run_experiment``."""
    start = time.perf_counter()
    reference = {}
    for seed in seeds:
        result = run_experiment(
            SystemSpec.from_dict(dict(SPEC, sim_time=sim_time)),
            root_seed=seed,
            **PROTOCOL,
        )
        reference[seed] = {
            name: {
                "mean": estimate.mean,
                "half_width": estimate.half_width,
                "n": estimate.n,
            }
            for name, estimate in result.estimates.items()
        }
    return reference, time.perf_counter() - start


def _identical_to_serial(record, reference):
    """Every service result must be exactly == its serial counterpart."""
    for entry in record:
        if entry.get("metrics") is None:
            return False
        if entry["metrics"] != reference[entry["root_seed"]]:
            return False
    return True


async def _run_load_test(clients, distinct, sim_time, cache_dir):
    seeds = list(range(distinct))
    payloads = [_payload(seeds[i % distinct], sim_time) for i in range(clients)]
    # Gate on children *this* load test creates: under pytest the same
    # process may hold unrelated stragglers from earlier suites.
    preexisting = {child.pid for child in multiprocessing.active_children()}
    server = SimulationServer(
        ServiceConfig(port=0, queue_limit=max(16, 2 * clients), cache_dir=cache_dir)
    )
    await server.start()
    try:
        cold, cold_record = await _run_phase(server, payloads)
        warm, warm_record = await _run_phase(server, payloads)
        stats = server.stats()
    finally:
        await server.shutdown()
    leaked = sum(
        1
        for child in multiprocessing.active_children()
        if child.pid not in preexisting
    )
    return cold, cold_record, warm, warm_record, stats, leaked


def run_benchmark(clients=200, distinct=20, sim_time=250):
    """Run every phase; return the full report dict (no I/O)."""
    seeds = list(range(distinct))
    reference, serial_wall = _serial_baseline(seeds, sim_time)

    cache_dir = tempfile.mkdtemp(prefix="bench_service_cache_")
    try:
        cold, cold_record, warm, warm_record, stats, leaked = asyncio.run(
            _run_load_test(clients, distinct, sim_time, cache_dir)
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    all_ok = cold["ok"] == cold["jobs"] and warm["ok"] == warm["jobs"]
    identical = _identical_to_serial(
        cold_record, reference
    ) and _identical_to_serial(warm_record, reference)
    return {
        "benchmark": "service-load",
        "config": {
            "clients": clients,
            "distinct_experiments": distinct,
            "sim_time": sim_time,
            **PROTOCOL,
            "spec": SPEC,
        },
        "results": {
            "serial": {"jobs": distinct, "wall_seconds": serial_wall},
            "cold": cold,
            "warm": warm,
        },
        "summary": {
            "throughput_jobs_per_s": cold["throughput_jobs_per_s"],
            "p50_ms": cold["p50_ms"],
            "p99_ms": cold["p99_ms"],
            "warm_p99_ms": warm["p99_ms"],
            "cache_hit_ratio": stats["cache"]["hit_ratio"],
            "warm_executed": warm["executed"],
            "all_responses_ok": all_ok,
            "identical_to_serial": identical,
            "leaked_children": leaked,
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Load-test the simulation service with concurrent clients"
    )
    parser.add_argument("--out", default="BENCH_pr8.json", help="report path")
    parser.add_argument("--clients", type=int, default=200)
    parser.add_argument(
        "--distinct",
        type=int,
        default=20,
        help="distinct experiment identities shared across the clients",
    )
    parser.add_argument("--sim-time", type=int, default=250)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small-scale CI mode (fewer clients, shorter horizon)",
    )
    args = parser.parse_args(argv)

    clients, distinct, sim_time = args.clients, args.distinct, args.sim_time
    if args.smoke:
        clients, distinct, sim_time = 24, 4, 150

    report = run_benchmark(clients=clients, distinct=distinct, sim_time=sim_time)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    summary = report["summary"]
    for phase in ("serial", "cold", "warm"):
        entry = report["results"][phase]
        extra = (
            f", p50 {entry['p50_ms']:.1f} ms, p99 {entry['p99_ms']:.1f} ms, "
            f"executed {entry['executed']}, warm jobs {entry['warm_jobs']}"
            if "p50_ms" in entry
            else ""
        )
        print(f"{phase}: {entry['jobs']} jobs in {entry['wall_seconds']:.2f} s{extra}")
    print(
        f"throughput {summary['throughput_jobs_per_s']:.1f} jobs/s, "
        f"cache hit ratio {summary['cache_hit_ratio']:.2f}, "
        f"identical_to_serial={summary['identical_to_serial']}, "
        f"leaked_children={summary['leaked_children']}, wrote {args.out}"
    )

    failures = []
    if not summary["all_responses_ok"]:
        failures.append("not every submit was accepted and finished 'done'")
    if not summary["identical_to_serial"]:
        failures.append("service results diverged from the serial baseline")
    if summary["warm_executed"] != 0:
        failures.append(
            f"warm phase executed {summary['warm_executed']} replications "
            "(expected 0)"
        )
    if summary["leaked_children"] != 0:
        failures.append(
            f"{summary['leaked_children']} child processes leaked past shutdown"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
