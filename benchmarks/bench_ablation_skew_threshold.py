"""Ablation: RCS skew threshold — the fairness/latency dial of §II.B.

The skew threshold is relaxed co-scheduling's central knob: a loose
threshold lets RCS degenerate toward RRS (skew never binds), a tight
one pushes it toward strict co-scheduling behaviour.  Measured on both
axes the paper uses: VCPU utilization (Figure 10's metric, where SCS
is the ceiling) and the wide-VM availability penalty at one PCPU
(Figure 8's RCS finding).
"""

from repro.core import SystemSpec, VMSpec, WorkloadSpec, run_experiment
from repro.core.results import render_table

from conftest import bench_params

THRESHOLDS = ((40, 20), (20, 10), (10, 5), (6, 2))


def run_sweep():
    params = bench_params()
    reps = params["replications"]
    rows = []
    values = {}
    for skew, relax in THRESHOLDS:
        scheduler_params = {"skew_threshold": skew, "relax_threshold": relax}
        # Axis 1: VCPU utilization on the oversubscribed 2+3 set.
        util_spec = SystemSpec(
            vms=[VMSpec(n, WorkloadSpec(sync_ratio=5)) for n in (2, 3)],
            pcpus=4,
            scheduler="rcs",
            scheduler_params=scheduler_params,
            sim_time=params["sim_time"],
            warmup=200,
        )
        util = run_experiment(
            util_spec, min_replications=reps[0], max_replications=reps[1]
        ).mean("vcpu_utilization")
        # Axis 2: wide-VM availability on a single PCPU (Figure 8 case).
        fair_spec = SystemSpec(
            vms=[VMSpec(2), VMSpec(1), VMSpec(1)],
            pcpus=1,
            scheduler="rcs",
            scheduler_params=scheduler_params,
            sim_time=params["sim_time"],
            warmup=200,
        )
        fair = run_experiment(
            fair_spec, min_replications=reps[0], max_replications=reps[1]
        )
        wide = (
            fair.mean("vcpu_availability[VCPU1.1]")
            + fair.mean("vcpu_availability[VCPU1.2]")
        ) / 2
        values[(skew, relax)] = (util, wide)
        rows.append([f"{skew}/{relax}", f"{util:.3f}", f"{wide:.3f}"])
    table = render_table(
        ["skew/relax", "vcpu_util (2+3, 4 PCPUs)", "wide-VM availability (1 PCPU)"],
        rows,
        title="Ablation: RCS skew threshold",
    )
    return values, table


def test_skew_threshold_ablation(benchmark, save_artifact):
    values, table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    save_artifact("ablation_skew_threshold", table)
    print("\n" + table)

    # Tightening the threshold improves synchronization behaviour...
    assert values[(10, 5)][0] > values[(40, 20)][0]
    # ...at the cost of the wide VM's share on a starved host.
    assert values[(6, 2)][1] <= values[(40, 20)][1] + 0.02
