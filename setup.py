"""Setuptools shim: lets ``pip install -e .`` work offline.

The environment has setuptools 65 but no ``wheel`` package, so PEP 517
editable installs (which build a wheel) fail; the legacy setup.py
develop path does not need wheel.  All real metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
