"""Observability: structured tracing, profiling, and trace checking.

Three layers on top of the simulation core:

* :mod:`~repro.observability.trace` — :class:`SimTracer` collects
  typed event records (scheduler decisions, activity firings, marking
  deltas, resilience interventions) and writes them as JSONL or Chrome
  ``trace_event`` JSON (viewable in Perfetto).  Zero overhead when off.
* :mod:`~repro.observability.profile` — :class:`SimProfiler`
  accumulates per-subsystem wall-clock timings and counters, surfaced
  via ``Simulation.stats()`` and the CLI ``--profile`` flag.
* :mod:`~repro.observability.checker` — :class:`TraceChecker` replays
  a trace against declarative scheduling invariants (PCPU exclusivity,
  gang co-scheduling, skew bounds, timeslice accounting).
* :mod:`~repro.observability.golden` — normalization and exact-match
  comparison for the committed golden-trace regression fixtures.
"""

from .checker import (
    CrewExclusivity,
    DegradationAccounting,
    ExclusivePCPU,
    Invariant,
    MonotoneTime,
    SkewBound,
    StrictCoScheduling,
    TimesliceAccounting,
    TraceChecker,
    Violation,
    check_trace,
    standard_invariants,
)
from .golden import GOLDEN_KINDS, GOLDEN_SCHEMA, diff_traces, normalize
from .profile import SimProfiler, profiling
from .trace import (
    RECORD_FIELDS,
    TRACE_FORMATS,
    SimTracer,
    TraceRecord,
    chrome_trace_events,
    read_jsonl,
    tracing,
)

__all__ = [
    "SimTracer",
    "TraceRecord",
    "tracing",
    "read_jsonl",
    "chrome_trace_events",
    "RECORD_FIELDS",
    "TRACE_FORMATS",
    "SimProfiler",
    "profiling",
    "TraceChecker",
    "Violation",
    "Invariant",
    "MonotoneTime",
    "ExclusivePCPU",
    "CrewExclusivity",
    "DegradationAccounting",
    "StrictCoScheduling",
    "SkewBound",
    "TimesliceAccounting",
    "check_trace",
    "standard_invariants",
    "GOLDEN_KINDS",
    "GOLDEN_SCHEMA",
    "normalize",
    "diff_traces",
]
