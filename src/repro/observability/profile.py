"""Lightweight per-subsystem profiling: wall-clock timers and counters.

A :class:`SimProfiler` accumulates named counters and elapsed-seconds
buckets while a run executes.  Instrumented sections — the simulator's
per-event phases (reward integration, completion, instantaneous
settling, timed rescheduling) and the hypervisor's ``Scheduling_Func``
gate — check the module-level ``_ACTIVE`` reference exactly like the
tracer does, so profiling is zero-overhead when off.

Results surface through ``Simulation.stats()`` and the CLI's
``--profile`` flag.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional


class SimProfiler:
    """Named wall-clock timers and event counters for one run.

    Example:
        >>> prof = SimProfiler()
        >>> with prof.section("scheduling_func"):
        ...     pass
        >>> prof.count("sched.ticks")
        >>> sorted(prof.stats()["counters"])
        ['sched.ticks']
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.seconds: Dict[str, float] = {}

    def count(self, name: str, n: int = 1) -> None:
        """Bump a named counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    def add_time(self, name: str, dt: float) -> None:
        """Accumulate elapsed seconds into a named bucket."""
        self.seconds[name] = self.seconds.get(name, 0.0) + dt

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time a block into the ``name`` bucket (and count its entries)."""
        start = perf_counter()
        try:
            yield
        finally:
            self.add_time(name, perf_counter() - start)
            self.count(name)

    def clear(self) -> None:
        self.counters.clear()
        self.seconds.clear()

    def stats(self) -> Dict[str, Any]:
        """Machine-readable snapshot (sorted for stable output)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "seconds": {k: round(v, 6) for k, v in sorted(self.seconds.items())},
        }

    def table(self) -> str:
        """Human-readable two-column summary for the CLI."""
        lines: List[str] = ["profile:"]
        for name, total in sorted(self.seconds.items(),
                                  key=lambda kv: kv[1], reverse=True):
            calls = self.counters.get(name)
            suffix = f"  ({calls} calls)" if calls else ""
            lines.append(f"  {name:<24} {total * 1000:10.3f} ms{suffix}")
        for name, value in sorted(self.counters.items()):
            if name not in self.seconds:
                lines.append(f"  {name:<24} {value:10d}")
        return "\n".join(lines)


_ACTIVE: Optional[SimProfiler] = None


def active() -> Optional[SimProfiler]:
    """The currently installed profiler, or ``None`` (profiling off)."""
    return _ACTIVE


@contextmanager
def profiling(profiler: SimProfiler) -> Iterator[SimProfiler]:
    """Install ``profiler`` as the process-global active profiler."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = profiler
    try:
        yield profiler
    finally:
        _ACTIVE = previous
