"""Golden-trace regression tooling: normalize, compare, regenerate.

A *golden trace* is a committed fixture holding the normalized
scheduler-level event stream of one deterministic run (fixed spec,
seed, replication).  The regression suite replays the run and demands
an **exact match** — any drift in scheduling behavior, tie-breaking,
random-stream consumption, or engine semantics fails loudly, which is
the correctness harness reward-level assertions cannot provide.

Normalization keeps fixtures stable across unrelated schema growth:

* only the kinds in :data:`GOLDEN_KINDS` are kept (engine-internal
  records such as ``activity.fire``, ``engine.schedule``/``cancel``
  and ``engine.fastforward`` are deliberately excluded — they are
  hot-path noise, and schedule-level behavior is what the paper's
  figures pin down).  This projection is also what makes golden
  fixtures engine-independent: the compiled engine *coalesces* runs of
  idle clock ticks into a single ``engine.fastforward`` record instead
  of k ``activity.fire`` records, so its raw trace differs from the
  other engines exactly and only in those engine-internal kinds.  No
  scheduler-level record can fall inside a coalesced span (fast-forward
  is only legal while the hypervisor provably makes no decision), so
  normalized traces — and therefore golden fixtures — are identical
  across all three engines;
* each kind is projected onto its :data:`GOLDEN_SCHEMA` field list, so
  *adding* a record field or a new record kind later never breaks a
  fixture, while changing or removing an asserted field does.

Refresh fixtures deliberately with ``pytest tests/golden
--regen-golden`` after an intentional behavior change, and review the
fixture diff like code.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from . import trace as _trace
from .trace import RecordLike, as_record

#: Record kinds included in golden fixtures (scheduler-level behavior).
GOLDEN_KINDS = (
    _trace.SCHED_IN,
    _trace.SCHED_OUT,
    _trace.SCHED_SKEW,
    _trace.PCPU_FAIL,
    _trace.PCPU_REPAIR,
    _trace.PCPU_DEGRADE,
    _trace.MAINT_START,
    _trace.MAINT_DONE,
    _trace.HV_OVERHEAD,
)

#: The exact fields each golden kind asserts on, in fixture key order.
GOLDEN_SCHEMA: Dict[str, tuple] = {
    _trace.SCHED_IN: ("vcpu", "vm", "vcpu_index", "pcpu", "timeslice"),
    _trace.SCHED_OUT: ("vcpu", "vm", "vcpu_index", "pcpu", "reason"),
    _trace.SCHED_SKEW: ("vm", "max_lag", "catching_up"),
    _trace.PCPU_FAIL: ("pcpu", "victim"),
    _trace.PCPU_REPAIR: ("pcpu",),
    _trace.PCPU_DEGRADE: ("pcpu", "from_health", "to_health", "capacity"),
    _trace.MAINT_START: ("pcpu", "policy", "health", "victim"),
    _trace.MAINT_DONE: ("pcpu", "policy"),
    _trace.HV_OVERHEAD: ("vcpu", "pcpu", "cost"),
}


def normalize(records: Iterable[RecordLike]) -> List[Dict[str, Any]]:
    """Project a trace onto the golden schema (ordered, plain dicts).

    Unknown kinds are dropped and unknown fields ignored, so traces
    emitted by a *newer* schema still normalize to the same fixture.
    """
    normalized: List[Dict[str, Any]] = []
    for raw in records:
        record = as_record(raw)
        schema = GOLDEN_SCHEMA.get(record.kind)
        if schema is None:
            continue
        entry: Dict[str, Any] = {"kind": record.kind, "t": round(float(record.t), 9)}
        for name in schema:
            if name in record.data:
                value = record.data[name]
                entry[name] = round(value, 9) if isinstance(value, float) else value
        normalized.append(entry)
    return normalized


def diff_traces(
    actual: List[Dict[str, Any]], golden: List[Dict[str, Any]]
) -> Optional[str]:
    """First divergence between two normalized traces, or ``None``.

    The message names the record index and both sides, which is enough
    to locate the drift in the fixture file (line ``index + 1``).
    """
    for index, (got, want) in enumerate(zip(actual, golden)):
        if got != want:
            return (
                f"trace diverges at record {index} (fixture line {index + 1}):\n"
                f"  expected: {json.dumps(want, sort_keys=True)}\n"
                f"  actual:   {json.dumps(got, sort_keys=True)}"
            )
    if len(actual) != len(golden):
        longer, n_a, n_g = (
            ("actual", len(actual), len(golden))
            if len(actual) > len(golden)
            else ("golden", len(actual), len(golden))
        )
        extra = (actual if longer == "actual" else golden)[min(n_a, n_g)]
        return (
            f"trace length mismatch: actual {n_a} records vs golden {n_g}; "
            f"first extra ({longer}): {json.dumps(extra, sort_keys=True)}"
        )
    return None


def dump_jsonl(path: str, normalized: List[Dict[str, Any]]) -> None:
    """Write a normalized trace as a sorted-key JSONL fixture."""
    with open(path, "w", encoding="utf-8") as handle:
        for entry in normalized:
            handle.write(json.dumps(entry, sort_keys=True))
            handle.write("\n")


def load_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a fixture written by :func:`dump_jsonl`."""
    entries: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries
