"""Structured simulation tracing: the event-level record of a run.

The paper validates its framework by *looking at* what schedulers do —
the Figure 8–10 schedules, co-stop/co-start behavior, skew bounding.
Aggregate rewards cannot express any of that; this module can.  A
:class:`SimTracer` collects typed, time-stamped records from every
layer of a run:

* the SAN engine (:mod:`repro.san.simulator`) — activity firings with
  their marking deltas, event schedule/cancel decisions;
* the hypervisor model (:mod:`repro.vmm.vcpu_scheduler`) — per-tick
  schedule-in/schedule-out decisions, timeslice expiries, PCPU
  fail/repair, and (for RCS) the per-VM co-scheduling skew;
* the resilience layer (:mod:`repro.resilience`) — guard-absorbed
  faults, quarantine transitions, chaos injections, executor retries.

Tracing is **off by default and zero-overhead when off**: the hot
paths check a single module-level ``_ACTIVE`` reference and skip all
trace work when it is ``None``.  Activate a tracer with the
:func:`tracing` context manager (or pass ``tracer=`` to
:class:`repro.core.framework.Simulation`), then write the records out
as JSONL (one record per line) or Chrome ``trace_event`` JSON, which
Perfetto (https://ui.perfetto.dev) renders as a per-PCPU Gantt chart —
the same picture as the paper's Figure 8.

Determinism: tracing never touches the random streams or the marking,
so a traced run is bit-for-bit identical to an untraced one, and the
two enablement engines emit *identical* traces (asserted by the
differential suite in ``tests/property``).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

from ..errors import ConfigurationError

# -- record kinds ---------------------------------------------------------
#
# One constant per record type; the fields each kind carries are listed
# in RECORD_FIELDS below (the schema the CLI tests and the golden-trace
# normalizer assert against).

RUN_START = "run.start"
RUN_END = "run.end"
ACTIVITY_FIRE = "activity.fire"
ENGINE_SCHEDULE = "engine.schedule"
ENGINE_CANCEL = "engine.cancel"
ENGINE_FASTFORWARD = "engine.fastforward"
SCHED_IN = "sched.in"
SCHED_OUT = "sched.out"
SCHED_SKEW = "sched.skew"
PCPU_FAIL = "pcpu.fail"
PCPU_REPAIR = "pcpu.repair"
PCPU_DEGRADE = "pcpu.degrade"
MAINT_START = "maint.start"
MAINT_DONE = "maint.done"
HV_OVERHEAD = "hv.overhead"
GUARD_FAULT = "guard.fault"
GUARD_QUARANTINE = "guard.quarantine"
CHAOS_CRASH = "chaos.crash"
CHAOS_STALL = "chaos.stall"
CHAOS_CORRUPT = "chaos.corrupt"
EXECUTOR_RETRY = "executor.retry"
SWEEP_DISPATCH = "sweep.dispatch"
CACHE_HIT = "cache.hit"
JOB_ACCEPTED = "job.accepted"
JOB_START = "job.start"
JOB_PROGRESS = "job.progress"
JOB_DONE = "job.done"

#: Every kind -> the data fields its records carry (beyond kind/t/seq).
RECORD_FIELDS: Dict[str, tuple] = {
    RUN_START: (
        "scheduler", "topology", "pcpus", "replication", "root_seed",
        "sim_time", "warmup", "params", "pcpu_failures", "guard", "chaos",
        "engine", "degradation", "maintenance", "hv_overhead",
    ),
    RUN_END: ("completions", "degraded"),
    ACTIVITY_FIRE: ("activity", "timed", "writes"),
    ENGINE_SCHEDULE: ("activity", "at"),
    ENGINE_CANCEL: ("activity",),
    # One record per coalesced clock span (compiled engine): the k
    # skipped ticks and the activity completions they account for.
    ENGINE_FASTFORWARD: ("ticks", "completions"),
    SCHED_IN: ("vcpu", "vm", "vcpu_index", "pcpu", "timeslice"),
    SCHED_OUT: ("vcpu", "vm", "vcpu_index", "pcpu", "reason"),
    SCHED_SKEW: ("vm", "max_lag", "catching_up"),
    PCPU_FAIL: ("pcpu", "victim"),
    PCPU_REPAIR: ("pcpu",),
    PCPU_DEGRADE: ("pcpu", "from_health", "to_health", "capacity"),
    MAINT_START: ("pcpu", "policy", "health", "victim"),
    MAINT_DONE: ("pcpu", "policy"),
    HV_OVERHEAD: ("vcpu", "pcpu", "cost"),
    GUARD_FAULT: ("scheduler", "fault_kind", "message"),
    GUARD_QUARANTINE: ("scheduler",),
    CHAOS_CRASH: ("replication",),
    CHAOS_STALL: ("replication", "seconds"),
    CHAOS_CORRUPT: ("replication", "corrupt_kind"),
    EXECUTOR_RETRY: ("replication", "attempt", "seed"),
    # One record per sweep-engine grant: which point got the next
    # replication, why (floor/adaptive/retry), and on which worker.
    SWEEP_DISPATCH: ("point", "replication", "attempt", "worker", "reason", "distance"),
    CACHE_HIT: ("scope", "replication", "key"),
    # Service-layer job lifecycle records (the NDJSON wire format the
    # simulation server streams to clients; ``t`` is seconds since the
    # job was accepted rather than simulated time).
    JOB_ACCEPTED: ("job", "tenant"),
    JOB_START: ("job",),
    JOB_PROGRESS: ("job", "event", "point", "replication", "ok"),
    JOB_DONE: ("job", "status", "replications", "executed", "cache_hits"),
}

#: Schedule-out reasons the hypervisor model distinguishes.
OUT_DECISION = "decision"
OUT_EXPIRE = "expire"
OUT_PCPU_FAILURE = "pcpu_failure"
OUT_MAINTENANCE = "maintenance"

TRACE_FORMATS = ("jsonl", "chrome")


@dataclass
class TraceRecord:
    """One typed trace event.

    Attributes:
        kind: record type, one of the module constants (``sched.in``, ...).
        t: simulated time of the event.
        seq: emission sequence number (total order even among records
            carrying the same simulated time).
        data: the kind-specific fields (see :data:`RECORD_FIELDS`).
    """

    kind: str
    t: float
    seq: int
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Flat dict form (JSONL line payload)."""
        payload = {"kind": self.kind, "t": self.t, "seq": self.seq}
        payload.update(self.data)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceRecord":
        data = {k: v for k, v in payload.items() if k not in ("kind", "t", "seq")}
        return cls(
            kind=payload["kind"],
            t=float(payload["t"]),
            seq=int(payload.get("seq", 0)),
            data=data,
        )

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)


RecordLike = Union[TraceRecord, Dict[str, Any]]


def as_record(record: RecordLike) -> TraceRecord:
    """Coerce a JSONL dict or a :class:`TraceRecord` to a record."""
    if isinstance(record, TraceRecord):
        return record
    return TraceRecord.from_dict(record)


class SimTracer:
    """Collects trace records; optionally filtered to a set of kinds.

    Args:
        kinds: only record these kinds (``None`` = everything).  The
            golden-trace suite uses this to keep fixtures compact.

    Example:
        >>> tracer = SimTracer(kinds=(SCHED_IN, SCHED_OUT))
        >>> with tracing(tracer):
        ...     pass  # run a simulation here
        >>> tracer.records
        []
    """

    def __init__(self, kinds: Optional[Iterable[str]] = None) -> None:
        self.records: List[TraceRecord] = []
        self._kinds = frozenset(kinds) if kinds is not None else None
        self._seq = 0
        # Default timestamp for emissions from deep inside gate closures
        # that have no clock access; the simulator keeps it current.
        self._now = 0.0

    def emit(self, kind: str, time: Optional[float] = None, **fields: Any) -> None:
        """Record one event (dropped silently if filtered out)."""
        if self._kinds is not None and kind not in self._kinds:
            return
        t = self._now if time is None else float(time)
        self.records.append(TraceRecord(kind=kind, t=t, seq=self._seq, data=fields))
        self._seq += 1

    def clear(self) -> None:
        self.records.clear()
        self._seq = 0
        self._now = 0.0

    def __len__(self) -> int:
        return len(self.records)

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [record.to_dict() for record in self.records]

    def stats(self) -> Dict[str, Any]:
        """Per-kind record counts (merged into ``Simulation.stats()``)."""
        by_kind: Dict[str, int] = {}
        for record in self.records:
            by_kind[record.kind] = by_kind.get(record.kind, 0) + 1
        return {"trace_records": len(self.records), "trace_kinds": by_kind}

    # -- writers ----------------------------------------------------------

    def write(self, path: str, format: str = "jsonl") -> None:
        """Write the trace to ``path`` in the given format."""
        if format == "jsonl":
            self.write_jsonl(path)
        elif format == "chrome":
            self.write_chrome(path)
        else:
            raise ConfigurationError(
                f"trace format must be one of {TRACE_FORMATS}, got {format!r}"
            )

    def write_jsonl(self, path: str) -> None:
        """One JSON object per line, in emission order."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(json.dumps(record.to_dict(), sort_keys=True))
                handle.write("\n")

    def write_chrome(self, path: str) -> None:
        """Chrome ``trace_event`` JSON (load in Perfetto or chrome://tracing)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                {"traceEvents": chrome_trace_events(self.records),
                 "displayTimeUnit": "ms"},
                handle,
            )


def to_wire(record: RecordLike) -> str:
    """One record as its canonical wire line (JSON, sorted keys).

    The simulation service streams job progress as NDJSON: one
    :func:`to_wire` line per record, ``\\n``-terminated by the caller.
    The format is byte-identical to :meth:`SimTracer.write_jsonl` lines,
    so trace tooling reads service streams unchanged.
    """
    return json.dumps(as_record(record).to_dict(), sort_keys=True)


def from_wire(line: str) -> TraceRecord:
    """Parse one NDJSON wire line back into a :class:`TraceRecord`."""
    return TraceRecord.from_dict(json.loads(line))


def read_jsonl(path: str) -> List[TraceRecord]:
    """Load a JSONL trace file back into records."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(TraceRecord.from_dict(json.loads(line)))
    return records


# -- Chrome trace_event conversion ---------------------------------------

_ENGINE_TID = 1000
_RESILIENCE_TID = 1001
_TS_SCALE = 1000.0  # 1 simulated tick -> 1ms on the Perfetto timeline


def _thread_meta(tid: int, name: str) -> Dict[str, Any]:
    return {"ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
            "args": {"name": name}}


def chrome_trace_events(records: Iterable[RecordLike]) -> List[Dict[str, Any]]:
    """Convert records to Chrome ``trace_event`` dicts.

    Schedule-in/out pairs become complete ("X") slices on a per-PCPU
    track — Perfetto then shows the run's schedule exactly like the
    paper's Figure 8 Gantt charts.  Skew records become counter tracks;
    everything else becomes instant events on engine/resilience tracks.
    """
    events: List[Dict[str, Any]] = [_thread_meta(_ENGINE_TID, "SAN engine"),
                                    _thread_meta(_RESILIENCE_TID, "resilience")]
    seen_pcpus: set = set()
    open_spans: Dict[int, TraceRecord] = {}  # vcpu -> sched.in record
    last_t = 0.0
    for raw in records:
        record = as_record(raw)
        last_t = max(last_t, record.t)
        ts = record.t * _TS_SCALE
        if record.kind == SCHED_IN:
            open_spans[record.get("vcpu")] = record
            seen_pcpus.add(record.get("pcpu"))
        elif record.kind == SCHED_OUT:
            start = open_spans.pop(record.get("vcpu"), None)
            if start is not None:
                events.append(_slice(start, record.t, record.get("reason")))
        elif record.kind == SCHED_SKEW:
            events.append({
                "ph": "C", "pid": 1, "tid": _ENGINE_TID, "ts": ts,
                "name": f"skew VM{record.get('vm')}",
                "args": {"max_lag": record.get("max_lag")},
            })
        elif record.kind in (PCPU_FAIL, PCPU_REPAIR, PCPU_DEGRADE,
                             MAINT_START, MAINT_DONE):
            seen_pcpus.add(record.get("pcpu"))
            events.append({
                "ph": "i", "s": "t", "pid": 1, "tid": record.get("pcpu"),
                "ts": ts, "cat": "pcpu", "name": record.kind,
                "args": dict(record.data),
            })
        elif record.kind in (GUARD_FAULT, GUARD_QUARANTINE, CHAOS_CRASH,
                             CHAOS_STALL, CHAOS_CORRUPT, EXECUTOR_RETRY,
                             SWEEP_DISPATCH, CACHE_HIT, JOB_ACCEPTED,
                             JOB_START, JOB_PROGRESS, JOB_DONE):
            events.append({
                "ph": "i", "s": "p", "pid": 1, "tid": _RESILIENCE_TID,
                "ts": ts, "cat": "resilience", "name": record.kind,
                "args": dict(record.data),
            })
        else:  # activity.fire, engine.*, run.* -> engine track instants
            events.append({
                "ph": "i", "s": "t", "pid": 1, "tid": _ENGINE_TID,
                "ts": ts, "cat": "engine", "name": record.kind,
                "args": dict(record.data),
            })
    # Close any span still open at the end of the trace.
    for start in open_spans.values():
        events.append(_slice(start, last_t, "open_at_end"))
    for pcpu in sorted(p for p in seen_pcpus if p is not None):
        events.append(_thread_meta(pcpu, f"PCPU {pcpu}"))
    return events


def _slice(start: TraceRecord, end_t: float, reason: Any) -> Dict[str, Any]:
    return {
        "ph": "X", "pid": 1, "tid": start.get("pcpu"),
        "ts": start.t * _TS_SCALE, "dur": (end_t - start.t) * _TS_SCALE,
        "cat": "sched",
        "name": f"VM{start.get('vm')}.VCPU{start.get('vcpu_index')}",
        "args": {"vcpu": start.get("vcpu"),
                 "timeslice": start.get("timeslice"), "out": reason},
    }


# -- the process-global active tracer -------------------------------------
#
# Hook sites all over the codebase (simulator hot loops, gate closures,
# the guard, chaos, the executor) check ``_ACTIVE is not None`` and do
# nothing else when tracing is off — that single pointer test is the
# entire disabled-path cost.

_ACTIVE: Optional[SimTracer] = None


def active() -> Optional[SimTracer]:
    """The currently installed tracer, or ``None`` (tracing off)."""
    return _ACTIVE


@contextmanager
def tracing(tracer: SimTracer) -> Iterator[SimTracer]:
    """Install ``tracer`` as the process-global active tracer.

    Nesting replaces the outer tracer for the inner block and restores
    it afterwards.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous
