"""Replay a trace against declarative scheduling invariants.

A :class:`TraceChecker` walks the records a :class:`~.trace.SimTracer`
collected (or a JSONL trace loaded back from disk) and checks the
properties the paper's schedulers are *supposed* to have — far
stronger assertions than reward-level tolerances:

* **mutual exclusion** — a PCPU never runs two VCPUs at once, never
  hosts a VCPU while FAILED, and schedule-out always matches an actual
  assignment;
* **strict co-scheduling** — under SCS, a VM's VCPUs are active
  all-or-none at every instant (gang co-start/co-stop);
* **bounded skew** — under RCS, the per-VM sibling lag the scheduler
  tracks never exceeds the configured skew bound (plus the bounded
  slack its catch-up reaction time allows);
* **timeslice accounting** — every residency fits its granted
  timeslice, expiry evicts after exactly the granted tenure, and
  per-PCPU busy time never exceeds elapsed time.

Invariants configure themselves from the trace's ``run.start`` record
(scheduler name, topology, scheduler parameters, failure model), so
``check_trace(records)`` is all a test needs.  Traces containing
several replications (one ``run.start`` each) are checked per segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from . import trace as _trace
from .trace import RecordLike, TraceRecord, as_record

_EPS = 1e-9


@dataclass
class Violation:
    """One invariant breach found while replaying a trace."""

    time: float
    invariant: str
    message: str

    def __str__(self) -> str:
        return f"[{self.invariant}] t={self.time:g}: {self.message}"


class Invariant:
    """Base class: feed records in order, collect violations.

    Subclasses override :meth:`on_record` (and optionally
    :meth:`finish` for end-of-trace checks) and must reset their
    per-replication state when a ``run.start`` record arrives.
    """

    name = "invariant"

    def __init__(self) -> None:
        self.violations: List[Violation] = []

    def violation(self, time: float, message: str) -> None:
        self.violations.append(Violation(time=time, invariant=self.name,
                                         message=message))

    def on_record(self, record: TraceRecord) -> None:  # pragma: no cover
        raise NotImplementedError

    def finish(self) -> None:
        """Called once after the last record."""


class MonotoneTime(Invariant):
    """Timestamps never go backwards; sequence numbers strictly grow."""

    name = "monotone-time"

    def __init__(self) -> None:
        super().__init__()
        self._last_t: Optional[float] = None
        self._last_seq: Optional[int] = None

    def on_record(self, record: TraceRecord) -> None:
        if record.kind == _trace.RUN_START:
            self._last_t = None  # a new replication restarts the clock
        elif self._last_t is not None and record.t < self._last_t - _EPS:
            self.violation(record.t,
                           f"time went backwards: {self._last_t} -> {record.t}")
        self._last_t = record.t if self._last_t is None else max(self._last_t, record.t)
        if self._last_seq is not None and record.seq <= self._last_seq:
            self.violation(record.t,
                           f"seq not increasing: {self._last_seq} -> {record.seq}")
        self._last_seq = record.seq


class ExclusivePCPU(Invariant):
    """A PCPU hosts at most one VCPU, and never while FAILED."""

    name = "exclusive-pcpu"

    def __init__(self) -> None:
        super().__init__()
        self._reset()

    def _reset(self) -> None:
        self._holder: Dict[int, int] = {}   # pcpu -> vcpu
        self._held: Dict[int, int] = {}     # vcpu -> pcpu
        self._failed: set = set()
        self._maint: set = set()

    def on_record(self, record: TraceRecord) -> None:
        kind = record.kind
        if kind == _trace.RUN_START:
            self._reset()
        elif kind == _trace.SCHED_IN:
            vcpu, pcpu = record.get("vcpu"), record.get("pcpu")
            if pcpu in self._holder:
                self.violation(record.t,
                               f"PCPU {pcpu} assigned to VCPU {vcpu} while "
                               f"running VCPU {self._holder[pcpu]}")
            if pcpu in self._failed:
                self.violation(record.t,
                               f"VCPU {vcpu} scheduled onto FAILED PCPU {pcpu}")
            if pcpu in self._maint:
                self.violation(record.t,
                               f"VCPU {vcpu} scheduled onto PCPU {pcpu}, "
                               f"which is under maintenance")
            if vcpu in self._held:
                self.violation(record.t,
                               f"VCPU {vcpu} scheduled in while already on "
                               f"PCPU {self._held[vcpu]}")
            self._holder[pcpu] = vcpu
            self._held[vcpu] = pcpu
        elif kind == _trace.SCHED_OUT:
            vcpu, pcpu = record.get("vcpu"), record.get("pcpu")
            if self._held.get(vcpu) != pcpu:
                self.violation(record.t,
                               f"schedule_out of VCPU {vcpu} from PCPU {pcpu}, "
                               f"but it holds {self._held.get(vcpu)}")
            self._held.pop(vcpu, None)
            if self._holder.get(pcpu) == vcpu:
                del self._holder[pcpu]
        elif kind == _trace.PCPU_FAIL:
            pcpu = record.get("pcpu")
            if pcpu in self._holder:
                self.violation(record.t,
                               f"PCPU {pcpu} failed while still hosting "
                               f"VCPU {self._holder[pcpu]}")
            self._failed.add(pcpu)
        elif kind == _trace.PCPU_REPAIR:
            pcpu = record.get("pcpu")
            if pcpu not in self._failed:
                self.violation(record.t, f"repair of PCPU {pcpu}, which is not FAILED")
            self._failed.discard(pcpu)
        elif kind == _trace.MAINT_START:
            pcpu = record.get("pcpu")
            if pcpu in self._holder:
                self.violation(record.t,
                               f"maintenance started on PCPU {pcpu} while it "
                               f"still hosts VCPU {self._holder[pcpu]}")
            self._maint.add(pcpu)
        elif kind == _trace.MAINT_DONE:
            self._maint.discard(record.get("pcpu"))


class StrictCoScheduling(Invariant):
    """Under SCS, every VM's VCPUs are active all-or-none at all times.

    Checked at every timestamp boundary (within one instant the model
    applies co-stops before co-starts, so the mid-instant state may
    legitimately be mixed).  The invariant deactivates once a guard
    quarantine hands control to the round-robin fallback.
    """

    name = "strict-co-scheduling"

    def __init__(self, topology: List[int]) -> None:
        super().__init__()
        self._sizes = {vm_id: int(n) for vm_id, n in enumerate(topology)}
        self._reset()

    def _reset(self) -> None:
        self._active: Dict[int, set] = {}   # vm -> set of active vcpus
        self._pending_t: Optional[float] = None
        self._enabled = True

    def _check_boundary(self) -> None:
        if not self._enabled or self._pending_t is None:
            return
        for vm_id, active in self._active.items():
            size = self._sizes.get(vm_id, len(active))
            if active and len(active) != size:
                self.violation(
                    self._pending_t,
                    f"VM {vm_id} has {sorted(active)} active but siblings "
                    f"stopped (gang size {size})",
                )

    def on_record(self, record: TraceRecord) -> None:
        if record.kind == _trace.RUN_START:
            self._check_boundary()
            self._reset()
            return
        if self._pending_t is not None and record.t > self._pending_t + _EPS:
            self._check_boundary()
        self._pending_t = record.t
        if record.kind == _trace.SCHED_IN:
            self._active.setdefault(record.get("vm"), set()).add(record.get("vcpu"))
        elif record.kind == _trace.SCHED_OUT:
            self._active.get(record.get("vm"), set()).discard(record.get("vcpu"))
        elif record.kind == _trace.GUARD_QUARANTINE:
            self._enabled = False  # round-robin fallback is not gang-scheduled

    def finish(self) -> None:
        self._check_boundary()


class SkewBound(Invariant):
    """Under RCS, sibling lag stays within the configured skew bound.

    The scheduler trips catch-up when lag exceeds ``skew_threshold``;
    its reaction takes effect the following tick, and a mid-pack
    sibling may legally run on until its own lead passes
    ``relax_threshold`` — so the hard ceiling on observable lag is
    ``skew_threshold + relax_threshold`` plus two ticks of slack.
    """

    name = "skew-bound"

    def __init__(self, skew_threshold: float, relax_threshold: float) -> None:
        super().__init__()
        self.bound = float(skew_threshold) + float(relax_threshold) + 2.0

    def on_record(self, record: TraceRecord) -> None:
        if record.kind == _trace.SCHED_SKEW:
            max_lag = float(record.get("max_lag", 0.0))
            if max_lag > self.bound + _EPS:
                self.violation(
                    record.t,
                    f"VM {record.get('vm')} skew {max_lag:g} exceeds "
                    f"bound {self.bound:g}",
                )


class TimesliceAccounting(Invariant):
    """Residencies fit their grants; PCPU busy time fits elapsed time.

    * a residency never outlives its granted timeslice;
    * an ``expire`` eviction happens after *exactly* the granted tenure
      (the model decrements one tick per clock firing);
    * per PCPU, total busy time within a replication never exceeds the
      replication's elapsed time.
    """

    name = "timeslice-accounting"

    def __init__(self) -> None:
        super().__init__()
        self._reset()

    def _reset(self) -> None:
        self._open: Dict[int, TraceRecord] = {}   # vcpu -> sched.in record
        self._busy: Dict[int, float] = {}         # pcpu -> accumulated busy
        self._start_t: float = 0.0
        self._end_t: float = 0.0

    def _close_segment(self) -> None:
        for start in self._open.values():  # still running at end of segment
            pcpu = start.get("pcpu")
            self._busy[pcpu] = self._busy.get(pcpu, 0.0) + (self._end_t - start.t)
        elapsed = self._end_t - self._start_t
        for pcpu, busy in self._busy.items():
            if busy > elapsed + 1e-6:
                self.violation(
                    self._end_t,
                    f"PCPU {pcpu} accumulated {busy:g} busy ticks in "
                    f"{elapsed:g} elapsed ticks",
                )

    def on_record(self, record: TraceRecord) -> None:
        if record.kind == _trace.RUN_START:
            self._close_segment()
            self._reset()
            self._start_t = record.t
            self._end_t = record.t
            return
        self._end_t = max(self._end_t, record.t)
        if record.kind == _trace.SCHED_IN:
            self._open[record.get("vcpu")] = record
        elif record.kind == _trace.SCHED_OUT:
            vcpu = record.get("vcpu")
            start = self._open.pop(vcpu, None)
            if start is None:
                return  # exclusive-pcpu reports the pairing violation
            granted = start.get("timeslice")
            duration = record.t - start.t
            pcpu = start.get("pcpu")
            self._busy[pcpu] = self._busy.get(pcpu, 0.0) + duration
            if granted is not None and duration > granted + _EPS:
                self.violation(
                    record.t,
                    f"VCPU {vcpu} held PCPU {pcpu} for {duration:g} ticks "
                    f"on a {granted}-tick timeslice",
                )
            if (record.get("reason") == _trace.OUT_EXPIRE
                    and granted is not None
                    and abs(duration - granted) > _EPS):
                self.violation(
                    record.t,
                    f"VCPU {vcpu} expired after {duration:g} ticks, "
                    f"granted {granted}",
                )

    def finish(self) -> None:
        self._close_segment()


class CrewExclusivity(Invariant):
    """Maintenance jobs never exceed the bounded repair-crew pool.

    Every ``maint.start`` must pair with a later ``maint.done`` on the
    same PCPU, a PCPU is serviced by at most one crew at a time, and
    the number of concurrently open jobs never exceeds the configured
    crew count.
    """

    name = "crew-exclusivity"

    def __init__(self, crews: int) -> None:
        super().__init__()
        self.crews = int(crews)
        self._in_maint: set = set()

    def on_record(self, record: TraceRecord) -> None:
        kind = record.kind
        if kind == _trace.RUN_START:
            self._in_maint = set()
        elif kind == _trace.MAINT_START:
            pcpu = record.get("pcpu")
            if pcpu in self._in_maint:
                self.violation(record.t,
                               f"maintenance started on PCPU {pcpu}, "
                               f"which is already under maintenance")
            self._in_maint.add(pcpu)
            if len(self._in_maint) > self.crews:
                self.violation(
                    record.t,
                    f"{len(self._in_maint)} concurrent maintenance jobs "
                    f"exceed the {self.crews}-crew pool",
                )
        elif kind == _trace.MAINT_DONE:
            pcpu = record.get("pcpu")
            if pcpu not in self._in_maint:
                self.violation(record.t,
                               f"maintenance done on PCPU {pcpu} without "
                               f"a matching start")
            self._in_maint.discard(pcpu)


class DegradationAccounting(Invariant):
    """Health transitions are consistent with the degradation model.

    * every ``pcpu.degrade`` departs from the health the trace last
      established for that PCPU and lands inside ``[0, h_max]``;
    * the advertised ``capacity`` matches the model's capacity ladder
      at the new health state;
    * ``pcpu.fail`` only happens at terminal health (``h_max``) while a
      degradation process runs;
    * ``maint.done`` restores the PCPU to pristine health (0).

    The initial health of each PCPU is not in the trace header (it may
    be non-zero via ``initial_health``), so the first transition of a
    PCPU pins its tracked state instead of being checked.
    """

    name = "degradation-accounting"

    def __init__(self, h_max: int, capacity: List[float]) -> None:
        super().__init__()
        self.h_max = int(h_max)
        self.capacity = [float(c) for c in capacity]
        self._health: Dict[int, int] = {}

    def on_record(self, record: TraceRecord) -> None:
        kind = record.kind
        if kind == _trace.RUN_START:
            self._health = {}
        elif kind == _trace.PCPU_DEGRADE:
            pcpu = record.get("pcpu")
            from_h = record.get("from_health")
            to_h = record.get("to_health")
            known = self._health.get(pcpu)
            if known is not None and from_h != known:
                self.violation(record.t,
                               f"PCPU {pcpu} degrades from health {from_h}, "
                               f"but the trace last left it at {known}")
            if not 0 <= to_h <= self.h_max:
                self.violation(record.t,
                               f"PCPU {pcpu} degraded to health {to_h}, "
                               f"outside [0, {self.h_max}]")
            elif to_h < len(self.capacity):
                advertised = record.get("capacity")
                if (advertised is not None
                        and abs(float(advertised) - self.capacity[to_h]) > _EPS):
                    self.violation(
                        record.t,
                        f"PCPU {pcpu} advertises capacity {advertised:g} at "
                        f"health {to_h}, model says {self.capacity[to_h]:g}",
                    )
            self._health[pcpu] = to_h
        elif kind == _trace.PCPU_FAIL:
            pcpu = record.get("pcpu")
            if self._health.get(pcpu) != self.h_max:
                self.violation(
                    record.t,
                    f"PCPU {pcpu} failed at health "
                    f"{self._health.get(pcpu)}, not terminal ({self.h_max})",
                )
        elif kind == _trace.MAINT_DONE:
            self._health[record.get("pcpu")] = 0


class TraceChecker:
    """Runs a set of invariants over a trace.

    Example:
        >>> checker = TraceChecker([MonotoneTime(), ExclusivePCPU()])
        >>> checker.check([])
        []
    """

    def __init__(self, invariants: Iterable[Invariant]) -> None:
        self.invariants = list(invariants)

    def check(self, records: Iterable[RecordLike]) -> List[Violation]:
        """Replay ``records`` (TraceRecords or JSONL dicts) in order."""
        invariants = self.invariants
        for raw in records:
            record = as_record(raw)
            for invariant in invariants:
                invariant.on_record(record)
        violations: List[Violation] = []
        for invariant in invariants:
            invariant.finish()
            violations.extend(invariant.violations)
        return violations


def standard_invariants(records: Iterable[RecordLike]) -> List[Invariant]:
    """Build the invariant set the trace's own ``run.start`` calls for.

    Always: monotone time, exclusive PCPU occupancy, timeslice
    accounting.  Scheduler-specific invariants switch on by registry
    name: gang all-or-none for ``scs`` (skipped when a PCPU failure or
    degradation process runs — a mid-slice failure legitimately breaks
    a gang) and the skew bound for ``rcs``.  When the ``run.start``
    header declares a degradation model, health/capacity accounting is
    checked; a maintenance policy adds repair-crew exclusivity.
    """
    start: Optional[TraceRecord] = None
    for raw in records:
        record = as_record(raw)
        if record.kind == _trace.RUN_START:
            start = record
            break
    invariants: List[Invariant] = [MonotoneTime(), ExclusivePCPU(),
                                   TimesliceAccounting()]
    if start is None:
        return invariants
    scheduler = start.get("scheduler")
    params: Dict[str, Any] = start.get("params") or {}
    degradation = start.get("degradation")
    maintenance = start.get("maintenance")
    if degradation:
        invariants.append(DegradationAccounting(
            h_max=degradation.get("h_max", 1),
            capacity=degradation.get("capacity") or [1.0, 0.0],
        ))
    if maintenance:
        invariants.append(CrewExclusivity(crews=maintenance.get("crews", 1)))
    if (scheduler == "scs" and not start.get("pcpu_failures")
            and not degradation):
        invariants.append(StrictCoScheduling(start.get("topology") or []))
    if scheduler == "rcs":
        invariants.append(SkewBound(
            skew_threshold=params.get("skew_threshold", 10),
            relax_threshold=params.get("relax_threshold", 5),
        ))
    return invariants


def check_trace(records: Iterable[RecordLike]) -> List[Violation]:
    """One-call check: standard invariants, configured from the trace."""
    records = [as_record(r) for r in records]
    return TraceChecker(standard_invariants(records)).check(records)
