"""Declarative system specifications.

The paper's users assemble systems in the Mobius GUI: drag sub-models,
draw join connections, type parameters.  The Python equivalent is a
plain-data spec — :class:`SystemSpec` holds everything needed to build
and run one virtualization system, and round-trips through dicts for
storage in experiment scripts and results files.

Example:
    >>> spec = SystemSpec(
    ...     vms=[VMSpec(vcpus=2), VMSpec(vcpus=1), VMSpec(vcpus=1)],
    ...     pcpus=2,
    ...     scheduler="rrs",
    ...     sim_time=2000,
    ... )
    >>> spec.total_vcpus()
    4
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..des.distributions import Distribution, UniformInt, from_spec
from ..errors import ConfigurationError
from ..resilience.degradation import (
    DegradationModel,
    HVOverheadModel,
    MaintenancePolicy,
)
from ..workloads.generators import (
    BernoulliRatio,
    DeterministicRatio,
    NoSync,
    SyncPolicy,
    WorkloadModel,
)
from .registry import is_registered


@dataclass
class WorkloadSpec:
    """One VM's workload parameters.

    Attributes:
        load: load-duration distribution — a :class:`repro.des.Distribution`
            or a dict spec like ``{"kind": "uniform_int", "low": 5,
            "high": 15}`` (the default).
        sync_ratio: the paper's 1:k ratio — one sync point per ``k``
            workloads.  ``None`` disables synchronization.
        sync_kind: ``"deterministic"`` (every k-th job, the default) or
            ``"bernoulli"`` (probability 1/k per job).
    """

    load: Union[Distribution, Dict[str, Any], None] = None
    sync_ratio: Optional[int] = 5
    sync_kind: str = "deterministic"

    def validate(self) -> None:
        """Check the spec; raises :class:`ConfigurationError` on problems."""
        if self.sync_ratio is not None and self.sync_ratio < 1:
            raise ConfigurationError(
                f"sync_ratio must be >= 1 or None, got {self.sync_ratio}"
            )
        if self.sync_kind not in ("deterministic", "bernoulli"):
            raise ConfigurationError(
                f"sync_kind must be 'deterministic' or 'bernoulli', got {self.sync_kind!r}"
            )
        self.build()  # surfaces bad distribution specs early

    def build(self) -> WorkloadModel:
        """Materialize the spec into a :class:`WorkloadModel`."""
        load = UniformInt(5, 15) if self.load is None else from_spec(self.load)
        policy: SyncPolicy
        if self.sync_ratio is None:
            policy = NoSync()
        elif self.sync_kind == "bernoulli":
            policy = BernoulliRatio(self.sync_ratio)
        else:
            policy = DeterministicRatio(self.sync_ratio)
        return WorkloadModel(load, policy)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe); inverse of :meth:`from_dict`."""
        load: Any
        if self.load is None or isinstance(self.load, dict):
            load = self.load
        else:
            raise ConfigurationError(
                "to_dict() requires the load distribution as a dict spec "
                f"(got a {type(self.load).__name__} instance)"
            )
        return {"load": load, "sync_ratio": self.sync_ratio, "sync_kind": self.sync_kind}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "WorkloadSpec":
        return cls(
            load=payload.get("load"),
            sync_ratio=payload.get("sync_ratio", 5),
            sync_kind=payload.get("sync_kind", "deterministic"),
        )


@dataclass
class VMSpec:
    """One virtual machine: its VCPU count, workload, and job dispatch.

    ``dispatch`` selects the job scheduler's READY-VCPU policy:
    ``"round_robin"`` (the paper's even distribution, default),
    ``"first_ready"``, or ``"random"``.
    """

    vcpus: int
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    dispatch: str = "round_robin"

    def validate(self) -> None:
        """Check the spec; raises :class:`ConfigurationError` on problems."""
        if self.vcpus < 1:
            raise ConfigurationError(f"a VM needs >= 1 VCPU, got {self.vcpus}")
        if self.dispatch not in ("round_robin", "first_ready", "random"):
            raise ConfigurationError(
                f"unknown dispatch policy {self.dispatch!r}"
            )
        self.workload.validate()

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe); inverse of :meth:`from_dict`."""
        return {
            "vcpus": self.vcpus,
            "workload": self.workload.to_dict(),
            "dispatch": self.dispatch,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "VMSpec":
        return cls(
            vcpus=int(payload["vcpus"]),
            workload=WorkloadSpec.from_dict(payload.get("workload", {})),
            dispatch=payload.get("dispatch", "round_robin"),
        )


@dataclass
class SystemSpec:
    """A complete virtualization system plus its simulation horizon.

    Attributes:
        vms: the virtual machines.
        pcpus: number of physical CPUs.
        scheduler: registered scheduler name (see
            :func:`repro.core.registry.list_schedulers`).
        scheduler_params: keyword arguments for the scheduler factory
            (``timeslice``, RCS thresholds, credit weights, ...).
        sim_time: simulated clock ticks per replication.
        warmup: ticks discarded before rewards accumulate.
        vm_slots: static job-scheduler slots per VM (paper: 8).
        scheduler_slots: static hypervisor VCPU slots (paper: 16).
        pcpu_failures: optional ``{"mtbf": ..., "mttr": ...}`` attaching
            an exponential fail/repair process to every PCPU (the
            dependability extension).
        degradation: optional dict form of a
            :class:`repro.resilience.degradation.DegradationModel` —
            the multi-state Markov health extension (mutually
            exclusive with ``pcpu_failures``).
        maintenance: optional dict form of a
            :class:`repro.resilience.degradation.MaintenancePolicy`
            (requires ``degradation``).
        hv_overhead: optional ``{"cost": n}`` charging ``n``
            hypervisor ticks per world switch.
    """

    vms: List[VMSpec]
    pcpus: int
    scheduler: str = "rrs"
    scheduler_params: Dict[str, Any] = field(default_factory=dict)
    sim_time: int = 2000
    warmup: int = 200
    vm_slots: int = 8
    scheduler_slots: int = 16
    pcpu_failures: Optional[Dict[str, float]] = None
    degradation: Optional[Dict[str, Any]] = None
    maintenance: Optional[Dict[str, Any]] = None
    hv_overhead: Optional[Dict[str, Any]] = None

    def validate(self) -> None:
        """Check every field; raises :class:`ConfigurationError` on the
        first problem, naming the offending field."""
        if not self.vms:
            raise ConfigurationError("a system needs at least one VM")
        for index, vm in enumerate(self.vms):
            try:
                vm.validate()
            except ConfigurationError as exc:
                raise ConfigurationError(f"vms[{index}]: {exc}") from exc
        if self.pcpus < 1:
            raise ConfigurationError(f"pcpus must be >= 1, got {self.pcpus}")
        if not is_registered(self.scheduler):
            raise ConfigurationError(
                f"scheduler {self.scheduler!r} is not registered"
            )
        if self.sim_time < 1:
            raise ConfigurationError(f"sim_time must be >= 1, got {self.sim_time}")
        if not 0 <= self.warmup < self.sim_time:
            raise ConfigurationError(
                f"warmup must be in [0, sim_time), got {self.warmup} "
                f"with sim_time={self.sim_time}"
            )
        for vm in self.vms:
            if vm.vcpus > self.vm_slots:
                raise ConfigurationError(
                    f"a VM has {vm.vcpus} VCPUs but vm_slots={self.vm_slots}"
                )
        if self.total_vcpus() > self.scheduler_slots:
            raise ConfigurationError(
                f"{self.total_vcpus()} total VCPUs exceed "
                f"scheduler_slots={self.scheduler_slots}"
            )
        if self.pcpu_failures is not None:
            if set(self.pcpu_failures) != {"mtbf", "mttr"}:
                raise ConfigurationError(
                    "pcpu_failures needs exactly the keys 'mtbf' and 'mttr', "
                    f"got {sorted(self.pcpu_failures)}"
                )
            if self.pcpu_failures["mtbf"] <= 0 or self.pcpu_failures["mttr"] <= 0:
                raise ConfigurationError(
                    "pcpu_failures mtbf/mttr must be > 0, got "
                    f"{self.pcpu_failures}"
                )
        if self.degradation is not None and self.pcpu_failures is not None:
            raise ConfigurationError(
                "degradation and pcpu_failures are mutually exclusive "
                "(terminal health *is* failure)"
            )
        if self.maintenance is not None and self.degradation is None:
            raise ConfigurationError(
                "maintenance requires a degradation model to repair"
            )
        degradation_model = None
        if self.degradation is not None:
            try:
                degradation_model = DegradationModel.from_dict(self.degradation)
            except ConfigurationError as exc:
                raise ConfigurationError(f"degradation: {exc}") from exc
            if (
                degradation_model.initial_health is not None
                and len(degradation_model.initial_health) != self.pcpus
            ):
                raise ConfigurationError(
                    "degradation: initial_health lists "
                    f"{len(degradation_model.initial_health)} entries for "
                    f"{self.pcpus} PCPUs"
                )
        if self.maintenance is not None:
            try:
                policy = MaintenancePolicy.from_dict(self.maintenance)
            except ConfigurationError as exc:
                raise ConfigurationError(f"maintenance: {exc}") from exc
            if (
                policy.policy == "condition_based"
                and policy.threshold > degradation_model.h_max
            ):
                raise ConfigurationError(
                    f"maintenance: condition_based threshold {policy.threshold} "
                    f"exceeds h_max {degradation_model.h_max}"
                )
        if self.hv_overhead is not None:
            try:
                HVOverheadModel.from_dict(self.hv_overhead)
            except ConfigurationError as exc:
                raise ConfigurationError(f"hv_overhead: {exc}") from exc
        # The paper: "at most the same number of VCPUs as ... physical
        # cores" per VM.  We keep that constraint advisory rather than
        # fatal: SCS's zero-availability result at 1 PCPU depends on
        # violating it, and the paper's own Figure 8 does exactly that.

    def total_vcpus(self) -> int:
        """Sum of all VMs' VCPU counts."""
        return sum(vm.vcpus for vm in self.vms)

    def topology(self) -> List[int]:
        """VCPUs per VM, in order."""
        return [vm.vcpus for vm in self.vms]

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe); inverse of :meth:`from_dict`."""
        return {
            "vms": [vm.to_dict() for vm in self.vms],
            "pcpus": self.pcpus,
            "scheduler": self.scheduler,
            "scheduler_params": dict(self.scheduler_params),
            "sim_time": self.sim_time,
            "warmup": self.warmup,
            "vm_slots": self.vm_slots,
            "scheduler_slots": self.scheduler_slots,
            "pcpu_failures": dict(self.pcpu_failures) if self.pcpu_failures else None,
            "degradation": dict(self.degradation) if self.degradation else None,
            "maintenance": dict(self.maintenance) if self.maintenance else None,
            "hv_overhead": dict(self.hv_overhead) if self.hv_overhead else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SystemSpec":
        try:
            return cls(
                vms=[VMSpec.from_dict(vm) for vm in payload["vms"]],
                pcpus=int(payload["pcpus"]),
                scheduler=payload.get("scheduler", "rrs"),
                scheduler_params=dict(payload.get("scheduler_params", {})),
                sim_time=int(payload.get("sim_time", 2000)),
                warmup=int(payload.get("warmup", 200)),
                vm_slots=int(payload.get("vm_slots", 8)),
                scheduler_slots=int(payload.get("scheduler_slots", 16)),
                pcpu_failures=payload.get("pcpu_failures"),
                degradation=payload.get("degradation"),
                maintenance=payload.get("maintenance"),
                hv_overhead=payload.get("hv_overhead"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed system spec: {exc}") from exc

    def with_overrides(self, **overrides) -> "SystemSpec":
        """A copy of this spec with some fields replaced (for sweeps)."""
        payload = self.to_dict() if not any(
            isinstance(vm.workload.load, Distribution) for vm in self.vms
        ) else None
        if payload is None:
            # Distribution instances do not round-trip through dicts;
            # copy structurally instead.
            copied = SystemSpec(
                vms=[VMSpec(vm.vcpus, WorkloadSpec(
                    vm.workload.load, vm.workload.sync_ratio, vm.workload.sync_kind
                ), vm.dispatch) for vm in self.vms],
                pcpus=self.pcpus,
                scheduler=self.scheduler,
                scheduler_params=dict(self.scheduler_params),
                sim_time=self.sim_time,
                warmup=self.warmup,
                vm_slots=self.vm_slots,
                scheduler_slots=self.scheduler_slots,
                pcpu_failures=dict(self.pcpu_failures) if self.pcpu_failures else None,
                degradation=dict(self.degradation) if self.degradation else None,
                maintenance=dict(self.maintenance) if self.maintenance else None,
                hv_overhead=dict(self.hv_overhead) if self.hv_overhead else None,
            )
        else:
            copied = SystemSpec.from_dict(payload)
        for key, value in overrides.items():
            if not hasattr(copied, key):
                raise ConfigurationError(f"SystemSpec has no field {key!r}")
            setattr(copied, key, value)
        return copied
