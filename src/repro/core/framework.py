"""The user-facing simulation facade.

Ties the layers together: a :class:`~repro.core.config.SystemSpec` is
materialized into the paper's composed SAN model with the standard
reward variables attached, and one call runs a replication.

Example — the whole paper workflow in four lines:

    >>> from repro.core import SystemSpec, VMSpec, simulate_once
    >>> spec = SystemSpec(vms=[VMSpec(2), VMSpec(1)], pcpus=2,
    ...                   scheduler="rrs", sim_time=500, warmup=50)
    >>> result = simulate_once(spec, replication=0)
    >>> 0.0 <= result.metrics["pcpu_utilization"] <= 1.0
    True
"""

from __future__ import annotations

import contextlib
import json
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..des.random_streams import StreamFactory
from ..errors import ConfigurationError
from ..metrics.collectors import per_vm_blocked_fraction, workloads_generated
from ..metrics.rewards import standard_rewards
from ..observability import trace as _trace
from ..observability.profile import SimProfiler, profiling
from ..observability.trace import SimTracer, tracing
from ..resilience.chaos import ChaosScheduler, ChaosSpec
from ..resilience.degradation import (
    DegradationModel,
    HVOverheadModel,
    MaintenancePolicy,
)
from ..resilience.failures import ReplicationFailure
from ..resilience.guard import GuardedScheduler, GuardPolicy
from ..san import (
    ComposedModel,
    SANSimulator,
    build_simulator,
    resolve_engine,
    run_lanes,
)
from .config import SystemSpec
from .registry import create_scheduler
from ..vmm.system import build_virtual_system
from ..vmm.vcpu_scheduler import PCPUFailureModel


def _failure_model(spec: "SystemSpec"):
    """Materialize the spec's optional pcpu_failures dict."""
    if spec.pcpu_failures is None:
        return None
    return PCPUFailureModel(**spec.pcpu_failures)


def _degradation_models(spec: "SystemSpec"):
    """Materialize the spec's degradation/maintenance/hv_overhead dicts."""
    degradation = (
        DegradationModel.from_dict(spec.degradation)
        if spec.degradation is not None
        else None
    )
    maintenance = (
        MaintenancePolicy.from_dict(spec.maintenance)
        if spec.maintenance is not None
        else None
    )
    hv_overhead = (
        HVOverheadModel.from_dict(spec.hv_overhead)
        if spec.hv_overhead is not None
        else None
    )
    return degradation, maintenance, hv_overhead


# -- cross-replication model reuse -------------------------------------------
#
# Building (and, for the compiled engine, lowering) the composed model is a
# pure function of the spec, yet it dominates wall time for short
# replications.  A small per-process cache keeps built (system, simulator,
# rewards) triples; the next replication of the same spec checks one out,
# swaps in a fresh scheduler algorithm, reseeds the existing stream objects
# in place, and resets the simulator — no rebuild, no recompile.  The
# parallel executor gets this for free: each worker process has its own
# cache, so a sweep compiles each spec once per worker.


@dataclass
class _CachedModel:
    system: ComposedModel
    simulator: SANSimulator
    rewards: Dict[str, Any]
    in_use: bool = False


_REUSE_CAP = 8
_MODEL_CACHE: "OrderedDict[str, _CachedModel]" = OrderedDict()


def clear_model_cache() -> None:
    """Drop all cached models (tests; memory pressure)."""
    _MODEL_CACHE.clear()


def _reuse_key(spec: SystemSpec, engine: str, extra_probes: bool) -> Optional[str]:
    """Cache key, or None when the spec cannot be serialized (no reuse)."""
    try:
        blob = json.dumps(spec.to_dict(), sort_keys=True)
    except (ConfigurationError, TypeError, ValueError):
        return None  # e.g. a live Distribution instance as the load
    return f"{blob}|{engine}|{int(bool(extra_probes))}"


def _cache_checkout(key: str) -> Optional[_CachedModel]:
    entry = _MODEL_CACHE.get(key)
    if entry is None or entry.in_use:
        return None
    entry.in_use = True
    _MODEL_CACHE.move_to_end(key)
    return entry


def _cache_register(key: str, entry: _CachedModel) -> None:
    _MODEL_CACHE[key] = entry
    while len(_MODEL_CACHE) > _REUSE_CAP:
        for stale_key in _MODEL_CACHE:
            if not _MODEL_CACHE[stale_key].in_use:
                del _MODEL_CACHE[stale_key]
                break
        else:  # everything checked out: let the cache grow past the cap
            break


@dataclass
class RunResult:
    """Everything measured in one replication.

    ``failures`` carries the tick-level scheduler faults the decision
    guard absorbed (empty when unguarded or fault-free); ``degraded``
    is True when the guard quarantined the algorithm mid-run and the
    round-robin fallback finished the replication.
    """

    spec: SystemSpec
    replication: int
    root_seed: int
    metrics: Dict[str, float] = field(default_factory=dict)
    completions: int = 0  # activity completions (simulator effort)
    failures: List[ReplicationFailure] = field(default_factory=list)
    degraded: bool = False

    def metric(self, name: str) -> float:
        """Look up one metric, with a helpful error on typos."""
        if name not in self.metrics:
            raise KeyError(
                f"unknown metric {name!r}; available: {sorted(self.metrics)}"
            )
        return self.metrics[name]


class Simulation:
    """One buildable/runnable virtualization system.

    Wraps model construction and reward attachment; each
    :class:`Simulation` instance serves exactly one replication (models
    and scheduler state are replication-private by design — Mobius
    likewise re-initializes per batch).
    """

    def __init__(
        self,
        spec: SystemSpec,
        replication: int = 0,
        root_seed: int = 0,
        extra_probes: bool = False,
        guard: Optional[GuardPolicy] = None,
        chaos: Optional[ChaosSpec] = None,
        attempt: int = 0,
        incremental: bool = True,
        tracer: Optional[SimTracer] = None,
        profile: bool = False,
        engine: Optional[str] = None,
        reuse: bool = False,
    ) -> None:
        spec.validate()
        self.spec = spec
        self.replication = int(replication)
        self.root_seed = int(root_seed)
        self.tracer = tracer
        self.profiler: Optional[SimProfiler] = SimProfiler() if profile else None
        self._guard_policy = guard
        self._chaos_spec = chaos
        engine_name = resolve_engine(engine, incremental)

        algorithm = create_scheduler(spec.scheduler, **spec.scheduler_params)
        self._algorithm_root = algorithm
        # Wrap order matters: chaos sabotages the (possibly buggy) user
        # algorithm; the guard then isolates whatever comes out of it.
        if chaos is not None:
            algorithm = ChaosScheduler(
                algorithm, chaos, replication=replication, attempt=attempt
            )
        self._guard: Optional[GuardedScheduler] = None
        if guard is not None:
            algorithm = GuardedScheduler(algorithm, guard)
            self._guard = algorithm

        cache_key = _reuse_key(spec, engine_name, extra_probes) if reuse else None
        self._cache_entry = _cache_checkout(cache_key) if cache_key else None
        if self._cache_entry is not None:
            entry = self._cache_entry
            self.system = entry.system
            self.simulator = entry.simulator
            self.rewards = entry.rewards
            # The scheduling closure reads the scheduler sub-model's
            # ``algorithm`` attribute; metrics and metadata read the
            # composed model's.  Point both at this replication's fresh
            # (possibly wrapped) instance.
            self.system.algorithm = algorithm
            self.system.scheduler.algorithm = algorithm
            # Re-arm the *existing* stream objects rather than minting a
            # new factory: builder closures captured these objects, and a
            # fresh factory would split their streams from the simulator's.
            self.streams = self.simulator.streams
            self.streams.reseed(root_seed, replication)
            self.simulator.reset()
        else:
            self.streams = StreamFactory(root_seed=root_seed, replication=replication)
            vm_configs = [
                (vm.vcpus, vm.workload.build(), vm.dispatch) for vm in spec.vms
            ]
            degradation, maintenance, hv_overhead = _degradation_models(spec)
            self.system = build_virtual_system(
                vm_configs,
                algorithm,
                spec.pcpus,
                streams=self.streams,
                vm_slots=spec.vm_slots,
                scheduler_slots=spec.scheduler_slots,
                failures=_failure_model(spec),
                degradation=degradation,
                maintenance=maintenance,
                hv_overhead=hv_overhead,
            )
            self.simulator = build_simulator(
                self.system, self.streams, engine=engine_name
            )
            self.rewards = standard_rewards(self.system, warmup=spec.warmup)
            if extra_probes:
                self.rewards.update(
                    per_vm_blocked_fraction(self.system, warmup=spec.warmup)
                )
                self.rewards.update(
                    workloads_generated(self.system, warmup=spec.warmup)
                )
            for reward in self.rewards.values():
                self.simulator.add_reward(reward)
            if cache_key is not None:
                self._cache_entry = _CachedModel(
                    self.system, self.simulator, self.rewards, in_use=True
                )
                _cache_register(cache_key, self._cache_entry)
        self._ran = False

    def _degradation_header(self) -> Optional[Dict[str, Any]]:
        """The ``run.start`` degradation payload the checker configures from."""
        if self.spec.degradation is None:
            return None
        model = DegradationModel.from_dict(self.spec.degradation)
        return {"h_max": model.h_max, "capacity": model.effective_capacity()}

    def _run_header(self) -> Dict[str, Any]:
        """The ``run.start`` payload: everything needed to re-run the trace."""
        params: Dict[str, Any] = {"timeslice": self._algorithm_root.timeslice}
        params.update(self.spec.scheduler_params)
        return {
            "scheduler": self.spec.scheduler,
            "topology": [vm.vcpus for vm in self.spec.vms],
            "pcpus": self.spec.pcpus,
            "replication": self.replication,
            "root_seed": self.root_seed,
            "sim_time": self.spec.sim_time,
            "warmup": self.spec.warmup,
            "params": params,
            "pcpu_failures": self.spec.pcpu_failures is not None,
            "guard": self._guard_policy.mode if self._guard_policy else None,
            "chaos": self._chaos_spec is not None,
            "engine": self.simulator.engine,
            "degradation": self._degradation_header(),
            "maintenance": (
                {
                    "policy": self.spec.maintenance.get("policy", "corrective"),
                    "crews": int(self.spec.maintenance.get("crews", 1)),
                }
                if self.spec.maintenance is not None
                else None
            ),
            "hv_overhead": (
                int(self.spec.hv_overhead["cost"])
                if self.spec.hv_overhead is not None
                else None
            ),
        }

    def run(self) -> RunResult:
        """Run the replication to ``spec.sim_time`` and collect metrics."""
        if self._ran:
            raise RuntimeError(
                "a Simulation runs exactly once; build a new instance "
                "(with the next replication index) for another run"
            )
        try:
            return self._run_once()
        finally:
            # Even a faulted run may release: the next checkout resets the
            # simulator (markings, queue, rewards, streams) from scratch.
            self._release_cache()

    def _run_once(self) -> RunResult:
        with contextlib.ExitStack() as stack:
            if self.tracer is not None:
                stack.enter_context(tracing(self.tracer))
            if self.profiler is not None:
                stack.enter_context(profiling(self.profiler))
            tracer = _trace._ACTIVE
            if tracer is not None:
                tracer._now = 0.0
                tracer.emit(_trace.RUN_START, time=0.0, **self._run_header())
            self.simulator.run(until=self.spec.sim_time)
            if tracer is not None:
                tracer.emit(
                    _trace.RUN_END,
                    time=self.simulator.clock.now,
                    completions=self.simulator.completions,
                    degraded=self._guard.quarantined if self._guard else False,
                )
        return self._collect_result()

    def _collect_result(self) -> RunResult:
        """Assemble the RunResult after the simulator reached sim_time.

        Split out of :meth:`_run_once` so an external driver (the batch
        dispatcher) can advance ``self.simulator`` itself and still get
        the identical result path.
        """
        self._ran = True
        metrics = {name: reward.result() for name, reward in self.rewards.items()}
        failures: List[ReplicationFailure] = []
        degraded = False
        if self._guard is not None:
            failures = list(self._guard.failures)
            for failure in failures:
                failure.replication = self.replication
            degraded = self._guard.quarantined
        return RunResult(
            spec=self.spec,
            replication=self.replication,
            root_seed=self.root_seed,
            metrics=metrics,
            completions=self.simulator.completions,
            failures=failures,
            degraded=degraded,
        )

    def _release_cache(self) -> None:
        """Return a checked-out cached model (idempotent)."""
        entry = self._cache_entry
        if entry is not None:
            entry.in_use = False
            self._cache_entry = None

    def stats(self) -> Dict[str, Any]:
        """Engine counters plus (when enabled) profiling and trace stats."""
        stats = dict(self.simulator.stats())
        if self.profiler is not None:
            stats["profile"] = self.profiler.stats()
        if self.tracer is not None:
            stats.update(self.tracer.stats())
        return stats


def simulate_once(
    spec: SystemSpec,
    replication: int = 0,
    root_seed: int = 0,
    extra_probes: bool = False,
    guard: Optional[GuardPolicy] = None,
    chaos: Optional[ChaosSpec] = None,
    attempt: int = 0,
    incremental: bool = True,
    tracer: Optional[SimTracer] = None,
    profile: bool = False,
    engine: Optional[str] = None,
    reuse: bool = False,
) -> RunResult:
    """Build and run one replication of ``spec`` (the quickstart entry).

    Args:
        guard: optional decision-guard policy isolating scheduler
            faults (see :mod:`repro.resilience.guard`).
        chaos: optional deterministic fault-injection plan (testing).
        attempt: retry attempt index; only chaos targeting uses it.
        incremental: legacy engine toggle (False forces full rescan);
            ignored when ``engine`` is given.
        tracer: optional :class:`~repro.observability.SimTracer`;
            activated around the run so every layer's hooks emit into it.
        profile: collect per-subsystem timings (``Simulation.stats()``).
        engine: enablement engine name — ``"incremental"`` (default),
            ``"rescan"``, or ``"compiled"`` (see :mod:`repro.san.compiled`).
        reuse: check the built model out of the per-process cache when an
            identical spec/engine pair ran before (cheap reset + reseed
            instead of a rebuild); bit-identical results either way.
    """
    return Simulation(
        spec,
        replication=replication,
        root_seed=root_seed,
        extra_probes=extra_probes,
        guard=guard,
        chaos=chaos,
        attempt=attempt,
        incremental=incremental,
        tracer=tracer,
        profile=profile,
        engine=engine,
        reuse=reuse,
    ).run()


# -- replication-batched dispatch ---------------------------------------------
#
# The batch engine runs R replications of one spec through a shared calendar
# (see repro.san.compiled.run_lanes).  Guarded or chaos-wrapped replications
# carry per-replication wrapper state that the trace/guard contract defines
# in terms of a single serial run, so those fall back to the serial compiled
# engine, one replication at a time; the module-level counters let tests and
# stats assert which path actually executed.

#: Lanes driven concurrently per group (bounds peak model memory).
BATCH_WIDTH_DEFAULT = 8

_BATCH_DISPATCH = {"groups": 0, "batched": 0, "fallback": 0}


def batch_dispatch_stats() -> Dict[str, int]:
    """Counters for the batch dispatcher: groups run, replications per path."""
    return dict(_BATCH_DISPATCH)


def reset_batch_dispatch_stats() -> None:
    for key in _BATCH_DISPATCH:
        _BATCH_DISPATCH[key] = 0


def simulate_batch(
    spec: SystemSpec,
    replications: Sequence[int],
    root_seed: int = 0,
    extra_probes: bool = False,
    guard: Optional[GuardPolicy] = None,
    chaos: Optional[ChaosSpec] = None,
    attempt: int = 0,
    engine: Optional[str] = "batch",
    reuse: bool = False,
    width: Optional[int] = None,
    wave_window: Optional[float] = None,
) -> List[RunResult]:
    """Run several replications of one spec, batched through one calendar.

    Groups of up to ``width`` replications each get their own model lane
    (own marking, event wheel, and per-replication streams — the exact
    serial sample paths) and advance together off a shared calendar, so
    co-temporal clock ticks across replications execute back to back.
    Results are returned in ``replications`` order and are bit-identical
    to ``[simulate_once(spec, r, ...) for r in replications]``.

    ``wave_window`` sets the wave calendar's interleaving granularity
    (default: the engine's ``WAVE_WINDOW``); lanes are independent, so
    any positive width yields the same per-lane results — only cache
    locality changes.  Fully-IR models skip the wave loop entirely for
    the vectorized kernel runner, which ignores the window.

    Fallback rules (each replication counted in
    :func:`batch_dispatch_stats`): a ``guard`` or ``chaos`` wrapper, or
    an active tracer, forces the serial ``compiled`` engine per
    replication (wave interleaving would shuffle lanes' records into
    one stream, breaking the checker's per-replication invariants); a
    non-batch ``engine`` simply loops :func:`simulate_once` with that
    engine.
    """
    replication_list = [int(r) for r in replications]
    engine_name = resolve_engine(engine, True)
    if engine_name != "batch":
        return [
            simulate_once(
                spec,
                replication=r,
                root_seed=root_seed,
                extra_probes=extra_probes,
                guard=guard,
                chaos=chaos,
                attempt=attempt,
                engine=engine_name,
                reuse=reuse,
            )
            for r in replication_list
        ]
    if guard is not None or chaos is not None or _trace._ACTIVE is not None:
        _BATCH_DISPATCH["fallback"] += len(replication_list)
        return [
            simulate_once(
                spec,
                replication=r,
                root_seed=root_seed,
                extra_probes=extra_probes,
                guard=guard,
                chaos=chaos,
                attempt=attempt,
                engine="compiled",
                reuse=reuse,
            )
            for r in replication_list
        ]
    lane_width = int(width) if width is not None else BATCH_WIDTH_DEFAULT
    if lane_width < 1:
        raise ConfigurationError(f"batch width must be >= 1, got {lane_width}")
    results: List[RunResult] = []
    for start in range(0, len(replication_list), lane_width):
        group = replication_list[start : start + lane_width]
        sims = [
            Simulation(
                spec,
                replication=r,
                root_seed=root_seed,
                extra_probes=extra_probes,
                engine="batch",
                reuse=reuse,
            )
            for r in group
        ]
        try:
            run_lanes(
                [sim.simulator for sim in sims], spec.sim_time, window=wave_window
            )
            results.extend(sim._collect_result() for sim in sims)
        finally:
            for sim in sims:
                sim._release_cache()
        _BATCH_DISPATCH["groups"] += 1
        _BATCH_DISPATCH["batched"] += len(group)
    return results


def build_system(
    spec: SystemSpec,
    replication: int = 0,
    root_seed: int = 0,
) -> ComposedModel:
    """Materialize a spec into the composed SAN model, without running it.

    Useful for structural inspection (join-place tables, traces) and for
    users who want to attach custom reward variables before simulating.
    """
    spec.validate()
    streams = StreamFactory(root_seed=root_seed, replication=replication)
    algorithm = create_scheduler(spec.scheduler, **spec.scheduler_params)
    vm_configs = [(vm.vcpus, vm.workload.build(), vm.dispatch) for vm in spec.vms]
    degradation, maintenance, hv_overhead = _degradation_models(spec)
    return build_virtual_system(
        vm_configs,
        algorithm,
        spec.pcpus,
        streams=streams,
        vm_slots=spec.vm_slots,
        scheduler_slots=spec.scheduler_slots,
        failures=_failure_model(spec),
        degradation=degradation,
        maintenance=maintenance,
        hv_overhead=hv_overhead,
    )
