"""The user-facing simulation facade.

Ties the layers together: a :class:`~repro.core.config.SystemSpec` is
materialized into the paper's composed SAN model with the standard
reward variables attached, and one call runs a replication.

Example — the whole paper workflow in four lines:

    >>> from repro.core import SystemSpec, VMSpec, simulate_once
    >>> spec = SystemSpec(vms=[VMSpec(2), VMSpec(1)], pcpus=2,
    ...                   scheduler="rrs", sim_time=500, warmup=50)
    >>> result = simulate_once(spec, replication=0)
    >>> 0.0 <= result.metrics["pcpu_utilization"] <= 1.0
    True
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..des.random_streams import StreamFactory
from ..metrics.collectors import per_vm_blocked_fraction, workloads_generated
from ..metrics.rewards import standard_rewards
from ..observability import trace as _trace
from ..observability.profile import SimProfiler, profiling
from ..observability.trace import SimTracer, tracing
from ..resilience.chaos import ChaosScheduler, ChaosSpec
from ..resilience.failures import ReplicationFailure
from ..resilience.guard import GuardedScheduler, GuardPolicy
from ..san import ComposedModel, SANSimulator
from .config import SystemSpec
from .registry import create_scheduler
from ..vmm.system import build_virtual_system
from ..vmm.vcpu_scheduler import PCPUFailureModel


def _failure_model(spec: "SystemSpec"):
    """Materialize the spec's optional pcpu_failures dict."""
    if spec.pcpu_failures is None:
        return None
    return PCPUFailureModel(**spec.pcpu_failures)


@dataclass
class RunResult:
    """Everything measured in one replication.

    ``failures`` carries the tick-level scheduler faults the decision
    guard absorbed (empty when unguarded or fault-free); ``degraded``
    is True when the guard quarantined the algorithm mid-run and the
    round-robin fallback finished the replication.
    """

    spec: SystemSpec
    replication: int
    root_seed: int
    metrics: Dict[str, float] = field(default_factory=dict)
    completions: int = 0  # activity completions (simulator effort)
    failures: List[ReplicationFailure] = field(default_factory=list)
    degraded: bool = False

    def metric(self, name: str) -> float:
        """Look up one metric, with a helpful error on typos."""
        if name not in self.metrics:
            raise KeyError(
                f"unknown metric {name!r}; available: {sorted(self.metrics)}"
            )
        return self.metrics[name]


class Simulation:
    """One buildable/runnable virtualization system.

    Wraps model construction and reward attachment; each
    :class:`Simulation` instance serves exactly one replication (models
    and scheduler state are replication-private by design — Mobius
    likewise re-initializes per batch).
    """

    def __init__(
        self,
        spec: SystemSpec,
        replication: int = 0,
        root_seed: int = 0,
        extra_probes: bool = False,
        guard: Optional[GuardPolicy] = None,
        chaos: Optional[ChaosSpec] = None,
        attempt: int = 0,
        incremental: bool = True,
        tracer: Optional[SimTracer] = None,
        profile: bool = False,
    ) -> None:
        spec.validate()
        self.spec = spec
        self.replication = int(replication)
        self.root_seed = int(root_seed)
        self.tracer = tracer
        self.profiler: Optional[SimProfiler] = SimProfiler() if profile else None
        self._guard_policy = guard
        self._chaos_spec = chaos
        self.streams = StreamFactory(root_seed=root_seed, replication=replication)

        algorithm = create_scheduler(spec.scheduler, **spec.scheduler_params)
        self._algorithm_root = algorithm
        # Wrap order matters: chaos sabotages the (possibly buggy) user
        # algorithm; the guard then isolates whatever comes out of it.
        if chaos is not None:
            algorithm = ChaosScheduler(
                algorithm, chaos, replication=replication, attempt=attempt
            )
        self._guard: Optional[GuardedScheduler] = None
        if guard is not None:
            algorithm = GuardedScheduler(algorithm, guard)
            self._guard = algorithm
        vm_configs = [(vm.vcpus, vm.workload.build(), vm.dispatch) for vm in spec.vms]
        self.system: ComposedModel = build_virtual_system(
            vm_configs,
            algorithm,
            spec.pcpus,
            streams=self.streams,
            vm_slots=spec.vm_slots,
            scheduler_slots=spec.scheduler_slots,
            failures=_failure_model(spec),
        )
        self.simulator = SANSimulator(self.system, self.streams, incremental=incremental)
        self.rewards = standard_rewards(self.system, warmup=spec.warmup)
        if extra_probes:
            self.rewards.update(per_vm_blocked_fraction(self.system, warmup=spec.warmup))
            self.rewards.update(workloads_generated(self.system, warmup=spec.warmup))
        for reward in self.rewards.values():
            self.simulator.add_reward(reward)
        self._ran = False

    def _run_header(self) -> Dict[str, Any]:
        """The ``run.start`` payload: everything needed to re-run the trace."""
        params: Dict[str, Any] = {"timeslice": self._algorithm_root.timeslice}
        params.update(self.spec.scheduler_params)
        return {
            "scheduler": self.spec.scheduler,
            "topology": [vm.vcpus for vm in self.spec.vms],
            "pcpus": self.spec.pcpus,
            "replication": self.replication,
            "root_seed": self.root_seed,
            "sim_time": self.spec.sim_time,
            "warmup": self.spec.warmup,
            "params": params,
            "pcpu_failures": self.spec.pcpu_failures is not None,
            "guard": self._guard_policy.mode if self._guard_policy else None,
            "chaos": self._chaos_spec is not None,
            "engine": self.simulator.engine,
        }

    def run(self) -> RunResult:
        """Run the replication to ``spec.sim_time`` and collect metrics."""
        if self._ran:
            raise RuntimeError(
                "a Simulation runs exactly once; build a new instance "
                "(with the next replication index) for another run"
            )
        with contextlib.ExitStack() as stack:
            if self.tracer is not None:
                stack.enter_context(tracing(self.tracer))
            if self.profiler is not None:
                stack.enter_context(profiling(self.profiler))
            tracer = _trace._ACTIVE
            if tracer is not None:
                tracer._now = 0.0
                tracer.emit(_trace.RUN_START, time=0.0, **self._run_header())
            self.simulator.run(until=self.spec.sim_time)
            if tracer is not None:
                tracer.emit(
                    _trace.RUN_END,
                    time=self.simulator.clock.now,
                    completions=self.simulator.completions,
                    degraded=self._guard.quarantined if self._guard else False,
                )
        self._ran = True
        metrics = {name: reward.result() for name, reward in self.rewards.items()}
        failures: List[ReplicationFailure] = []
        degraded = False
        if self._guard is not None:
            failures = list(self._guard.failures)
            for failure in failures:
                failure.replication = self.replication
            degraded = self._guard.quarantined
        return RunResult(
            spec=self.spec,
            replication=self.replication,
            root_seed=self.root_seed,
            metrics=metrics,
            completions=self.simulator.completions,
            failures=failures,
            degraded=degraded,
        )

    def stats(self) -> Dict[str, Any]:
        """Engine counters plus (when enabled) profiling and trace stats."""
        stats = dict(self.simulator.stats())
        if self.profiler is not None:
            stats["profile"] = self.profiler.stats()
        if self.tracer is not None:
            stats.update(self.tracer.stats())
        return stats


def simulate_once(
    spec: SystemSpec,
    replication: int = 0,
    root_seed: int = 0,
    extra_probes: bool = False,
    guard: Optional[GuardPolicy] = None,
    chaos: Optional[ChaosSpec] = None,
    attempt: int = 0,
    incremental: bool = True,
    tracer: Optional[SimTracer] = None,
    profile: bool = False,
) -> RunResult:
    """Build and run one replication of ``spec`` (the quickstart entry).

    Args:
        guard: optional decision-guard policy isolating scheduler
            faults (see :mod:`repro.resilience.guard`).
        chaos: optional deterministic fault-injection plan (testing).
        attempt: retry attempt index; only chaos targeting uses it.
        incremental: enablement engine selection, passed through to
            :class:`repro.san.SANSimulator` (False forces full rescan).
        tracer: optional :class:`~repro.observability.SimTracer`;
            activated around the run so every layer's hooks emit into it.
        profile: collect per-subsystem timings (``Simulation.stats()``).
    """
    return Simulation(
        spec,
        replication=replication,
        root_seed=root_seed,
        extra_probes=extra_probes,
        guard=guard,
        chaos=chaos,
        attempt=attempt,
        incremental=incremental,
        tracer=tracer,
        profile=profile,
    ).run()


def build_system(
    spec: SystemSpec,
    replication: int = 0,
    root_seed: int = 0,
) -> ComposedModel:
    """Materialize a spec into the composed SAN model, without running it.

    Useful for structural inspection (join-place tables, traces) and for
    users who want to attach custom reward variables before simulating.
    """
    spec.validate()
    streams = StreamFactory(root_seed=root_seed, replication=replication)
    algorithm = create_scheduler(spec.scheduler, **spec.scheduler_params)
    vm_configs = [(vm.vcpus, vm.workload.build(), vm.dispatch) for vm in spec.vms]
    return build_virtual_system(
        vm_configs,
        algorithm,
        spec.pcpus,
        streams=streams,
        vm_slots=spec.vm_slots,
        scheduler_slots=spec.scheduler_slots,
        failures=_failure_model(spec),
    )
