"""Scheduler plugin registry.

The paper's users "plug in any VCPU scheduling algorithm in the form of
C functions"; here they register a :class:`SchedulingAlgorithm` factory
under a name and refer to it from a :class:`~repro.core.config.SystemSpec`.
The built-in algorithms register themselves on import.

Factories (not instances) are registered because algorithms carry run
queues and skew counters: every replication must get a fresh instance.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import RegistryError
from ..schedulers import BUILTIN_ALGORITHMS
from ..schedulers.interface import FunctionScheduler, SchedulingAlgorithm

SchedulerFactory = Callable[..., SchedulingAlgorithm]

_REGISTRY: Dict[str, SchedulerFactory] = dict(BUILTIN_ALGORITHMS)


def register_scheduler(name: str, factory: SchedulerFactory, replace: bool = False) -> None:
    """Register a scheduler factory under ``name``.

    Args:
        name: registry key (e.g. ``"my-algo"``).
        factory: callable returning a fresh :class:`SchedulingAlgorithm`;
            it must accept the keyword arguments the user will put in
            ``SystemSpec.scheduler_params`` (at minimum ``timeslice``).
        replace: allow overwriting an existing registration.

    Raises:
        RegistryError: on a duplicate name (unless ``replace``) or a
            non-callable factory.
    """
    if not name:
        raise RegistryError("scheduler name must be non-empty")
    if not callable(factory):
        raise RegistryError(f"factory for {name!r} must be callable")
    if name in _REGISTRY and not replace:
        raise RegistryError(
            f"scheduler {name!r} is already registered; pass replace=True to override"
        )
    _REGISTRY[name] = factory


def register_schedule_function(name: str, fn, timeslice: int = 30) -> None:
    """Register a bare scheduling function (the paper's C-function flow).

    Example:
        >>> def my_schedule(vcpus, num_vcpu, pcpus, num_pcpu, timestamp):
        ...     return False
        >>> register_schedule_function("noop", my_schedule)  # doctest: +SKIP
    """
    register_scheduler(
        name,
        lambda timeslice=timeslice, name=name, fn=fn, **_ignored: FunctionScheduler(
            name, fn, timeslice=timeslice
        ),
    )


def create_scheduler(name: str, **params) -> SchedulingAlgorithm:
    """Instantiate a registered scheduler with the given parameters.

    Raises:
        RegistryError: unknown name, or the factory rejected ``params``.
    """
    if name not in _REGISTRY:
        raise RegistryError(
            f"unknown scheduler {name!r}; registered: {sorted(_REGISTRY)}"
        )
    try:
        algorithm = _REGISTRY[name](**params)
    except TypeError as exc:
        raise RegistryError(f"scheduler {name!r} rejected parameters {params}: {exc}") from exc
    if not isinstance(algorithm, SchedulingAlgorithm):
        raise RegistryError(
            f"factory for {name!r} returned {type(algorithm).__name__}, "
            "not a SchedulingAlgorithm"
        )
    return algorithm


def list_schedulers() -> List[str]:
    """Registered scheduler names, sorted."""
    return sorted(_REGISTRY)


def is_registered(name: str) -> bool:
    """True if ``name`` is a known scheduler."""
    return name in _REGISTRY
