"""Paired scheduler comparison with common random numbers.

Because every stochastic element draws from a stream keyed by
(root seed, element name, replication) — never by scheduler — two
schedulers simulated at the same (seed, replication) see the *same*
workload sample path.  That makes per-replication differences paired
observations, and a paired-t interval on the differences is far
tighter than comparing two independent CIs (classic variance
reduction).

:func:`compare_schedulers` runs both schedulers over the same
replications and reports, per metric, the mean difference with its
paired-t confidence interval and a verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError, StatisticsError
from ..metrics.stats import confidence_interval
from .config import SystemSpec
from .framework import simulate_once


@dataclass
class PairedDifference:
    """One metric's paired comparison: ``challenger - baseline``."""

    metric: str
    differences: List[float] = field(default_factory=list)
    confidence: float = 0.95

    @property
    def mean(self) -> float:
        if not self.differences:
            raise StatisticsError(
                f"paired difference for {self.metric!r} has no replications"
            )
        return sum(self.differences) / len(self.differences)

    @property
    def half_width(self) -> float:
        if not self.differences:
            raise StatisticsError(
                f"paired difference for {self.metric!r} has no replications"
            )
        if len(self.differences) < 2:
            return 0.0
        _, half = confidence_interval(self.differences, self.confidence)
        return half

    @property
    def significant(self) -> bool:
        """True when the CI on the difference excludes zero."""
        return abs(self.mean) > self.half_width

    def verdict(self) -> str:
        """'better', 'worse', or 'indistinguishable' for the challenger."""
        if not self.significant:
            return "indistinguishable"
        return "better" if self.mean > 0 else "worse"

    def __str__(self) -> str:
        return (
            f"{self.metric}: {self.mean:+.4f} ± {self.half_width:.4f} "
            f"({self.verdict()})"
        )


@dataclass
class PairedComparison:
    """Full result of :func:`compare_schedulers`."""

    baseline: str
    challenger: str
    replications: int
    differences: Dict[str, PairedDifference] = field(default_factory=dict)

    def __getitem__(self, metric: str) -> PairedDifference:
        if metric not in self.differences:
            raise KeyError(
                f"no paired difference for {metric!r}; "
                f"available: {sorted(self.differences)}"
            )
        return self.differences[metric]

    def summary(self) -> str:
        lines = [
            f"{self.challenger} vs {self.baseline} "
            f"({self.replications} paired replications):"
        ]
        for metric in sorted(self.differences):
            lines.append(f"  {self.differences[metric]}")
        return "\n".join(lines)


def compare_schedulers(
    spec: SystemSpec,
    baseline: str,
    challenger: str,
    metrics: Optional[Sequence[str]] = None,
    replications: int = 10,
    root_seed: int = 0,
    confidence: float = 0.95,
) -> PairedComparison:
    """Paired comparison of two schedulers on identical sample paths.

    Args:
        spec: the system configuration (its ``scheduler`` field is
            overridden for each contender).
        baseline / challenger: registered scheduler names.
        metrics: metric names to compare (default: the three paper
            metrics).
        replications: number of replication pairs (>= 2).
        root_seed: the shared seed family — both schedulers see the
            same workloads per replication.
        confidence: level of the paired-t intervals.

    Returns:
        A :class:`PairedComparison`; each metric's difference is
        ``challenger - baseline``, so a positive mean means the
        challenger scores higher.
    """
    if replications < 2:
        raise ConfigurationError(
            f"paired comparison needs >= 2 replications, got {replications}"
        )
    if metrics is None:
        metrics = ["vcpu_availability", "pcpu_utilization", "vcpu_utilization"]
    base_spec = spec.with_overrides(scheduler=baseline)
    base_spec.validate()
    chall_spec = spec.with_overrides(scheduler=challenger)
    chall_spec.validate()

    comparison = PairedComparison(
        baseline=baseline, challenger=challenger, replications=replications
    )
    for metric in metrics:
        comparison.differences[metric] = PairedDifference(
            metric=metric, confidence=confidence
        )
    for replication in range(replications):
        base = simulate_once(base_spec, replication=replication, root_seed=root_seed)
        chall = simulate_once(chall_spec, replication=replication, root_seed=root_seed)
        for metric in metrics:
            if metric not in base.metrics:
                raise ConfigurationError(
                    f"metric {metric!r} not produced; "
                    f"available: {sorted(base.metrics)}"
                )
            comparison.differences[metric].differences.append(
                chall.metrics[metric] - base.metrics[metric]
            )
    return comparison
