"""Typed result containers and text rendering.

Experiment outputs are kept as plain data (dataclasses of floats) so
benches, tests, and examples all consume the same shapes, and rendered
with a small ASCII table engine — the framework's stand-in for the
paper's figures.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..errors import StatisticsError
from ..metrics.stats import confidence_interval
from ..resilience.failures import ReplicationFailure


@dataclass
class MetricEstimate:
    """A metric's replicated estimate: mean with a confidence interval."""

    name: str
    values: List[float] = field(default_factory=list)
    confidence: float = 0.95

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            raise StatisticsError(f"metric {self.name!r} has no replications")
        return sum(self.values) / len(self.values)

    @property
    def half_width(self) -> float:
        """CI half-width; 0.0 for a single replication (no variance)."""
        if len(self.values) < 2:
            return 0.0
        _, half = confidence_interval(self.values, self.confidence)
        return half

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.half_width:.3f}"


@dataclass
class ExperimentResult:
    """All metric estimates from one experiment configuration.

    ``failures`` lists every fault the resilience layer absorbed while
    producing these estimates (crashed/retried replications, guarded
    scheduler faults, timeouts); ``degraded`` is True when any included
    replication finished on the quarantine fallback scheduler.  Both
    are empty/False for a clean run — partial results are reported
    honestly instead of silently.
    """

    label: str
    estimates: Dict[str, MetricEstimate] = field(default_factory=dict)
    replications: int = 0
    parameters: Dict[str, Any] = field(default_factory=dict)
    failures: List[ReplicationFailure] = field(default_factory=list)
    degraded: bool = False

    def mean(self, metric: str) -> float:
        return self._get(metric).mean

    def half_width(self, metric: str) -> float:
        return self._get(metric).half_width

    def _get(self, metric: str) -> MetricEstimate:
        if metric not in self.estimates:
            raise KeyError(
                f"experiment {self.label!r} has no metric {metric!r}; "
                f"available: {sorted(self.estimates)}"
            )
        return self.estimates[metric]

    def metrics(self) -> List[str]:
        return sorted(self.estimates)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render an ASCII table (monospace, padded columns).

    Example:
        >>> print(render_table(["a", "b"], [[1, 2.5]]))
        a  b
        -  ---
        1  2.5
    """
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def results_to_csv(
    results: Sequence[ExperimentResult],
    metrics: Sequence[str],
) -> str:
    """Flatten experiment results into CSV text (one row per experiment).

    Columns: label, every parameter key (union), then mean and
    half-width per requested metric.
    """
    param_keys: List[str] = []
    for result in results:
        for key in result.parameters:
            if key not in param_keys:
                param_keys.append(key)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    header = ["label"] + param_keys
    for metric in metrics:
        header += [f"{metric}_mean", f"{metric}_hw"]
    writer.writerow(header)
    for result in results:
        row: List[Any] = [result.label]
        row += [result.parameters.get(key, "") for key in param_keys]
        for metric in metrics:
            if metric in result.estimates:
                row += [f"{result.mean(metric):.6f}", f"{result.half_width(metric):.6f}"]
            else:
                row += ["", ""]
        writer.writerow(row)
    return buffer.getvalue()
