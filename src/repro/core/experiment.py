"""Experiment runner: replications to confidence, and parameter sweeps.

The paper runs each configuration "with 95% confidence level and < 0.1
confidence interval"; :func:`run_experiment` reproduces that protocol —
independent replications (distinct random streams per replication, same
root seed for reproducibility) continue until every watched metric's
CI half-width is below the target or the replication budget runs out.

Replications execute through the resilient executor
(:mod:`repro.resilience.executor`): pass a
:class:`~repro.resilience.ResilienceConfig` to fan replications out
over worker processes, bound each attempt with a wall-clock timeout,
retry crashed replications under deterministically reseeded streams,
stream every resolved replication to a JSONL checkpoint, and isolate
faults in user-plugged schedulers.  With no config the behavior (and
the sample path) is exactly the legacy serial loop.

:func:`run_sweep` layers parameter sweeps on top, which is how the
figure benches express "PCPUs from 1 to 4" or "sync ratio 1:5 to 1:2".
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..metrics.stats import ConvergenceMonitor
from ..resilience.executor import (
    ExecutionOutcome,
    ResilienceConfig,
    run_replications,
)
from .config import SystemSpec
from .results import ExperimentResult, MetricEstimate

# The paper's reporting protocol.
DEFAULT_CONFIDENCE = 0.95
DEFAULT_TARGET_HALF_WIDTH = 0.1

#: The three paper metrics every experiment watches by default.
DEFAULT_WATCH_METRICS = (
    "vcpu_availability",
    "pcpu_utilization",
    "vcpu_utilization",
)


def run_experiment(
    spec: SystemSpec,
    label: Optional[str] = None,
    watch_metrics: Optional[Sequence[str]] = None,
    min_replications: int = 5,
    max_replications: int = 30,
    confidence: float = DEFAULT_CONFIDENCE,
    target_half_width: float = DEFAULT_TARGET_HALF_WIDTH,
    root_seed: int = 0,
    extra_probes: bool = False,
    resilience: Optional[ResilienceConfig] = None,
    incremental: bool = True,
    engine: Optional[str] = None,
) -> ExperimentResult:
    """Estimate every metric of one configuration to target confidence.

    Args:
        spec: the system to simulate.
        label: experiment label for tables (default: derived from spec).
        watch_metrics: metric names whose CI must reach the target;
            ``None`` watches the three paper metrics (availability,
            PCPU utilization, VCPU utilization system-wide averages).
        min_replications: always run at least this many (>= 2).
        max_replications: hard budget.
        confidence: CI level (paper: 0.95).
        target_half_width: stop when every watched metric's half-width
            is below this (paper: 0.1).
        root_seed: root of the replication seed family.
        extra_probes: also collect blocked-fraction and throughput probes.
        resilience: executor configuration — parallel jobs, per-attempt
            timeout, retry/reseed, checkpoint/resume, decision guard,
            chaos injection.  ``None`` runs the legacy serial protocol
            (in-process, no retries) with identical results.
        incremental: legacy engine toggle; False forces the full-rescan
            reference engine (bit-identical results, mostly useful for
            differential testing).  When a ``resilience`` config is
            given, its own ``incremental`` field wins.
        engine: enablement engine for every replication —
            ``"incremental"``, ``"rescan"``, or ``"compiled"``
            (bit-identical results; compiled is the fast path).  Wins
            over ``incremental``; when a ``resilience`` config is given,
            its own ``engine`` field wins.

    Returns:
        An :class:`ExperimentResult` with one estimate per metric, the
        failure records the resilience layer absorbed, and a
        ``degraded`` flag when a quarantine fallback produced any
        included replication.

    Raises:
        ReplicationError: a replication kept failing and the config
            does not allow partial results.
        CheckpointError: resuming against a mismatched checkpoint.
    """
    validate_protocol(min_replications, max_replications)
    spec.validate()
    if watch_metrics is None:
        watch_metrics = list(DEFAULT_WATCH_METRICS)
    if resilience is None:
        # Legacy protocol: in-process, one attempt, fail on first error.
        resilience = ResilienceConfig(
            jobs=1, timeout=None, retries=0, incremental=incremental, engine=engine
        )

    execution = run_replications(
        spec,
        root_seed=root_seed,
        extra_probes=extra_probes,
        min_replications=min_replications,
        max_replications=max_replications,
        config=resilience,
        monitor=ConvergenceMonitor(
            watch_metrics,
            confidence=confidence,
            target_half_width=target_half_width,
            min_replications=min_replications,
        ),
    )
    return result_from_execution(spec, label, execution, confidence)


def validate_protocol(min_replications: int, max_replications: int) -> None:
    """Reject malformed replication budgets (shared with the sweep engine)."""
    if min_replications < 2:
        raise ConfigurationError(
            f"min_replications must be >= 2, got {min_replications}"
        )
    if max_replications < min_replications:
        raise ConfigurationError(
            f"max_replications ({max_replications}) below "
            f"min_replications ({min_replications})"
        )


def result_from_execution(
    spec: SystemSpec,
    label: Optional[str],
    execution: ExecutionOutcome,
    confidence: float,
) -> ExperimentResult:
    """Assemble the result table from an executor outcome.

    The single assembly path for both the serial runner and the
    interleaved sweep engine — identical samples in, identical
    :class:`ExperimentResult` out.
    """
    samples: Dict[str, List[float]] = {}
    for metrics in execution.samples:
        for name, value in metrics.items():
            samples.setdefault(name, []).append(value)
    estimates = {
        name: MetricEstimate(name=name, values=values, confidence=confidence)
        for name, values in samples.items()
    }
    return ExperimentResult(
        label=label if label is not None else _default_label(spec),
        estimates=estimates,
        replications=execution.replications,
        parameters={
            "scheduler": spec.scheduler,
            "pcpus": spec.pcpus,
            "topology": "+".join(str(n) for n in spec.topology()),
        },
        failures=execution.failures,
        degraded=execution.degraded,
    )


def _converged(
    samples: Dict[str, List[float]],
    watch_metrics: Sequence[str],
    confidence: float,
    target_half_width: float,
) -> bool:
    for name in watch_metrics:
        values = samples.get(name)
        if values is None:
            raise ConfigurationError(
                f"watched metric {name!r} is not produced by this system; "
                f"available: {sorted(samples)}"
            )
        estimate = MetricEstimate(name=name, values=values, confidence=confidence)
        if estimate.half_width >= target_half_width:
            return False
    return True


def _default_label(spec: SystemSpec) -> str:
    topology = "+".join(str(n) for n in spec.topology())
    return f"{spec.scheduler}/vms={topology}/pcpus={spec.pcpus}"


# SystemSpec's *field* names — the only keys ``run_sweep`` may apply
# with ``with_overrides``.  ``hasattr`` is wrong here: it also matches
# methods (``topology``, ``validate``, ...), and assigning a sweep value
# over a method silently shadows it on the instance.
_SPEC_FIELD_NAMES = frozenset(f.name for f in dataclasses.fields(SystemSpec))

SWEEP_ENGINES = ("serial", "interleaved")


def resolve_sweep_points(
    base_spec: SystemSpec,
    sweep: Iterable[Dict[str, Any]],
    mutate: Optional[Callable[[SystemSpec, Dict[str, Any]], SystemSpec]] = None,
) -> List[Tuple[Dict[str, Any], SystemSpec]]:
    """Materialize a sweep into ``(point overrides, concrete spec)`` pairs.

    Field keys are applied with ``with_overrides``; any other key needs
    the ``mutate`` hook.  Shared by the serial loop and the interleaved
    engine so both see byte-identical specs per point.
    """
    points: List[Tuple[Dict[str, Any], SystemSpec]] = []
    for point in sweep:
        field_overrides = {
            key: value for key, value in point.items() if key in _SPEC_FIELD_NAMES
        }
        other = {key: value for key, value in point.items() if key not in field_overrides}
        spec = base_spec.with_overrides(**field_overrides)
        if other:
            if mutate is None:
                raise ConfigurationError(
                    f"sweep point has non-field keys {sorted(other)} but no "
                    "mutate hook was given"
                )
            spec = mutate(spec, other)
        points.append((dict(point), spec))
    return points


def run_sweep(
    base_spec: SystemSpec,
    sweep: Iterable[Dict[str, Any]],
    mutate: Optional[Callable[[SystemSpec, Dict[str, Any]], SystemSpec]] = None,
    sweep_engine: str = "serial",
    sweep_jobs: Optional[int] = None,
    **experiment_kwargs,
) -> List[ExperimentResult]:
    """Run one experiment per parameter point.

    Args:
        base_spec: the spec every point starts from.
        sweep: an iterable of override dicts.  Keys that are
            :class:`SystemSpec` dataclass fields are applied with
            ``with_overrides``; anything else (including spec *method*
            names such as ``topology``) must be handled by ``mutate``.
        mutate: optional ``(spec, point) -> spec`` hook for overrides
            beyond plain fields (e.g. changing every VM's sync ratio).
        sweep_engine: ``"serial"`` — one :func:`run_experiment` per
            point, in order; ``"interleaved"`` — the shared-pool
            adaptive engine (:mod:`repro.core.sweeps`), which produces
            metric values exactly ``==`` the serial path for any fixed
            replication set.
        sweep_jobs: worker-process count for the interleaved engine's
            shared pool (default: the resilience config's ``jobs``).
        **experiment_kwargs: forwarded to :func:`run_experiment`.  A
            ``resilience`` config with a checkpoint is automatically
            re-scoped per sweep point, so one checkpoint file resumes
            the whole sweep.

    Returns:
        One :class:`ExperimentResult` per sweep point, in order; each
        result's ``parameters`` records the point's overrides.
    """
    if sweep_engine not in SWEEP_ENGINES:
        raise ConfigurationError(
            f"sweep_engine must be one of {SWEEP_ENGINES}, got {sweep_engine!r}"
        )
    points = resolve_sweep_points(base_spec, sweep, mutate)
    if sweep_engine == "interleaved":
        from .sweeps import run_interleaved_sweep  # local: sweeps imports us

        return run_interleaved_sweep(
            points, sweep_jobs=sweep_jobs, **experiment_kwargs
        ).results
    base_resilience = experiment_kwargs.pop("resilience", None)
    results = []
    for index, (point, spec) in enumerate(points):
        resilience = base_resilience
        if resilience is not None and resilience.checkpoint:
            # Later points must append to the file the first point opened
            # (resume=False truncates), whatever the caller's resume flag.
            resilience = dataclasses.replace(
                resilience,
                checkpoint_scope=f"point{index}",
                resume=resilience.resume or index > 0,
            )
        result = run_experiment(spec, resilience=resilience, **experiment_kwargs)
        result.parameters.update(point)
        results.append(result)
    return results
