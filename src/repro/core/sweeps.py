"""The sweep-scale execution engine: one pool, all points, no waste.

The paper's whole evaluation is sweep-shaped — every figure is a
parameter sweep whose points replicate until their 95% CI half-width
drops below 0.1 — yet the serial :func:`~repro.core.experiment.run_sweep`
loop runs each point as its own island: its own process-pool spin-up,
its own blind parallel over-run past the convergence cut.  This module
replaces the loop with a campaign scheduler built from three pieces:

* **Shared-pool interleaved scheduling** — one long-lived worker pool
  serves the entire sweep.  Replication tasks from *all* points share a
  single dispatch path with spec-affinity placement: replications of
  the same spec prefer workers that already hold its compiled model in
  the per-process :data:`~repro.core.framework._MODEL_CACHE`, so the
  build/lower cost is paid once per (spec, worker) instead of once per
  task.
* **Adaptive cross-point budget allocation** — after every completed
  replication the point's CI half-widths are recomputed incrementally
  (one-pass :class:`~repro.metrics.stats.ConvergenceMonitor`), and the
  next grant goes to the point *furthest* from the half-width target.
  Converged points stop at their ``min_replications``-respecting floor
  instead of burning budget; beyond the floor each point keeps at most
  one speculative replication in flight, so on a clean run the engine
  executes exactly the convergence cut — no parallel over-run at all.
* **Reproducible stopping** — each grant is appended to an allocation
  log (and emitted as a ``sweep.dispatch`` trace record), so the
  scheduling decisions behind a result table can be replayed and
  audited.

Determinism: a replication's value depends only on (spec, replication
index, root seed, attempt) — never on which worker ran it or when — and
convergence is judged over the same contiguous resolved prefixes as the
serial path, so for any fixed replication set the interleaved engine's
metric tables are exactly ``==`` the serial ones (asserted by
``tests/core/test_sweeps.py``).  The persistent result cache
(:mod:`repro.resilience.result_cache`) and the PR-1 checkpoint both
plug in underneath: a warm rerun of a finished sweep executes zero
replications.
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing
import queue as _queue
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..metrics.stats import ConvergenceMonitor
from ..observability import trace as _trace
from ..resilience.checkpoint import CheckpointStore
from ..resilience.executor import (
    ReplicationOutcome,
    ResilienceConfig,
    _execute_task,
    _Run,
    _Task,
    bind_cache,
    scope_fingerprint,
    spec_payload,
)
from ..resilience.failures import FailureKind, ReplicationFailure
from .config import SystemSpec
from .results import ExperimentResult

# Dispatch reasons recorded in the allocation log.
REASON_FLOOR = "floor"
REASON_ADAPTIVE = "adaptive"
REASON_RETRY = "retry"

#: Per-worker warm-spec LRU size — mirrors the model cache's _REUSE_CAP.
_WARM_CAP = 8


@dataclass
class SweepStats:
    """What the engine did, beyond the result tables."""

    points: int
    executed: int  # replication attempts actually simulated
    cache_hits: int  # replications satisfied from the result cache
    dispatches: int  # grants issued (== allocation log length)
    executed_per_point: List[int] = field(default_factory=list)
    allocation_log: List[Dict[str, Any]] = field(default_factory=list)


@dataclass
class SweepOutcome:
    """Results (point order) plus the engine's accounting."""

    results: List[ExperimentResult]
    stats: SweepStats


# -- the shared worker pool ------------------------------------------------


def _worker_main(task_queue: Any, result_queue: Any) -> None:
    """Worker loop: execute tasks until the ``None`` sentinel arrives.

    ``_execute_task`` never raises, so every dequeued task produces
    exactly one result tuple; the per-process model cache inside
    ``simulate_once`` is what spec-affinity placement banks on.
    """
    while True:
        item = task_queue.get()
        if item is None:
            return
        dispatch_id, task = item
        result_queue.put((dispatch_id, _execute_task(task)))


class _WorkerSlot:
    def __init__(self, process: Any, tasks: Any) -> None:
        self.process = process
        self.tasks = tasks
        self.busy: Optional[int] = None  # dispatch id in flight
        self.warm: "OrderedDict[str, None]" = OrderedDict()


class _AffinityPool:
    """A process pool with per-worker queues for affinity placement.

    ``ProcessPoolExecutor`` feeds one shared queue, so a task cannot be
    routed to the worker whose model cache is already warm; this pool
    gives every worker its own task queue and a parent-side mirror of
    which specs it has recently executed.  Workers are daemonic: a
    stalled worker is *abandoned* (replaced, its late result dropped by
    dispatch-id dedup) rather than killed mid-write, which could corrupt
    the shared result pipe.
    """

    def __init__(self, jobs: int) -> None:
        self._ctx = multiprocessing.get_context()
        self._results = self._ctx.Queue()
        self._slots: Dict[int, _WorkerSlot] = {}
        self._abandoned: List[_WorkerSlot] = []
        self._next_worker = 0
        # Dispatch ids are unique for the *pool's* lifetime, not per
        # scheduler run: a long-lived shared pool (see SweepPool) may
        # serve many sequential schedulers, and a late result from an
        # earlier run must never collide with a fresh dispatch id.
        self._dispatch_ids = itertools.count()
        for _ in range(jobs):
            self._spawn()

    def next_dispatch_id(self) -> int:
        return next(self._dispatch_ids)

    def _spawn(self) -> int:
        worker = self._next_worker
        self._next_worker += 1
        tasks = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main, args=(tasks, self._results), daemon=True
        )
        process.start()
        self._slots[worker] = _WorkerSlot(process, tasks)
        return worker

    def idle_workers(self) -> List[int]:
        return [w for w, slot in self._slots.items() if slot.busy is None]

    def submit(self, dispatch_id: int, task: _Task, affinity_key: str) -> int:
        """Hand the task to an idle worker, warm one preferred."""
        idle = self.idle_workers()
        worker = next(
            (w for w in idle if affinity_key in self._slots[w].warm), idle[0]
        )
        slot = self._slots[worker]
        slot.busy = dispatch_id
        slot.warm[affinity_key] = None
        slot.warm.move_to_end(affinity_key)
        while len(slot.warm) > _WARM_CAP:
            slot.warm.popitem(last=False)
        slot.tasks.put((dispatch_id, task))
        return worker

    def release(self, worker: int) -> None:
        slot = self._slots.get(worker)
        if slot is not None:
            slot.busy = None

    def release_by_dispatch(self, dispatch_id: int) -> None:
        """Free whichever slot holds this dispatch (stale-result path).

        A scheduler that stopped early (cooperative job cancellation)
        leaves dispatches in flight; when their results surface under a
        *later* scheduler on the same shared pool, that scheduler knows
        only the dispatch id — this lets it still return the worker to
        service instead of leaking the slot as busy forever.
        """
        for slot in self._slots.values():
            if slot.busy == dispatch_id:
                slot.busy = None
                return

    def busy_count(self) -> int:
        return sum(1 for slot in self._slots.values() if slot.busy is not None)

    def live_processes(self) -> List[Any]:
        """Every worker process still alive, including abandoned ones."""
        return [
            slot.process
            for slot in list(self._slots.values()) + self._abandoned
            if slot.process.is_alive()
        ]

    def poll(self, timeout: Optional[float]) -> Optional[Tuple[int, Dict[str, Any]]]:
        try:
            return self._results.get(timeout=timeout)
        except _queue.Empty:
            return None

    def abandon(self, worker: int) -> None:
        """Stop using a stalled worker; spawn its replacement."""
        slot = self._slots.pop(worker, None)
        if slot is not None:
            self._abandoned.append(slot)
        self._spawn()

    def dead_workers(self) -> List[int]:
        """Workers that died while holding a dispatch (result never comes)."""
        return [
            w
            for w, slot in self._slots.items()
            if slot.busy is not None and not slot.process.is_alive()
        ]

    def replace_dead(self, worker: int) -> None:
        slot = self._slots.pop(worker, None)
        if slot is not None:
            self._abandoned.append(slot)
        self._spawn()

    def close(self) -> None:
        """Shut every worker down and release every queue fd.

        Sequence: sentinel -> join -> terminate -> join -> close queues.
        Abandoned workers get the same treatment as live slots — they
        never received a sentinel when they were replaced, and a
        terminated process that is never joined stays a zombie (and its
        queue feeder keeps two pipe fds open) for the life of the
        parent, which leaks across repeated sweeps in one process.
        """
        slots = list(self._slots.values()) + self._abandoned
        for slot in slots:
            try:
                slot.tasks.put(None)
            except Exception:  # noqa: BLE001 — shutdown is best-effort
                pass
        deadline = time.monotonic() + 1.0
        for slot in slots:
            slot.process.join(timeout=max(0.0, deadline - time.monotonic()))
        for slot in slots:
            if slot.process.is_alive():
                # Safe now: nothing reads the result queue after close().
                slot.process.terminate()
        deadline = time.monotonic() + 1.0
        for slot in slots:
            if slot.process.is_alive():
                slot.process.join(timeout=max(0.0, deadline - time.monotonic()))
        for slot in slots:
            try:
                slot.tasks.close()
                slot.tasks.cancel_join_thread()
            except Exception:  # noqa: BLE001
                pass
            try:
                slot.process.close()
            except Exception:  # noqa: BLE001 — still alive after SIGTERM
                pass
        try:
            self._results.close()
            self._results.cancel_join_thread()
        except Exception:  # noqa: BLE001
            pass
        self._slots.clear()
        self._abandoned.clear()


class _InlineExecutor:
    """Same interface as :class:`_AffinityPool`, zero processes.

    ``jobs=1`` without a timeout runs replications in-process — the
    scheduling and allocation logic is identical, only the transport
    differs, so the differential tests exercise the real scheduler
    without fork overhead.
    """

    def __init__(self) -> None:
        self._buffer: Deque[Tuple[int, Dict[str, Any]]] = deque()
        self._busy = False
        self._dispatch_ids = itertools.count()

    def next_dispatch_id(self) -> int:
        return next(self._dispatch_ids)

    def release_by_dispatch(self, dispatch_id: int) -> None:
        self._busy = False

    def busy_count(self) -> int:
        return 1 if self._busy else 0

    def live_processes(self) -> List[Any]:
        return []

    def idle_workers(self) -> List[int]:
        return [] if self._busy else [0]

    def submit(self, dispatch_id: int, task: _Task, affinity_key: str) -> int:
        self._busy = True
        self._buffer.append((dispatch_id, _execute_task(task)))
        return 0

    def release(self, worker: int) -> None:
        self._busy = False

    def poll(self, timeout: Optional[float]) -> Optional[Tuple[int, Dict[str, Any]]]:
        return self._buffer.popleft() if self._buffer else None

    def abandon(self, worker: int) -> None:  # pragma: no cover — no timeouts inline
        self._busy = False

    def dead_workers(self) -> List[int]:
        return []

    def replace_dead(self, worker: int) -> None:  # pragma: no cover
        pass

    def close(self) -> None:
        pass


class SweepPool:
    """A long-lived shared worker pool, reusable across sweep calls.

    ``run_interleaved_sweep`` normally builds and tears its pool down
    per call; a service that answers many experiment jobs wants to pay
    worker spin-up (and per-worker compiled-model warm-up) once.  Create
    one ``SweepPool`` and pass it as ``pool=`` to any number of
    sequential ``run_interleaved_sweep`` calls; close it (or use it as a
    context manager) when the service drains.

    Args:
        jobs: worker processes.  ``jobs=1`` without a timeout runs
            replications in the calling thread (no child processes).
        timeout: per-replication wall-clock budget the pool must be able
            to enforce; any non-``None`` value forces process workers.
    """

    def __init__(self, jobs: int = 1, timeout: Optional[float] = None) -> None:
        if jobs < 1:
            raise ConfigurationError(f"SweepPool jobs must be >= 1, got {jobs}")
        if timeout is not None and timeout <= 0:
            raise ConfigurationError(
                f"SweepPool timeout must be > 0, got {timeout}"
            )
        self.jobs = jobs
        self.timeout = timeout
        self.closed = False
        if jobs == 1 and timeout is None:
            self._impl: Any = _InlineExecutor()
        else:
            self._impl = _AffinityPool(jobs)

    def drain_stale(self) -> int:
        """Consume buffered results from abandoned runs; free their slots.

        Returns the number of stale results dropped.  Called by
        ``run_interleaved_sweep`` before every borrowed-pool run so a
        cancelled predecessor cannot bleed results into it.
        """
        dropped = 0
        while True:
            item = self._impl.poll(0)
            if item is None:
                return dropped
            self._impl.release_by_dispatch(item[0])
            dropped += 1

    def live_children(self) -> List[Any]:
        """Worker processes still alive (empty for the in-process pool)."""
        return self._impl.live_processes()

    def close(self) -> None:
        """Shut every worker down; idempotent."""
        if not self.closed:
            self._impl.close()
            self.closed = True

    def __enter__(self) -> "SweepPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


#: Progress events (plain dicts) handed to a sweep ``progress`` callback:
#: ``{"event": "dispatch" | "resolved", "point": i, "replication": r, ...}``.
#: Raising from the callback aborts the sweep — the cooperative
#: cancellation hook the service layer uses.
ProgressCallback = Callable[[Dict[str, Any]], None]


# -- per-point scheduling state -------------------------------------------


class _PointState:
    """One sweep point: its executor run plus the scheduler's view of it."""

    def __init__(
        self,
        index: int,
        point: Dict[str, Any],
        spec: SystemSpec,
        run: _Run,
        min_replications: int,
        max_replications: int,
    ) -> None:
        self.index = index
        self.point = point
        self.spec = spec
        self.run = run
        self.min_replications = min_replications
        self.max_replications = max_replications
        self.next_index = 0
        self.inflight = 0
        self.ready: Deque[_Task] = deque()  # retry tasks owed to this point
        self.done = False
        self.affinity_key = f"{spec_payload(spec)!r}|{run.config.engine!r}"

    def peek_fresh(self) -> Optional[int]:
        """Next never-dispatched replication index, skipping resolved ones."""
        while (
            self.next_index < self.max_replications
            and self.next_index in self.run.resolved
        ):
            self.next_index += 1
        if self.next_index >= self.max_replications:
            return None
        return self.next_index

    def take_fresh(self) -> _Task:
        index = self.peek_fresh()
        assert index is not None
        self.next_index += 1
        return self.run.task(index)

    def batch_width(self) -> int:
        """Lanes per floor grant (1 = batching off for this point)."""
        if not self.run.batch_eligible():
            return 1
        from .framework import BATCH_WIDTH_DEFAULT  # local: lazy, no cycle

        return self.run.config.batch_width or BATCH_WIDTH_DEFAULT

    def take_fresh_floor(self) -> _Task:
        """One floor grant: a batch of entitled replications when eligible.

        Floor replications (< ``min_replications``) execute no matter
        what the convergence monitor later says, so grouping them into
        one shared-calendar dispatch never over-runs the budget the
        serial path would spend.  Speculative (adaptive) grants stay
        single so ``executed == cut`` is preserved.
        """
        width = self.batch_width()
        group: List[int] = []
        while len(group) < width:
            index = self.peek_fresh()
            if index is None or index >= self.min_replications:
                break
            group.append(index)
            self.next_index += 1
        if not group:  # caller guaranteed one floor index exists
            return self.take_fresh()
        if len(group) == 1:
            return self.run.task(group[0])
        return self.run.batch_task(group)

    def distance(self) -> float:
        return self.run.monitor.distance() if self.run.monitor else float("inf")

    def refresh_done(self) -> None:
        """Re-derive the finished flag from the run's current state."""
        if self.done:
            return
        if self.run.converged_cut() is not None:
            self.done = True
        elif not self.ready and self.inflight == 0 and self.peek_fresh() is None:
            self.done = True  # budget exhausted


# -- the engine ------------------------------------------------------------


class _SweepScheduler:
    def __init__(
        self,
        states: List[_PointState],
        pool: Any,
        timeout: Optional[float],
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        self.states = states
        self.pool = pool
        self.timeout = timeout
        self.progress = progress
        self.outstanding: Dict[int, Tuple[_PointState, _Task, int, Optional[float]]] = {}
        self.allocation_log: List[Dict[str, Any]] = []

    def _notify(self, event: str, state: _PointState, task: _Task, **extra: Any) -> None:
        if self.progress is not None:
            self.progress(
                {
                    "event": event,
                    "point": state.index,
                    "replication": task.replication,
                    "attempt": task.attempt,
                    "batch": len(task.batch) if task.batch else 1,
                    **extra,
                }
            )

    # -- admission ---------------------------------------------------------

    def _next_choice(self) -> Optional[Tuple[_PointState, _Task, str]]:
        # 1. Retries are owed work: point order, oldest first.
        for state in self.states:
            if state.ready:
                return state, state.ready.popleft(), REASON_RETRY
        # 2. Floors: every point is entitled to min_replications
        #    concurrently (the serial path executes those regardless),
        #    interleaved lowest-replication-first across points.
        floors = [
            state
            for state in self.states
            if not state.done
            and state.peek_fresh() is not None
            and state.peek_fresh() < state.min_replications
        ]
        if floors:
            state = min(floors, key=lambda s: (s.peek_fresh(), s.index))
            return state, state.take_fresh_floor(), REASON_FLOOR
        # 3. Adaptive: one speculative grant at a time per unconverged
        #    point, to whichever is furthest from the half-width target.
        #    The one-in-flight cap is what makes executed == cut.
        candidates = [
            state
            for state in self.states
            if not state.done
            and state.inflight == 0
            and state.peek_fresh() is not None
        ]
        if candidates:
            state = max(candidates, key=lambda s: (s.distance(), -s.index))
            return state, state.take_fresh(), REASON_ADAPTIVE
        return None

    def _dispatch(self, state: _PointState, task: _Task, reason: str) -> None:
        # The log's "seq" stays 0-based per sweep; the pool-scoped
        # dispatch id (which may have served earlier runs) routes results.
        dispatch_id = self.pool.next_dispatch_id()
        worker = self.pool.submit(dispatch_id, task, state.affinity_key)
        deadline = (
            time.monotonic() + self.timeout if self.timeout is not None else None
        )
        self.outstanding[dispatch_id] = (state, task, worker, deadline)
        state.inflight += 1
        distance = state.distance()
        entry = {
            "seq": len(self.allocation_log),
            "point": state.index,
            "replication": task.replication,
            "attempt": task.attempt,
            "worker": worker,
            "reason": reason,
            "batch": len(task.batch) if task.batch else 1,
            "distance": None if distance == float("inf") else distance,
        }
        self.allocation_log.append(entry)
        tracer = _trace._ACTIVE
        if tracer is not None:
            # Not **entry: the log's "seq" would shadow the tracer's own
            # sequence number in the flat JSONL form.
            tracer.emit(
                _trace.SWEEP_DISPATCH,
                **{k: v for k, v in entry.items() if k != "seq"},
            )
        self._notify("dispatch", state, task, reason=reason, worker=worker)

    def _fill(self) -> None:
        while self.pool.idle_workers():
            choice = self._next_choice()
            if choice is None:
                return
            self._dispatch(*choice)

    # -- result handling ----------------------------------------------------

    def _handle_result(self, dispatch_id: int, payload: Dict[str, Any]) -> None:
        dispatch = self.outstanding.pop(dispatch_id, None)
        if dispatch is None:
            # Late result from an abandoned worker or an earlier
            # scheduler on a shared pool: drop it, but free its slot.
            self.pool.release_by_dispatch(dispatch_id)
            return
        state, task, worker, _deadline = dispatch
        self.pool.release(worker)
        state.inflight -= 1
        if payload["ok"]:
            if task.batch:
                state.run.resolve_batch(task, payload)
            else:
                state.run.resolve_success(task, payload)
        else:
            self._fail_dispatch(state, task, payload)
        state.refresh_done()
        self._notify("resolved", state, task, ok=bool(payload["ok"]), done=state.done)

    def _fail_dispatch(
        self,
        state: _PointState,
        task: _Task,
        payload: Dict[str, Any],
        kind: Optional[str] = None,
    ) -> None:
        """A dispatch failed: batch groups degrade to single attempts.

        One bad lane (or one group timeout) must not sink its whole
        group's accounting, so each member re-queues as an ordinary
        attempt-0 task and takes the standard retry/timeout machinery
        from there; single tasks go straight to ``fail_attempt``.
        """
        if task.batch:
            for replication in task.batch:
                state.ready.append(
                    dataclasses.replace(task, replication=replication, batch=None)
                )
            return
        self._fail(state, task, payload, kind)

    def _fail(
        self,
        state: _PointState,
        task: _Task,
        payload: Dict[str, Any],
        kind: Optional[str] = None,
    ) -> None:
        retry = state.run.fail_attempt(
            task,
            ReplicationFailure(
                kind=kind or payload.get("kind", FailureKind.EXCEPTION),
                message=payload["error"],
                scheduler=getattr(state.spec, "scheduler", ""),
            ),
        )
        if retry is not None:
            state.ready.append(retry)

    def _expire_timeouts(self) -> None:
        now = time.monotonic()
        expired = [
            (dispatch_id, entry)
            for dispatch_id, entry in self.outstanding.items()
            if entry[3] is not None and now >= entry[3]
        ]
        for dispatch_id, (state, task, worker, _deadline) in expired:
            del self.outstanding[dispatch_id]
            self.pool.abandon(worker)
            state.inflight -= 1
            self._fail_dispatch(
                state,
                task,
                {
                    "error": (
                        f"replication attempt exceeded the "
                        f"{self.timeout:g}s wall-clock timeout"
                    )
                },
                kind=FailureKind.TIMEOUT,
            )
            state.refresh_done()
            self._notify("resolved", state, task, ok=False, done=state.done)

    def _reap_dead(self) -> None:
        for worker in self.pool.dead_workers():
            lost = [
                (dispatch_id, entry)
                for dispatch_id, entry in self.outstanding.items()
                if entry[2] == worker
            ]
            self.pool.replace_dead(worker)
            for dispatch_id, (state, task, _worker, _deadline) in lost:
                del self.outstanding[dispatch_id]
                state.inflight -= 1
                self._fail_dispatch(
                    state,
                    task,
                    {"error": "worker process died"},
                    kind=FailureKind.WORKER_CRASH,
                )
                state.refresh_done()
                self._notify("resolved", state, task, ok=False, done=state.done)

    # -- main loop ----------------------------------------------------------

    def drive(self) -> None:
        for state in self.states:
            state.refresh_done()  # warm cache/checkpoint may finish points
        while not all(state.done for state in self.states):
            self._fill()
            if not self.outstanding:
                if self.pool.busy_count():
                    # Every slot is held by an earlier run's abandoned
                    # work (shared pool): wait for those late results to
                    # surface and free workers, then try to fill again.
                    stale = self.pool.poll(0.2)
                    if stale is not None:
                        self._handle_result(*stale)
                    self._reap_dead()
                    continue
                # Nothing in flight and nothing dispatchable: every
                # remaining point must be finishable right now (a point
                # is only non-done while it has retries, fresh budget,
                # or work in flight).
                for state in self.states:
                    state.refresh_done()
                if not all(state.done for state in self.states):
                    raise RuntimeError(
                        "sweep scheduler stalled with undispatchable points"
                    )
                break
            deadlines = [
                entry[3] for entry in self.outstanding.values() if entry[3] is not None
            ]
            if deadlines:
                budget = max(0.0, min(deadlines) - time.monotonic())
            else:
                budget = 0.2  # bounded, to notice dead workers promptly
            result = self.pool.poll(budget)
            if result is not None:
                self._handle_result(*result)
                # Drain whatever else is already buffered, without blocking.
                while True:
                    more = self.pool.poll(0)
                    if more is None:
                        break
                    self._handle_result(*more)
            self._expire_timeouts()
            self._reap_dead()


def run_interleaved_sweep(
    points: Sequence[Tuple[Dict[str, Any], SystemSpec]],
    label: Optional[str] = None,
    watch_metrics: Optional[Sequence[str]] = None,
    min_replications: int = 5,
    max_replications: int = 30,
    confidence: float = None,  # type: ignore[assignment]
    target_half_width: float = None,  # type: ignore[assignment]
    root_seed: int = 0,
    extra_probes: bool = False,
    resilience: Optional[ResilienceConfig] = None,
    incremental: bool = True,
    engine: Optional[str] = None,
    sweep_jobs: Optional[int] = None,
    pool: Optional[SweepPool] = None,
    progress: Optional[ProgressCallback] = None,
) -> SweepOutcome:
    """Run a resolved sweep through the shared-pool adaptive engine.

    Same parameters and semantics as
    :func:`~repro.core.experiment.run_experiment`, applied across every
    point at once; ``points`` comes from
    :func:`~repro.core.experiment.resolve_sweep_points`.  Returns the
    per-point results (point order — order is preserved no matter how
    execution interleaved) plus the engine's accounting.

    ``pool`` borrows a long-lived :class:`SweepPool` instead of building
    one per call (the pool is *not* closed afterwards, and ``sweep_jobs``
    is ignored); ``progress`` receives one plain-dict event per dispatch
    and per resolution — raising from it aborts the sweep, which is how
    the service layer implements cooperative job cancellation.
    """
    from .experiment import (  # local: experiment imports us lazily too
        DEFAULT_CONFIDENCE,
        DEFAULT_TARGET_HALF_WIDTH,
        DEFAULT_WATCH_METRICS,
        result_from_execution,
        validate_protocol,
    )

    if confidence is None:
        confidence = DEFAULT_CONFIDENCE
    if target_half_width is None:
        target_half_width = DEFAULT_TARGET_HALF_WIDTH
    validate_protocol(min_replications, max_replications)
    if watch_metrics is None:
        watch_metrics = list(DEFAULT_WATCH_METRICS)
    if resilience is None:
        resilience = ResilienceConfig(
            jobs=1, timeout=None, retries=0, incremental=incremental, engine=engine
        )
    resilience.validate()
    jobs = sweep_jobs if sweep_jobs is not None else resilience.jobs
    if jobs < 1:
        raise ConfigurationError(f"sweep_jobs must be >= 1, got {jobs}")
    if pool is not None:
        if pool.closed:
            raise ConfigurationError("the borrowed SweepPool is already closed")
        if resilience.timeout is not None and pool.timeout is None:
            raise ConfigurationError(
                "a per-replication timeout needs process workers: build the "
                "shared pool with SweepPool(jobs=..., timeout=...)"
            )

    checkpoint: Optional[CheckpointStore] = None
    if resilience.checkpoint:
        checkpoint = CheckpointStore(resilience.checkpoint, resume=resilience.resume)

    states: List[_PointState] = []
    try:
        for index, (point, spec) in enumerate(points):
            spec.validate()
            point_config = dataclasses.replace(
                resilience, checkpoint_scope=f"point{index}"
            )
            run = _Run(
                spec=spec,
                root_seed=root_seed,
                extra_probes=extra_probes,
                min_replications=min_replications,
                max_replications=max_replications,
                converged=None,
                config=point_config,
                checkpoint=checkpoint,
                monitor=ConvergenceMonitor(
                    watch_metrics,
                    confidence=confidence,
                    target_half_width=target_half_width,
                    min_replications=min_replications,
                ),
                cache=bind_cache(spec, point_config, root_seed, extra_probes),
            )
            if checkpoint is not None:
                checkpoint.begin_scope(
                    point_config.checkpoint_scope,
                    scope_fingerprint(spec, root_seed, extra_probes, point_config),
                )
                for rep, record in checkpoint.replications(
                    point_config.checkpoint_scope
                ).items():
                    if rep < max_replications:
                        run.resolved[rep] = ReplicationOutcome.from_record(record)
            run.preload_cache()
            states.append(
                _PointState(
                    index=index,
                    point=point,
                    spec=spec,
                    run=run,
                    min_replications=min_replications,
                    max_replications=max_replications,
                )
            )

        if pool is not None:
            pool.drain_stale()
            impl: Any = pool._impl
            owned = False
        elif jobs == 1 and resilience.timeout is None:
            impl = _InlineExecutor()
            owned = True
        else:
            impl = _AffinityPool(jobs)
            owned = True
        scheduler = _SweepScheduler(states, impl, resilience.timeout, progress)
        try:
            scheduler.drive()
        finally:
            if owned:
                impl.close()
    finally:
        if checkpoint is not None:
            checkpoint.close()

    results: List[ExperimentResult] = []
    executed_per_point: List[int] = []
    for state in states:
        execution = state.run.assemble()
        result = result_from_execution(state.spec, label, execution, confidence)
        result.parameters.update(state.point)
        results.append(result)
        executed_per_point.append(state.run.executed)
    stats = SweepStats(
        points=len(states),
        executed=sum(executed_per_point),
        cache_hits=sum(state.run.cache_hits for state in states),
        dispatches=len(scheduler.allocation_log),
        executed_per_point=executed_per_point,
        allocation_log=scheduler.allocation_log,
    )
    return SweepOutcome(results=results, stats=stats)
