"""The public API of the simulation framework.

The typical workflow mirrors the paper's (§III.A): describe VMs and
workloads, pick or plug a scheduling algorithm, configure PCPUs, and
simulate to confidence.

    from repro.core import SystemSpec, VMSpec, run_experiment

    spec = SystemSpec(
        vms=[VMSpec(vcpus=2), VMSpec(vcpus=1), VMSpec(vcpus=1)],
        pcpus=2,
        scheduler="rcs",
        sim_time=2000,
        warmup=200,
    )
    result = run_experiment(spec)
    print(result.mean("vcpu_availability[VCPU1.1]"))
"""

from .config import SystemSpec, VMSpec, WorkloadSpec
from .experiment import (
    DEFAULT_CONFIDENCE,
    DEFAULT_TARGET_HALF_WIDTH,
    SWEEP_ENGINES,
    resolve_sweep_points,
    run_experiment,
    run_sweep,
)
from .framework import RunResult, Simulation, build_system, simulate_once
from .paired import PairedComparison, PairedDifference, compare_schedulers
from .registry import (
    create_scheduler,
    is_registered,
    list_schedulers,
    register_schedule_function,
    register_scheduler,
)
from .results import ExperimentResult, MetricEstimate, render_table, results_to_csv
from .sweeps import SweepOutcome, SweepPool, SweepStats, run_interleaved_sweep

__all__ = [
    "SystemSpec",
    "VMSpec",
    "WorkloadSpec",
    "run_experiment",
    "run_sweep",
    "run_interleaved_sweep",
    "resolve_sweep_points",
    "SweepOutcome",
    "SweepPool",
    "SweepStats",
    "SWEEP_ENGINES",
    "DEFAULT_CONFIDENCE",
    "DEFAULT_TARGET_HALF_WIDTH",
    "Simulation",
    "RunResult",
    "simulate_once",
    "build_system",
    "compare_schedulers",
    "PairedComparison",
    "PairedDifference",
    "register_scheduler",
    "register_schedule_function",
    "create_scheduler",
    "list_schedulers",
    "is_registered",
    "ExperimentResult",
    "MetricEstimate",
    "render_table",
    "results_to_csv",
]
