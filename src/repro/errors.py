"""Exception hierarchy for the :mod:`repro` simulation framework.

Every error raised by the framework derives from :class:`ReproError`, so
callers can catch framework failures with a single ``except`` clause while
still distinguishing configuration mistakes from runtime model errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the framework."""


class ConfigurationError(ReproError):
    """A system/VM/workload specification is invalid.

    Raised while validating user-supplied specs, before any simulation
    starts.  The message always names the offending field.
    """


class ModelError(ReproError):
    """A SAN model is structurally invalid.

    Examples: joining two places with incompatible kinds, adding two places
    with the same name to one atomic model, or wiring a gate to an activity
    that belongs to a different model.
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent state at run time.

    Examples: an instantaneous-activity loop that never quiesces, an output
    gate raising, or a negative marking.
    """


class SchedulingError(ReproError):
    """A plugged scheduling function produced an inconsistent decision.

    Examples: scheduling more VCPUs than there are PCPUs, assigning one
    PCPU to two VCPUs, or scheduling in a VCPU without a timeslice.
    """


class RegistryError(ReproError):
    """Scheduler registry lookup or registration failed."""


class StatisticsError(ReproError):
    """An estimator was asked for a quantity it cannot compute.

    Example: a confidence interval over fewer than two replications.
    """


class ReplicationError(ReproError):
    """A replication failed after exhausting its retry budget.

    Raised by the resilient experiment executor when one replication
    keeps crashing or timing out and the configuration does not allow
    continuing with partial results.
    """


class CheckpointError(ReproError):
    """A checkpoint file is unusable.

    Examples: corrupt JSONL in the middle of the file, or resuming
    against a checkpoint written by a different experiment (spec,
    seed, or protocol fingerprint mismatch).
    """


class ServiceError(ReproError):
    """The simulation service rejected or could not run a request.

    Examples: a job payload with unknown keys or out-of-range values,
    a lookup of a job id the server never issued, or an operation on a
    server that is already shutting down.
    """
