"""Workload trace recording and replay.

Supports trace-driven simulation: record the job stream one VM
generated during a run, then replay it verbatim in another run — e.g.
to compare two schedulers on *literally identical* job sequences
rather than merely identically distributed ones.  (Seeded streams
already give distributional equality; traces give sample-path equality
even across schedulers that consume randomness differently.)

Traces store full :class:`~repro.workloads.generators.Job` records
(duration + synchronization kind), so barrier *and* critical-section
workloads replay exactly.  Two JSON formats are read:

* version 2 (written): ``{"version": 2, "jobs": [[load, kind], ...]}``
* version 1 (legacy):  ``{"jobs": [[load, sync_point], ...]}``
"""

from __future__ import annotations

import json
from random import Random
from typing import Iterable, List, Tuple

from ..errors import ConfigurationError
from .generators import Job, JobKind, WorkloadModel


class WorkloadTrace:
    """An ordered sequence of jobs.

    Accepts either ``(load, sync_point)`` pairs (the paper's two-field
    workloads) or :class:`Job` instances.
    """

    def __init__(self, jobs: Iterable = ()) -> None:
        self._jobs: List[Job] = [self._coerce(entry) for entry in jobs]

    @staticmethod
    def _coerce(entry) -> Job:
        if isinstance(entry, Job):
            return entry
        try:
            load, second = entry
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed trace entry {entry!r}") from exc
        if isinstance(second, str):
            return Job(int(load), second)
        if int(second) not in (0, 1):
            raise ConfigurationError(
                f"trace sync_point must be 0 or 1, got {second}"
            )
        return Job(int(load), JobKind.BARRIER if int(second) else JobKind.NONE)

    def append(self, load: int, sync_point: int = 0) -> None:
        """Record one (load, sync_point) job at the end of the trace."""
        self._jobs.append(self._coerce((load, sync_point)))

    def append_job(self, job: Job) -> None:
        """Record one full :class:`Job` (any kind)."""
        self._jobs.append(self._coerce(job))

    @property
    def jobs(self) -> List[Tuple[int, int]]:
        """The paper's two-field view: ``(load, sync_point)`` pairs."""
        return [(job.load, job.sync_point) for job in self._jobs]

    def job_records(self) -> List[Job]:
        """The full records, including critical-section jobs."""
        return list(self._jobs)

    def __len__(self) -> int:
        return len(self._jobs)

    def __getitem__(self, index: int) -> Tuple[int, int]:
        job = self._jobs[index]
        return (job.load, job.sync_point)

    def job(self, index: int) -> Job:
        """The full job record at ``index``."""
        return self._jobs[index]

    def sync_ratio(self) -> float:
        """Observed fraction of jobs carrying a barrier."""
        if not self._jobs:
            return 0.0
        return sum(job.sync_point for job in self._jobs) / len(self._jobs)

    def critical_ratio(self) -> float:
        """Observed fraction of jobs entering the critical section."""
        if not self._jobs:
            return 0.0
        return sum(job.critical for job in self._jobs) / len(self._jobs)

    def total_load(self) -> int:
        """Sum of all job durations."""
        return sum(job.load for job in self._jobs)

    # -- persistence -------------------------------------------------------

    def to_json(self) -> str:
        """Serialize the trace to a JSON string (format version 2)."""
        return json.dumps(
            {"version": 2, "jobs": [[job.load, job.kind] for job in self._jobs]}
        )

    @classmethod
    def from_json(cls, text: str) -> "WorkloadTrace":
        """Parse a trace in either JSON format (v1 pairs or v2 kinds)."""
        try:
            payload = json.loads(text)
            return cls(payload["jobs"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed workload trace: {exc}") from exc

    def save(self, path: str) -> None:
        """Write the trace to a file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "WorkloadTrace":
        """Read a trace from a file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


class TraceWorkloadModel(WorkloadModel):
    """A :class:`WorkloadModel` that replays a recorded trace.

    Jobs beyond the end of the trace wrap around to the beginning, so a
    finite trace can drive an arbitrarily long simulation (documented
    behaviour; pass ``wrap=False`` to raise instead).
    """

    def __init__(self, trace: WorkloadTrace, wrap: bool = True) -> None:
        if len(trace) == 0:
            raise ConfigurationError("cannot replay an empty trace")
        # Intentionally skip WorkloadModel.__init__: replay needs neither a
        # distribution nor a sync policy.
        self.trace = trace
        self.wrap = bool(wrap)

    def _index(self, index: int) -> int:
        if index >= len(self.trace):
            if not self.wrap:
                raise ConfigurationError(
                    f"trace exhausted at job {index} (length {len(self.trace)})"
                )
            index %= len(self.trace)
        return index

    def next_job(self, index: int, rng: Random) -> Job:
        return self.trace.job(self._index(index))

    def next_workload(self, index: int, rng: Random) -> Tuple[int, int]:
        return self.trace[self._index(index)]

    def mean_load(self) -> float:
        return self.trace.total_load() / len(self.trace)

    def __repr__(self) -> str:
        return f"TraceWorkloadModel(jobs={len(self.trace)}, wrap={self.wrap})"


class RecordingWorkloadModel(WorkloadModel):
    """Wraps another workload model, recording every job it emits.

    Records full :class:`Job` objects, so critical-section workloads
    replay faithfully.

    Example:
        >>> from random import Random
        >>> from repro.workloads import WorkloadModel
        >>> recorder = RecordingWorkloadModel(WorkloadModel())
        >>> _ = recorder.next_workload(0, Random(7))
        >>> len(recorder.recorded)
        1
    """

    def __init__(self, inner: WorkloadModel) -> None:
        self.inner = inner
        self.recorded = WorkloadTrace()

    def next_job(self, index: int, rng: Random) -> Job:
        job = self.inner.next_job(index, rng)
        self.recorded.append_job(job)
        return job

    def next_workload(self, index: int, rng: Random) -> Tuple[int, int]:
        job = self.next_job(index, rng)
        return job.load, job.sync_point

    def mean_load(self) -> float:
        return self.inner.mean_load()

    def __repr__(self) -> str:
        return f"RecordingWorkloadModel(inner={self.inner!r}, recorded={len(self.recorded)})"
