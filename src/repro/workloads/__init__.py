"""Workload characterization: load distributions, sync policies, traces."""

from .generators import (
    BernoulliRatio,
    DeterministicRatio,
    Job,
    JobKind,
    LockingWorkloadModel,
    NoSync,
    SyncPolicy,
    WorkloadModel,
)
from .traces import RecordingWorkloadModel, TraceWorkloadModel, WorkloadTrace

__all__ = [
    "SyncPolicy",
    "NoSync",
    "DeterministicRatio",
    "BernoulliRatio",
    "Job",
    "JobKind",
    "WorkloadModel",
    "LockingWorkloadModel",
    "WorkloadTrace",
    "TraceWorkloadModel",
    "RecordingWorkloadModel",
]
