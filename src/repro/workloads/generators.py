"""Workload characterization: load durations and synchronization points.

The paper's workload generator produces jobs with two fields — ``load``
(ticks of VCPU time) and ``sync_point`` (barrier flag) — where "the
generation of load and sync_point is configurable to any distribution
and rate" (§III.B.3).  This module provides that configurability:

* load durations come from any :class:`repro.des.Distribution`,
  coerced to an integer >= 1;
* synchronization points follow a :class:`SyncPolicy`.  The paper's
  headline parameter is the sync *ratio* — "the 1:5 ratio means that
  for five workloads there is one synchronization point" — offered
  both deterministically (every k-th job) and probabilistically
  (each job independently with probability 1/k).

Policies are *stateless* given the job index: the generator sub-model
keeps the job counter in a SAN place (``Num_Generated``), so the whole
workload state is visible in the marking and resets with the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Optional, Tuple

from ..des.distributions import Distribution, UniformInt
from ..errors import ConfigurationError


class JobKind:
    """Synchronization semantics a job can carry.

    * ``NONE`` — plain computation.
    * ``BARRIER`` — the paper's synchronization point: generation stops
      until all preceding jobs complete.
    * ``CRITICAL`` — the extension of the paper's §V future work: the
      job holds the VM's lock while processing; sibling VCPUs whose
      current job is also CRITICAL *spin* (burn PCPU time without
      progress) until the lock frees.  This models the §II.B
      lock-holder-preemption story directly.
    """

    NONE = "none"
    BARRIER = "barrier"
    CRITICAL = "critical"

    ALL = (NONE, BARRIER, CRITICAL)


@dataclass
class Job:
    """One generated workload: a duration plus synchronization kind."""

    load: int
    kind: str = JobKind.NONE

    def __post_init__(self) -> None:
        if self.load < 1:
            raise ConfigurationError(f"job load must be >= 1, got {self.load}")
        if self.kind not in JobKind.ALL:
            raise ConfigurationError(f"unknown job kind {self.kind!r}")

    @property
    def sync_point(self) -> int:
        """The paper's sync_point field: 1 for a barrier job."""
        return 1 if self.kind == JobKind.BARRIER else 0

    @property
    def critical(self) -> int:
        """1 if the job executes inside the VM's critical section."""
        return 1 if self.kind == JobKind.CRITICAL else 0


class SyncPolicy:
    """Decides whether the job with a given index carries a barrier."""

    def is_sync(self, index: int, rng: Random) -> bool:
        """True if job ``index`` (0-based) is a synchronization point."""
        raise NotImplementedError


class NoSync(SyncPolicy):
    """No synchronization points at all (embarrassingly parallel VM)."""

    def is_sync(self, index: int, rng: Random) -> bool:
        return False

    def __repr__(self) -> str:
        return "NoSync()"


class DeterministicRatio(SyncPolicy):
    """Every ``k``-th job is a synchronization point (the 1:k ratio).

    With ``k=5``, jobs 4, 9, 14, ... (0-based) carry the barrier: one
    sync point per five workloads, the paper's default setup.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ConfigurationError(f"sync ratio 1:{k} needs k >= 1")
        self.k = int(k)

    def is_sync(self, index: int, rng: Random) -> bool:
        return (index + 1) % self.k == 0

    def __repr__(self) -> str:
        return f"DeterministicRatio(1:{self.k})"


class BernoulliRatio(SyncPolicy):
    """Each job is independently a sync point with probability ``1/k``.

    Produces the same long-run 1:k ratio as :class:`DeterministicRatio`
    but with geometric gaps, for studying sensitivity to sync burstiness.
    """

    def __init__(self, k: float) -> None:
        if k < 1:
            raise ConfigurationError(f"sync ratio 1:{k} needs k >= 1")
        self.k = float(k)

    def is_sync(self, index: int, rng: Random) -> bool:
        return rng.random() < 1.0 / self.k

    def __repr__(self) -> str:
        return f"BernoulliRatio(1:{self.k})"


class WorkloadModel:
    """A VM's workload characterization: load distribution + sync policy.

    Example:
        >>> from repro.des import UniformInt
        >>> model = WorkloadModel(UniformInt(5, 15), DeterministicRatio(5))
        >>> load, sync = model.next_workload(0, Random(1))
        >>> load >= 1
        True
    """

    def __init__(
        self,
        load_distribution: Distribution = None,
        sync_policy: SyncPolicy = None,
    ) -> None:
        self.load_distribution = (
            load_distribution if load_distribution is not None else UniformInt(5, 15)
        )
        if not isinstance(self.load_distribution, Distribution):
            raise ConfigurationError(
                "load_distribution must be a repro.des Distribution, got "
                f"{type(self.load_distribution).__name__}"
            )
        self.sync_policy = sync_policy if sync_policy is not None else DeterministicRatio(5)
        if not isinstance(self.sync_policy, SyncPolicy):
            raise ConfigurationError(
                f"sync_policy must be a SyncPolicy, got {type(self.sync_policy).__name__}"
            )

    def next_workload(self, index: int, rng: Random) -> Tuple[int, int]:
        """Sample job ``index``: returns ``(load, sync_point)``.

        Loads are coerced to integers >= 1: a zero-length workload would
        complete without ever occupying a VCPU, which the discrete-time
        model cannot represent.
        """
        load = max(1, int(round(self.load_distribution.sample(rng))))
        sync = 1 if self.sync_policy.is_sync(index, rng) else 0
        return load, sync

    def next_job(self, index: int, rng: Random) -> Job:
        """Sample job ``index`` as a :class:`Job`.

        The base model only emits NONE/BARRIER jobs (the paper's
        semantics); :class:`LockingWorkloadModel` overrides this to emit
        CRITICAL jobs as well.
        """
        load, sync = self.next_workload(index, rng)
        return Job(load, JobKind.BARRIER if sync else JobKind.NONE)

    def mean_load(self) -> float:
        """Analytic mean load duration (for tests and back-of-envelope)."""
        return self.load_distribution.mean()

    def __repr__(self) -> str:
        return (
            f"WorkloadModel(load={self.load_distribution!r}, "
            f"sync={self.sync_policy!r})"
        )


class LockingWorkloadModel(WorkloadModel):
    """A workload whose jobs periodically enter a critical section.

    Extends the paper's model per its §V future work ("represent more
    synchronization mechanisms"): every ``critical_ratio``-th job holds
    the VM-wide lock while it processes; sibling VCPUs whose current
    job is also critical spin until the lock frees.  Critical sections
    get their own (typically short) duration distribution — the §V
    discussion's "spinlocks assum[e] that the critical sections are
    short".

    Args:
        load_distribution: duration of ordinary jobs (default
            UniformInt(5, 15), as the base model).
        critical_ratio: one critical job per ``k`` jobs (1:k).
        critical_load: duration distribution of critical sections
            (default UniformInt(1, 3) — short, per the spinlock
            assumption).
        barrier_ratio: optionally also emit barriers at 1:k (offset so
            a job is never both); ``None`` disables barriers.
    """

    def __init__(
        self,
        load_distribution: Optional[Distribution] = None,
        critical_ratio: int = 5,
        critical_load: Optional[Distribution] = None,
        barrier_ratio: Optional[int] = None,
    ) -> None:
        super().__init__(load_distribution, NoSync())
        if critical_ratio < 1:
            raise ConfigurationError(f"critical ratio 1:{critical_ratio} needs k >= 1")
        if barrier_ratio is not None and barrier_ratio < 2:
            raise ConfigurationError(
                "barrier_ratio must be >= 2 (1:1 barriers would collide with "
                f"critical jobs), got {barrier_ratio}"
            )
        self.critical_ratio = int(critical_ratio)
        self.critical_load = (
            critical_load if critical_load is not None else UniformInt(1, 3)
        )
        if not isinstance(self.critical_load, Distribution):
            raise ConfigurationError(
                "critical_load must be a repro.des Distribution, got "
                f"{type(self.critical_load).__name__}"
            )
        self.barrier_ratio = barrier_ratio

    def next_job(self, index: int, rng: Random) -> Job:
        if (index + 1) % self.critical_ratio == 0:
            load = max(1, int(round(self.critical_load.sample(rng))))
            return Job(load, JobKind.CRITICAL)
        if self.barrier_ratio is not None and (index + 2) % self.barrier_ratio == 0:
            load = max(1, int(round(self.load_distribution.sample(rng))))
            return Job(load, JobKind.BARRIER)
        load = max(1, int(round(self.load_distribution.sample(rng))))
        return Job(load, JobKind.NONE)

    def next_workload(self, index: int, rng: Random) -> Tuple[int, int]:
        job = self.next_job(index, rng)
        return job.load, job.sync_point

    def __repr__(self) -> str:
        return (
            f"LockingWorkloadModel(load={self.load_distribution!r}, "
            f"critical=1:{self.critical_ratio}, "
            f"critical_load={self.critical_load!r}, "
            f"barriers={self.barrier_ratio})"
        )
