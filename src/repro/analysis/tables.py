"""Figure-style text renderers.

The benches regenerate the paper's figures as ASCII tables and bar
strips; this module holds the shared rendering so each bench only
supplies data.  Output format per figure:

* :func:`figure_series_table` — one row per x-value, one column pair
  (mean ± hw) per series: the tabular equivalent of a grouped bar /
  line figure.
* :func:`bar_strip` — a quick proportional bar (``#`` glyphs) for
  values in [0, 1], making "who wins" visible in plain terminals.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.results import ExperimentResult, render_table


def bar_strip(value: float, width: int = 24) -> str:
    """A [0,1] value as a proportional bar, e.g. 0.5 -> '############'."""
    clamped = min(1.0, max(0.0, value))
    filled = int(round(clamped * width))
    return "#" * filled + "." * (width - filled)


def figure_series_table(
    title: str,
    x_name: str,
    x_values: Sequence,
    series: Dict[str, List[Tuple[float, float]]],
) -> str:
    """Render grouped series as a table.

    Args:
        title: figure caption.
        x_name: the x axis label (e.g. ``"pcpus"``).
        x_values: x axis points, one per row.
        series: mapping series name -> list of ``(mean, half_width)``
            aligned with ``x_values``.

    Returns:
        ASCII table text.
    """
    headers = [x_name]
    for name in series:
        headers.append(f"{name}")
    rows = []
    for index, x in enumerate(x_values):
        row: List[object] = [x]
        for name in series:
            mean, half_width = series[name][index]
            row.append(f"{mean:.3f} ±{half_width:.3f}")
        rows.append(row)
    return render_table(headers, rows, title=title)


def comparison_strip(
    title: str,
    values: Dict[str, float],
    width: int = 24,
) -> str:
    """Render labelled [0,1] values as proportional bars.

    Example:
        >>> print(comparison_strip("demo", {"rrs": 1.0}, width=4))
        demo
        ====
        rrs  ####  1.000
    """
    lines = [title, "=" * len(title)]
    label_width = max(len(label) for label in values)
    for label, value in values.items():
        lines.append(
            f"{label.ljust(label_width)}  {bar_strip(value, width)}  {value:.3f}"
        )
    return "\n".join(lines)


def experiments_matrix(
    results: Sequence[ExperimentResult],
    metric: str,
    row_key: str,
    column_key: str,
) -> str:
    """Pivot experiments into a rows × columns table of one metric.

    Args:
        results: experiments whose ``parameters`` contain both keys.
        metric: metric name to display (mean ± half-width).
        row_key / column_key: parameter names to pivot on.
    """
    rows_seen: List = []
    columns_seen: List = []
    cells: Dict[Tuple, str] = {}
    for result in results:
        row = result.parameters.get(row_key)
        column = result.parameters.get(column_key)
        if row not in rows_seen:
            rows_seen.append(row)
        if column not in columns_seen:
            columns_seen.append(column)
        cells[(row, column)] = f"{result.mean(metric):.3f} ±{result.half_width(metric):.3f}"
    headers = [f"{row_key}\\{column_key}"] + [str(c) for c in columns_seen]
    table_rows = []
    for row in rows_seen:
        table_rows.append(
            [row] + [cells.get((row, column), "-") for column in columns_seen]
        )
    return render_table(headers, table_rows, title=f"{metric} by {row_key} x {column_key}")
