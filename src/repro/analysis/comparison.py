"""Cross-experiment comparison: winners, crossovers, dominance.

The questions a scheduler evaluation actually asks — "who wins, by how
much, and where does the ranking flip?" — asked of
:class:`~repro.core.results.ExperimentResult` sequences:

* :func:`winner_per_point` — for each sweep point, which contender has
  the best value of a metric (with the CI-aware margin);
* :func:`find_crossovers` — the sweep points where the leader changes;
* :func:`dominates` — CI-aware dominance of one contender over
  another across a whole sweep;
* :func:`improvement` — relative improvement of one contender over a
  baseline, per point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

from ..core.results import ExperimentResult
from ..errors import StatisticsError


def _group_by_point(
    results: Sequence[ExperimentResult],
    contender_key: str,
    point_key: str,
) -> Dict[Any, Dict[Any, ExperimentResult]]:
    grouped: Dict[Any, Dict[Any, ExperimentResult]] = {}
    for result in results:
        point = result.parameters.get(point_key)
        contender = result.parameters.get(contender_key)
        if point is None or contender is None:
            raise StatisticsError(
                f"experiment {result.label!r} lacks parameter "
                f"{point_key!r} or {contender_key!r}"
            )
        grouped.setdefault(point, {})[contender] = result
    return grouped


@dataclass
class PointVerdict:
    """The outcome of one sweep point's comparison."""

    point: Any
    winner: Any
    value: float
    runner_up: Any
    margin: float
    significant: bool  # margin exceeds the summed CI half-widths


def winner_per_point(
    results: Sequence[ExperimentResult],
    metric: str,
    contender_key: str = "scheduler",
    point_key: str = "pcpus",
    higher_is_better: bool = True,
) -> List[PointVerdict]:
    """Best contender per sweep point, with CI-aware significance.

    Returns verdicts ordered by the sweep points' first appearance.
    """
    grouped = _group_by_point(results, contender_key, point_key)
    verdicts = []
    for point, contenders in grouped.items():
        if len(contenders) < 2:
            raise StatisticsError(
                f"point {point!r} has fewer than two contenders"
            )
        ranked = sorted(
            contenders.items(),
            key=lambda item: item[1].mean(metric),
            reverse=higher_is_better,
        )
        (best_name, best), (second_name, second) = ranked[0], ranked[1]
        margin = abs(best.mean(metric) - second.mean(metric))
        noise = best.half_width(metric) + second.half_width(metric)
        verdicts.append(
            PointVerdict(
                point=point,
                winner=best_name,
                value=best.mean(metric),
                runner_up=second_name,
                margin=margin,
                significant=margin > noise,
            )
        )
    return verdicts


def find_crossovers(
    results: Sequence[ExperimentResult],
    metric: str,
    contender_key: str = "scheduler",
    point_key: str = "pcpus",
    higher_is_better: bool = True,
) -> List[Any]:
    """Sweep points at which the (significant) leader changes.

    A point only registers as a crossover when both its own verdict and
    the previous one are statistically significant — noisy ties do not
    flip the leader.
    """
    verdicts = winner_per_point(
        results, metric, contender_key, point_key, higher_is_better
    )
    crossovers = []
    previous = None
    for verdict in verdicts:
        if not verdict.significant:
            continue
        if previous is not None and verdict.winner != previous:
            crossovers.append(verdict.point)
        previous = verdict.winner
    return crossovers


def dominates(
    results: Sequence[ExperimentResult],
    metric: str,
    contender: Any,
    other: Any,
    contender_key: str = "scheduler",
    point_key: str = "pcpus",
    higher_is_better: bool = True,
) -> bool:
    """True if ``contender`` beats-or-ties ``other`` at every point.

    "Beats-or-ties" is CI-aware: at each point the contender's mean
    must not be worse than the other's by more than their summed
    half-widths.
    """
    grouped = _group_by_point(results, contender_key, point_key)
    sign = 1.0 if higher_is_better else -1.0
    for point, contenders in grouped.items():
        if contender not in contenders or other not in contenders:
            raise StatisticsError(
                f"point {point!r} lacks {contender!r} or {other!r}"
            )
        a, b = contenders[contender], contenders[other]
        gap = sign * (a.mean(metric) - b.mean(metric))
        noise = a.half_width(metric) + b.half_width(metric)
        if gap < -noise:
            return False
    return True


def improvement(
    results: Sequence[ExperimentResult],
    metric: str,
    contender: Any,
    baseline: Any,
    contender_key: str = "scheduler",
    point_key: str = "pcpus",
) -> Dict[Any, float]:
    """Relative improvement of ``contender`` over ``baseline`` per point.

    Returns ``{point: (contender - baseline) / |baseline|}``; a zero
    baseline yields ``float('inf')`` (or 0.0 when both are zero).
    """
    grouped = _group_by_point(results, contender_key, point_key)
    out: Dict[Any, float] = {}
    for point, contenders in grouped.items():
        if contender not in contenders or baseline not in contenders:
            raise StatisticsError(
                f"point {point!r} lacks {contender!r} or {baseline!r}"
            )
        a = contenders[contender].mean(metric)
        b = contenders[baseline].mean(metric)
        if b == 0:
            out[point] = 0.0 if a == 0 else float("inf")
        else:
            out[point] = (a - b) / abs(b)
    return out
