"""Result analysis: fairness, comparison/dominance, text rendering."""

from .comparison import (
    PointVerdict,
    dominates,
    find_crossovers,
    improvement,
    winner_per_point,
)
from .fairness import FairnessReport, availability_fairness, rank_by_fairness
from .tables import bar_strip, comparison_strip, experiments_matrix, figure_series_table

__all__ = [
    "PointVerdict",
    "winner_per_point",
    "find_crossovers",
    "dominates",
    "improvement",
    "FairnessReport",
    "availability_fairness",
    "rank_by_fairness",
    "bar_strip",
    "comparison_strip",
    "experiments_matrix",
    "figure_series_table",
]
