"""Fairness analysis over experiment results.

The paper's Figure 8 argues fairness visually (four availability bars
per algorithm); this module quantifies the same comparison with Jain's
index and min/max share ratios so tests and benches can assert "RRS is
fair, SCS is not (at low PCPU counts)" numerically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.results import ExperimentResult
from ..errors import StatisticsError
from ..metrics.stats import jain_fairness


@dataclass
class FairnessReport:
    """Fairness of one experiment's per-VCPU availability."""

    label: str
    availabilities: Dict[str, float]
    jain_index: float
    min_share: float
    max_share: float

    @property
    def spread(self) -> float:
        """max - min availability: 0 means perfectly balanced."""
        return self.max_share - self.min_share


def availability_fairness(result: ExperimentResult) -> FairnessReport:
    """Compute fairness over a result's per-VCPU availability metrics.

    Raises:
        StatisticsError: if the result has no per-VCPU availability
            metrics (``vcpu_availability[...]``).
    """
    availabilities = {
        name: estimate.mean
        for name, estimate in result.estimates.items()
        if name.startswith("vcpu_availability[")
    }
    if not availabilities:
        raise StatisticsError(
            f"experiment {result.label!r} has no per-VCPU availability metrics"
        )
    values = list(availabilities.values())
    return FairnessReport(
        label=result.label,
        availabilities=availabilities,
        jain_index=jain_fairness(values),
        min_share=min(values),
        max_share=max(values),
    )


def rank_by_fairness(results: Sequence[ExperimentResult]) -> List[FairnessReport]:
    """Fairness reports for several experiments, fairest first."""
    reports = [availability_fairness(result) for result in results]
    reports.sort(key=lambda report: report.jain_index, reverse=True)
    return reports
