"""Strict Co-Scheduling (SCS).

VMware ESX 2's gang-style scheduler ([3] in the paper, rooted in gang
scheduling [4]): all VCPUs of a VM must *co-start* and *co-stop*
together.  The scheduler only dispatches a VM when there are enough
free PCPUs for every one of its VCPUs, which eliminates
synchronization latency (siblings are always preempted and resumed as
a unit) at the cost of the *CPU fragmentation* problem: a VM can sit
unscheduled while PCPUs idle because they are too few for a co-start.

Two consequences the paper measures:

* Figure 8 — with a single PCPU, a 2-VCPU VM can **never** be
  scheduled (availability 0): the strict co-start requirement always
  exceeds the supply.
* Figure 9 — with more VCPUs than PCPUs, SCS cannot fully utilize the
  PCPUs (fragmentation), unlike RRS and, largely, RCS.

Queue policy: a round-robin queue of VMs; VMs that do not fit the
currently free PCPUs are skipped (not blocked on), which is what lets
small VMs proceed when a large VM cannot fit — and what produces the
fragmentation loss when only the large VM remains.
"""

from __future__ import annotations

from collections import deque
from typing import List

from .interface import PCPUView, SchedulingAlgorithm, VCPUHostView


class StrictCoScheduler(SchedulingAlgorithm):
    """Gang scheduling at VM granularity with skip-ahead dispatch."""

    name = "scs"
    # At a fast-forwardable marking every gang is fully active or fully
    # idle (a partial gang implies a FAILED/IDLE PCPU, which blocks the
    # certificate), so co-stop, admission and dispatch are all no-ops.
    tick_skip_safe = True

    def __init__(self, timeslice: int = 30) -> None:
        super().__init__(timeslice)
        self._queue: deque = deque()
        self._queued: set = set()
        # VM-granularity dispatch counter: simultaneous gang expiries must
        # re-enter the queue in dispatch order to rotate fairly.
        self._vm_order: dict = {}
        self._vm_counter = 0

    def reset(self) -> None:
        super().reset()
        self._queue.clear()
        self._queued.clear()
        self._vm_order.clear()
        self._vm_counter = 0

    def schedule(
        self,
        vcpus: List[VCPUHostView],
        num_vcpu: int,
        pcpus: List[PCPUView],
        num_pcpu: int,
        timestamp: float,
    ) -> bool:
        decided = False
        vms = self.by_vm(vcpus)

        # Co-stop: if any sibling just lost its PCPU (timeslice expiry),
        # stop the rest of the gang immediately.  With equal timeslices the
        # gang normally expires as one, so this is a consistency guard.
        for siblings in vms.values():
            actives = [v for v in siblings if v.active]
            if actives and len(actives) < len(siblings):
                for view in actives:
                    self.stop(view)
                decided = True

        # Admit fully idle VMs to the run queue in dispatch order (the
        # first call admits all, in vm_id order).
        admissible = []
        for vm_id, siblings in vms.items():
            fully_inactive = all(not v.active or v.schedule_out for v in siblings)
            if fully_inactive and vm_id not in self._queued:
                admissible.append(vm_id)
        admissible.sort(key=lambda vm_id: (self._vm_order.get(vm_id, -1), vm_id))
        for vm_id in admissible:
            self._queue.append(vm_id)
            self._queued.add(vm_id)

        # Count PCPUs free after the co-stops above take effect.
        stopping = sum(1 for v in vcpus if v.schedule_out and v.active)
        free = self.free_pcpu_count(pcpus) + stopping

        # Dispatch in queue order, skipping VMs that do not fit.  Skipped
        # VMs keep their queue position (head of the rebuilt queue).
        skipped = []
        while free > 0 and self._queue:
            vm_id = self._queue.popleft()
            siblings = vms[vm_id]
            if any(v.schedule_out for v in siblings):
                # A gang we are co-stopping this very tick cannot restart
                # in the same tick; keep it queued for the next one.
                skipped.append(vm_id)
                continue
            if len(siblings) > free:
                skipped.append(vm_id)
                continue
            self._queued.discard(vm_id)
            for view in siblings:
                self.start(view)
            self._vm_order[vm_id] = self._vm_counter
            self._vm_counter += 1
            free -= len(siblings)
            decided = True
        self._queue = deque(skipped + list(self._queue))
        return decided
