"""Simple Earliest Deadline First (SEDF) scheduling.

One of Xen's three classic schedulers, compared empirically by
Cherkasova et al. ([8] in the paper).  Each VCPU holds a reservation
``(period, slice)``: in every window of ``period`` ticks it is entitled
to ``slice`` ticks of PCPU time.  The scheduler tracks each VCPU's
remaining slice and window deadline, and always dispatches the
runnable VCPUs with the **earliest deadlines** among those that still
have slice left; VCPUs whose slice is exhausted wait for their next
window (non-work-conserving in the strict variant; this implementation
adds the common work-conserving extension that hands leftover PCPUs to
exhausted VCPUs in deadline order).

Default reservation: period 100, slice ``100 / total_vcpus_per_pcpu``
is not knowable here, so the default grants every VCPU an equal
``slice=20, period=100`` — override per VM with the ``reservations``
mapping.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import SchedulingError
from .interface import PCPUView, SchedulingAlgorithm, VCPUHostView


class SEDFScheduler(SchedulingAlgorithm):
    """Earliest-deadline-first with per-VM (period, slice) reservations.

    Args:
        timeslice: dispatch granularity (a VCPU is re-evaluated at
            least every ``timeslice`` ticks; its slice accounting is
            per-tick regardless).
        reservations: mapping vm_id -> (period, slice).  VMs absent
            from the mapping get ``default_reservation``.
        default_reservation: the (period, slice) for unlisted VMs.
        work_conserving: hand leftover PCPUs to exhausted VCPUs
            (deadline order) instead of idling them.
    """

    name = "sedf"

    def __init__(
        self,
        timeslice: int = 10,
        reservations: Optional[Dict[int, Tuple[int, int]]] = None,
        default_reservation: Tuple[int, int] = (100, 20),
        work_conserving: bool = True,
    ) -> None:
        super().__init__(timeslice)
        self.reservations = dict(reservations or {})
        for vm_id, (period, slice_) in self.reservations.items():
            self._check_reservation(vm_id, period, slice_)
        period, slice_ = default_reservation
        self._check_reservation("default", period, slice_)
        self.default_reservation = (int(period), int(slice_))
        self.work_conserving = bool(work_conserving)
        # Per-VCPU window state.  Slice is charged *up front* at dispatch
        # (stride-style): the framework applies timeslice expiry before
        # the algorithm runs, so charging by observed runtime would
        # systematically miss each tenure's final tick.
        self._deadline: Dict[int, float] = {}
        self._remaining_slice: Dict[int, int] = {}
        # VCPUs whose current tenure is a work-conserving bonus grant
        # (preemptible the moment an entitled VCPU shows up).
        self._bonus: set = set()

    @staticmethod
    def _check_reservation(who, period, slice_) -> None:
        if period < 1 or slice_ < 1 or slice_ > period:
            raise SchedulingError(
                f"reservation for {who!r} needs 1 <= slice <= period, "
                f"got (period={period}, slice={slice_})"
            )

    def reset(self) -> None:
        super().reset()
        self._deadline.clear()
        self._remaining_slice.clear()
        self._bonus.clear()

    def _reservation(self, vm_id: int) -> Tuple[int, int]:
        return self.reservations.get(vm_id, self.default_reservation)

    def _open_window(self, view: VCPUHostView, now: float) -> None:
        period, slice_ = self._reservation(view.vm_id)
        self._deadline[view.vcpu_id] = now + period
        self._remaining_slice[view.vcpu_id] = slice_

    def _account(self, vcpus: List[VCPUHostView], timestamp: float) -> None:
        """Roll reservation windows over at their deadlines."""
        for view in vcpus:
            if view.vcpu_id not in self._deadline:
                self._open_window(view, timestamp)
            elif timestamp >= self._deadline[view.vcpu_id]:
                self._open_window(view, timestamp)

    def slack(self, vcpu_id: int) -> int:
        """Remaining reserved slice in the current window (test probe)."""
        return self._remaining_slice.get(vcpu_id, 0)

    def schedule(
        self,
        vcpus: List[VCPUHostView],
        num_vcpu: int,
        pcpus: List[PCPUView],
        num_pcpu: int,
        timestamp: float,
    ) -> bool:
        self._account(vcpus, timestamp)

        # Drop bonus bookkeeping for tenures that ended via expiry.
        self._bonus &= {v.vcpu_id for v in vcpus if v.active}

        # Preempt bonus tenures the moment an entitled VCPU is waiting:
        # reserved time always beats work-conserving leftovers.
        decided = False
        entitled_waiting = [
            v
            for v in vcpus
            if not v.active and self._remaining_slice.get(v.vcpu_id, 0) > 0
        ]
        if entitled_waiting:
            for view in vcpus:
                if view.active and view.vcpu_id in self._bonus:
                    self.stop(view)
                    self._bonus.discard(view.vcpu_id)
                    decided = True

        stopping = sum(1 for v in vcpus if v.schedule_out and v.active)
        free = self.free_pcpu_count(pcpus) + stopping
        if free == 0:
            return decided

        waiting = [v for v in vcpus if not v.active and not v.schedule_out]
        entitled = [v for v in waiting if self._remaining_slice.get(v.vcpu_id, 0) > 0]
        entitled.sort(key=lambda v: (self._deadline.get(v.vcpu_id, 0.0), v.vcpu_id))
        for view in entitled[:free]:
            grant = min(self.timeslice, self._remaining_slice[view.vcpu_id])
            self._remaining_slice[view.vcpu_id] -= grant  # charge up front
            self.start(view, timeslice=grant)
            decided = True
        free -= min(free, len(entitled))

        if free > 0 and self.work_conserving:
            exhausted = [
                v for v in waiting if self._remaining_slice.get(v.vcpu_id, 0) == 0
                and not v.schedule_in
            ]
            exhausted.sort(key=lambda v: (self._deadline.get(v.vcpu_id, 0.0), v.vcpu_id))
            for view in exhausted[:free]:
                self.start(view, timeslice=self.timeslice)
                self._bonus.add(view.vcpu_id)
                decided = True
        return decided
