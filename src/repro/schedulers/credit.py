"""Proportional-share (credit) scheduling.

A Xen-credit-style weighted fair scheduler, included because the paper's
related work (§II.C) compares proportional-share strategies ([7] Weng et
al.'s hybrid framework; [8] Cherkasova et al.'s comparison of Xen's
three schedulers).  Each VM carries a *weight*; the scheduler tracks
each VCPU's consumed PCPU time normalized by its VM's weight (a virtual
time) and always dispatches the VCPUs with the smallest virtual time —
the classic fair-queueing rule, which converges to proportional shares.

Like RRS it is sibling-oblivious, so it inherits the synchronization
latency problem; the scheduler-zoo ablation shows it sits near RRS on
VCPU utilization while adding weighted differentiation.

Accounting is *stride style*: a VCPU's virtual time is charged
``timeslice / weight`` up front at dispatch, which is both the classic
stride-scheduling rule and robust to the framework's tick ordering
(timeslice expiry is applied before the algorithm runs, so charging by
observed runtime would systematically miss the final tick — with a
timeslice of 1 it would miss *everything* and starve high-id VCPUs, a
bug the property suite caught).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import SchedulingError
from .interface import PCPUView, SchedulingAlgorithm, VCPUHostView


class CreditScheduler(SchedulingAlgorithm):
    """Smallest-virtual-time-first dispatch with per-VM weights.

    Args:
        timeslice: PCPU tenure per dispatch.
        weights: mapping vm_id -> positive weight.  VMs absent from the
            mapping get weight 1.
    """

    name = "credit"
    # Virtual time is charged at dispatch, not per tick; with zero free
    # PCPUs schedule() returns before touching any state.
    tick_skip_safe = True

    def __init__(self, timeslice: int = 30, weights: Optional[Dict[int, float]] = None) -> None:
        super().__init__(timeslice)
        self.weights = dict(weights or {})
        for vm_id, weight in self.weights.items():
            if weight <= 0:
                raise SchedulingError(
                    f"credit weight for VM {vm_id} must be > 0, got {weight}"
                )
        self._vtime: Dict[int, float] = {}

    def reset(self) -> None:
        super().reset()
        self._vtime.clear()

    def _weight(self, vm_id: int) -> float:
        return self.weights.get(vm_id, 1.0)

    def virtual_time(self, vcpu_id: int) -> float:
        """Accumulated weighted service of one VCPU (probe for tests)."""
        return self._vtime.get(vcpu_id, 0.0)

    def schedule(
        self,
        vcpus: List[VCPUHostView],
        num_vcpu: int,
        pcpus: List[PCPUView],
        num_pcpu: int,
        timestamp: float,
    ) -> bool:
        free = self.free_pcpu_count(pcpus)
        if free == 0:
            return False
        waiting = [v for v in vcpus if not v.active]
        # Lowest virtual time first; vcpu_id breaks ties deterministically.
        waiting.sort(key=lambda v: (self._vtime.get(v.vcpu_id, 0.0), v.vcpu_id))
        decided = False
        for view in waiting[:free]:
            self.start(view)
            self._vtime[view.vcpu_id] = (
                self._vtime.get(view.vcpu_id, 0.0)
                + self.timeslice / self._weight(view.vm_id)
            )
            decided = True
        return decided
