"""Relaxed Co-Scheduling (RCS).

VMware ESX 3/4's refinement of strict co-scheduling ([2] in the paper).
The scheduler makes a best effort to co-start and co-stop a VM's
VCPUs, but when resources are short it may start a single VCPU alone.
To bound the resulting divergence it tracks a *cumulative skew* per
VCPU relative to its siblings; once a VCPU's skew grows past a
threshold, the VM falls back to co-start-only behaviour (leaders stop,
laggards catch up) until the skew drops below a lower threshold.

Implementation notes (ESX 4.1 "relaxed" semantics, per the white
paper the ICDCSW paper cites):

* *Progress* of a VCPU counts the ticks it holds a PCPU.  ``lag(v)`` is
  the gap between the furthest-ahead sibling's progress and v's.
* When ``max lag > skew_threshold``, the VM enters *catch-up*: every
  *leader* (a VCPU whose lead over the slowest sibling exceeds the
  relax threshold) self-co-stops and may not restart; laggards remain
  individually schedulable — with one PCPU, this is exactly what lets
  RCS drive a 2-VCPU VM that SCS cannot schedule at all (Figure 8),
  albeit with less PCPU share than unconstrained 1-VCPU VMs, because
  leaders give up the tail of their timeslice.
* Catch-up clears when ``max lag < relax_threshold``.
* Dispatch uses an RRS-style global FIFO, with opportunistic co-start:
  when a VCPU is dispatched and free PCPUs remain, queued siblings are
  pulled forward to start together.

The algorithm tracks progress itself (it is invoked every clock tick,
like the paper's C function), so it needs no framework support beyond
the standard view arrays.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from ..errors import SchedulingError
from ..observability import trace as _trace
from .interface import PCPUView, SchedulingAlgorithm, VCPUHostView


class RelaxedCoScheduler(SchedulingAlgorithm):
    """Skew-bounded best-effort co-scheduling (ESX 3/4 style).

    Args:
        timeslice: PCPU tenure granted on dispatch.
        skew_threshold: lag (in ticks) that trips catch-up mode.  Must be
            positive; values below the timeslice make the constraint
            actually bind (the paper's behaviour).  The default of 10 (a
            third of the default timeslice) was calibrated so the
            reproduction matches the paper's Figure 8/10 placement of
            RCS: visibly penalized vs 1-VCPU VMs on a starved host, and
            between RRS and SCS on VCPU utilization.  The paper does not
            report VMware's thresholds.
        relax_threshold: lag below which catch-up mode clears and above
            which a VCPU counts as a leader during catch-up.  Must be
            < skew_threshold.
    """

    name = "rcs"

    def __init__(
        self,
        timeslice: int = 30,
        skew_threshold: int = 10,
        relax_threshold: int = 5,
    ) -> None:
        super().__init__(timeslice)
        if skew_threshold <= 0:
            raise SchedulingError(f"skew_threshold must be > 0, got {skew_threshold}")
        if not 0 <= relax_threshold < skew_threshold:
            raise SchedulingError(
                "relax_threshold must satisfy 0 <= relax < skew "
                f"(got relax={relax_threshold}, skew={skew_threshold})"
            )
        self.skew_threshold = int(skew_threshold)
        self.relax_threshold = int(relax_threshold)
        self._queue: deque = deque()
        self._queued: set = set()
        self._progress: Dict[int, float] = {}
        self._catching_up: set = set()  # vm_ids currently in catch-up mode
        self._was_active: set = set()
        self._last_timestamp: Optional[float] = None

    def reset(self) -> None:
        super().reset()
        self._queue.clear()
        self._queued.clear()
        self._progress.clear()
        self._catching_up.clear()
        self._was_active.clear()
        self._last_timestamp = None

    # -- skew bookkeeping --------------------------------------------------

    def _update_progress(self, vcpus: List[VCPUHostView], timestamp: float) -> None:
        """Credit progress to every VCPU that held a PCPU since last tick."""
        if self._last_timestamp is not None:
            dt = timestamp - self._last_timestamp
            if dt > 0:
                for vcpu_id in self._was_active:
                    self._progress[vcpu_id] = self._progress.get(vcpu_id, 0.0) + dt
        self._last_timestamp = timestamp
        self._was_active = {v.vcpu_id for v in vcpus if v.active}

    def _lags(self, siblings: List[VCPUHostView]) -> Dict[int, float]:
        """Per-VCPU lag behind the furthest-ahead sibling."""
        progress = {v.vcpu_id: self._progress.get(v.vcpu_id, 0.0) for v in siblings}
        front = max(progress.values())
        return {vcpu_id: front - p for vcpu_id, p in progress.items()}

    def skew_of(self, vcpu_id: int, vcpus: List[VCPUHostView]) -> float:
        """Public probe of a VCPU's current lag (used by tests/benches)."""
        target = next(v for v in vcpus if v.vcpu_id == vcpu_id)
        siblings = [v for v in vcpus if v.vm_id == target.vm_id]
        return self._lags(siblings)[vcpu_id]

    # -- the scheduling function --------------------------------------------

    def schedule(
        self,
        vcpus: List[VCPUHostView],
        num_vcpu: int,
        pcpus: List[PCPUView],
        num_pcpu: int,
        timestamp: float,
    ) -> bool:
        self._update_progress(vcpus, timestamp)
        decided = False
        vms = self.by_vm(vcpus)

        tracer = _trace._ACTIVE
        if tracer is not None:
            # Observability: the pre-decision sibling lag per SMP VM, the
            # quantity the skew-bound invariant asserts on.
            for vm_id, siblings in vms.items():
                if len(siblings) < 2:
                    continue
                tracer.emit(_trace.SCHED_SKEW, time=timestamp, vm=vm_id,
                            max_lag=max(self._lags(siblings).values()),
                            catching_up=vm_id in self._catching_up)

        # 1. Maintain catch-up mode and self-co-stop leaders.
        leaders: set = set()
        for vm_id, siblings in vms.items():
            if len(siblings) < 2:
                continue
            lags = self._lags(siblings)
            max_lag = max(lags.values())
            if vm_id in self._catching_up:
                if max_lag < self.relax_threshold:
                    self._catching_up.discard(vm_id)
            elif max_lag > self.skew_threshold:
                self._catching_up.add(vm_id)
            if vm_id in self._catching_up:
                slowest = min(
                    self._progress.get(v.vcpu_id, 0.0) for v in siblings
                )
                for view in siblings:
                    lead = self._progress.get(view.vcpu_id, 0.0) - slowest
                    if lead > self.relax_threshold:
                        leaders.add(view.vcpu_id)
                        if view.active:
                            self.stop(view)
                            decided = True

        # 2. Admit newly inactive VCPUs to the FIFO, in dispatch order so
        #    simultaneous timeslice expiries rotate fairly.
        newly_inactive = [
            v
            for v in vcpus
            if (not v.active or v.schedule_out) and v.vcpu_id not in self._queued
        ]
        for view in self.requeue_order(newly_inactive):
            self._queue.append(view.vcpu_id)
            self._queued.add(view.vcpu_id)

        # 3. Dispatch: FIFO order, skipping leaders of catching-up VMs;
        #    opportunistic co-start pulls queued siblings forward.
        stopping = sum(1 for v in vcpus if v.schedule_out and v.active)
        free = self.free_pcpu_count(pcpus) + stopping
        by_id = {view.vcpu_id: view for view in vcpus}
        skipped: List[int] = []
        started: set = set()
        while free > 0 and self._queue:
            vcpu_id = self._queue.popleft()
            view = by_id[vcpu_id]
            if view.active or view.vcpu_id in started:
                self._queued.discard(vcpu_id)
                continue
            if vcpu_id in leaders or view.schedule_out:
                skipped.append(vcpu_id)
                continue
            self._queued.discard(vcpu_id)
            self.start(view)
            started.add(vcpu_id)
            free -= 1
            decided = True
            # Best-effort co-start: bring queued, non-leader siblings along.
            for sibling in vms[view.vm_id]:
                if free == 0:
                    break
                sid = sibling.vcpu_id
                if (
                    sid != vcpu_id
                    and sid in self._queued
                    and sid not in leaders
                    and not sibling.active
                    and not sibling.schedule_out
                    and sid not in started
                ):
                    self._queue.remove(sid)
                    self._queued.discard(sid)
                    self.start(sibling)
                    started.add(sid)
                    free -= 1
        self._queue = deque(skipped + list(self._queue))
        return decided
