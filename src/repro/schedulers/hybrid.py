"""Hybrid scheduling (Weng et al., VEE 2009 — [7] in the paper).

Weng et al. observed that co-scheduling only pays off for *concurrent*
workloads (threads that synchronize, e.g. parallel kernels) and hurts
*non-concurrent* VMs (independent services), and proposed a hybrid
framework: classify each VM as concurrent or not, gang-schedule the
concurrent ones, and run everything else under proportional share.

This implementation keeps **one** proportional-share (stride) clock
for both classes: every VCPU accumulates virtual time
``timeslice / weight(vm)`` when dispatched, and the scheduler always
serves the smallest virtual time next — except that a concurrent VM's
VCPUs are only ever started *together* (its candidacy uses the mean of
its members' virtual times, and it is skipped when too few PCPUs are
free).  That gives concurrent VMs gang semantics without letting them
starve the share class, which is the point of the hybrid framework.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..errors import SchedulingError
from .interface import PCPUView, SchedulingAlgorithm, VCPUHostView


class HybridScheduler(SchedulingAlgorithm):
    """Gang-schedule declared-concurrent VMs; proportional-share the rest.

    Args:
        timeslice: PCPU tenure per dispatch (both classes).
        concurrent_vms: vm_ids to co-schedule.  Empty means pure
            proportional share.
        weights: per-VM weights (both classes; default 1).
    """

    name = "hybrid"
    # Same argument as scs for the gang half and credit for the
    # proportional half: with zero free PCPUs and no partial gangs the
    # candidate loop breaks before charging any virtual time.
    tick_skip_safe = True

    def __init__(
        self,
        timeslice: int = 30,
        concurrent_vms: Iterable[int] = (),
        weights: Optional[Dict[int, float]] = None,
    ) -> None:
        super().__init__(timeslice)
        self.concurrent_vms = set(int(v) for v in concurrent_vms)
        self.weights = dict(weights or {})
        for vm_id, weight in self.weights.items():
            if weight <= 0:
                raise SchedulingError(
                    f"hybrid weight for VM {vm_id} must be > 0, got {weight}"
                )
        self._vtime: Dict[int, float] = {}

    def reset(self) -> None:
        super().reset()
        self._vtime.clear()

    def _weight(self, vm_id: int) -> float:
        return self.weights.get(vm_id, 1.0)

    def virtual_time(self, vcpu_id: int) -> float:
        """Accumulated weighted service of one VCPU (probe for tests)."""
        return self._vtime.get(vcpu_id, 0.0)

    def _charge(self, view: VCPUHostView) -> None:
        self._vtime[view.vcpu_id] = (
            self._vtime.get(view.vcpu_id, 0.0)
            + self.timeslice / self._weight(view.vm_id)
        )

    def schedule(
        self,
        vcpus: List[VCPUHostView],
        num_vcpu: int,
        pcpus: List[PCPUView],
        num_pcpu: int,
        timestamp: float,
    ) -> bool:
        decided = False
        vms = self.by_vm(vcpus)

        # Gang discipline: co-stop partially descheduled concurrent VMs.
        for vm_id in self.concurrent_vms:
            siblings = vms.get(vm_id)
            if not siblings:
                continue
            actives = [v for v in siblings if v.active]
            if actives and len(actives) < len(siblings):
                for view in actives:
                    self.stop(view)
                decided = True

        stopping = sum(1 for v in vcpus if v.schedule_out and v.active)
        free = self.free_pcpu_count(pcpus) + stopping

        # One candidate list for both classes, smallest virtual time first.
        candidates = []  # (vtime, tiebreak, kind, payload)
        for vm_id, siblings in vms.items():
            if vm_id in self.concurrent_vms:
                ready = all(not v.active and not v.schedule_out for v in siblings)
                if ready:
                    mean_vtime = sum(
                        self._vtime.get(v.vcpu_id, 0.0) for v in siblings
                    ) / len(siblings)
                    candidates.append((mean_vtime, vm_id, "gang", siblings))
            else:
                for view in siblings:
                    if not view.active and not view.schedule_out:
                        candidates.append(
                            (
                                self._vtime.get(view.vcpu_id, 0.0),
                                view.vcpu_id,
                                "vcpu",
                                view,
                            )
                        )
        candidates.sort(key=lambda c: (c[0], c[1]))

        for _, _, kind, payload in candidates:
            if free == 0:
                break
            if kind == "gang":
                siblings = payload
                if len(siblings) > free:
                    continue  # skip-ahead: too few PCPUs for the gang
                for view in siblings:
                    self.start(view)
                    self._charge(view)
                free -= len(siblings)
                decided = True
            else:
                view = payload
                self.start(view)
                self._charge(view)
                free -= 1
                decided = True
        return decided
