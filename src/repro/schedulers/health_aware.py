"""Health-aware placement: route default dispatches around sick cores.

The degradation extension (PR 6) publishes per-PCPU ``health`` /
``capacity`` signals on :class:`~repro.schedulers.interface.PCPUView`.
None of the paper's algorithms read them — they were written against
an idealized host — so under partial degradation they keep dispatching
onto the sickest core as happily as onto a pristine one, and a VM's
makespan is gated by its unluckiest placement.

:class:`HealthAwareScheduler` is a *wrapper*, not a new policy: it
delegates every queueing/fairness/co-scheduling decision to an inner
algorithm, then redirects only the placements the inner algorithm left
to the framework default ("any free PCPU") onto the healthiest free
core instead of the lowest-numbered one.  Explicit placements (e.g.
balance scheduling's per-VCPU pins) are honored untouched — the
wrapper adds information the inner policy ignored, it does not
override the information the policy used.

On a fully healthy host the healthiest-free choice coincides exactly
with the framework's first-free default, so ``health_aware(inner)`` is
bit-for-bit identical to ``inner`` until the first degradation — the
wrapper costs nothing until there is something to route around.
"""

from __future__ import annotations

from typing import List, Union

from ..errors import SchedulingError
from .interface import PCPUState, PCPUView, SchedulingAlgorithm, VCPUHostView


class HealthAwareScheduler(SchedulingAlgorithm):
    """Wrap any algorithm with healthiest-free-core default placement.

    Args:
        inner: the wrapped algorithm — a registry name (default
            ``"rrs"``) or a ready instance.
        timeslice: default timeslice, forwarded to a named inner.
        **inner_params: extra constructor params for a named inner.

    The wrapper inherits the inner algorithm's ``tick_skip_safe``
    certificate: in a certified marking the inner makes no schedule-in,
    so the wrapper's post-pass is a no-op and coalescing stays sound.
    """

    name = "health_aware"

    def __init__(
        self,
        inner: Union[str, SchedulingAlgorithm] = "rrs",
        timeslice: int = 30,
        **inner_params,
    ) -> None:
        super().__init__(timeslice)
        if isinstance(inner, SchedulingAlgorithm):
            if inner_params:
                raise SchedulingError(
                    "inner_params only apply when inner is a registry name"
                )
            self.inner = inner
        else:
            from . import BUILTIN_ALGORITHMS  # deferred: package init order

            try:
                factory = BUILTIN_ALGORITHMS[inner]
            except KeyError:
                raise SchedulingError(
                    f"unknown inner scheduler {inner!r}; expected one of "
                    f"{sorted(BUILTIN_ALGORITHMS)}"
                ) from None
            if factory is HealthAwareScheduler:
                raise SchedulingError("health_aware cannot wrap itself")
            self.inner = factory(timeslice=timeslice, **inner_params)
        self.timeslice = self.inner.timeslice
        self.tick_skip_safe = self.inner.tick_skip_safe

    def reset(self) -> None:
        super().reset()
        self.inner.reset()

    def schedule(
        self,
        vcpus: List[VCPUHostView],
        num_vcpu: int,
        pcpus: List[PCPUView],
        num_pcpu: int,
        timestamp: float,
    ) -> bool:
        decided = self.inner.schedule(vcpus, num_vcpu, pcpus, num_pcpu, timestamp)

        # Reconstruct the framework's apply-time availability: outs free
        # their PCPUs first, and explicitly pinned ins are spoken for.
        states = [p.state for p in pcpus]
        for view in vcpus:
            if view.schedule_out and view.pcpu is not None:
                states[view.pcpu] = PCPUState.IDLE
        taken = {
            view.next_pcpu
            for view in vcpus
            if view.schedule_in and view.next_pcpu is not None
        }
        for view in vcpus:
            if not view.schedule_in or view.next_pcpu is not None:
                continue
            best = None
            for i in range(num_pcpu):
                if states[i] != PCPUState.IDLE or i in taken:
                    continue
                if best is None or pcpus[i].health < pcpus[best].health:
                    best = i
            if best is None:
                # Over-commitment: leave the default in place so the
                # framework raises its usual diagnostic.
                continue
            view.next_pcpu = best
            taken.add(best)
        return decided

    def __repr__(self) -> str:
        return f"HealthAwareScheduler(inner={self.inner!r})"
