"""Pluggable VCPU scheduling algorithms.

The paper's framework accepts "any VCPU scheduling algorithm in the form
of C functions"; here an algorithm is a :class:`SchedulingAlgorithm`
subclass (or a bare function wrapped in :class:`FunctionScheduler`) with
the same call signature and in/out array contract.

Built-in algorithms:

====================  =====================================================
``rrs``               Round-Robin (paper §II.B baseline)
``scs``               Strict Co-Scheduling (VMware gang-style, [3])
``rcs``               Relaxed Co-Scheduling (ESX 3/4 skew-bounded, [2])
``balance``           Balance scheduling (Sukwong & Kim [1], extension)
``credit``            Proportional-share / Xen-credit-like (extension)
``sedf``              Xen SEDF: EDF over (period, slice) reservations
                      (Cherkasova et al. [8], extension)
``hybrid``            Weng et al.'s hybrid framework [7]: gangs for
                      declared-concurrent VMs, shares for the rest
``fifo``              Run-to-completion FIFO (ablation baseline)
``health_aware``      Wrapper routing default placements onto the
                      healthiest free core (degradation extension)
====================  =====================================================
"""

from .balance import BalanceScheduler
from .credit import CreditScheduler
from .fifo import FifoScheduler
from .harness import SchedulerHarness
from .health_aware import HealthAwareScheduler
from .hybrid import HybridScheduler
from .sedf import SEDFScheduler
from .interface import (
    FunctionScheduler,
    PCPUState,
    PCPUView,
    SchedulingAlgorithm,
    VCPUHostView,
    VCPUStatus,
    validate_decisions,
)
from .relaxed_co import RelaxedCoScheduler
from .round_robin import RoundRobinScheduler
from .strict_co import StrictCoScheduler

BUILTIN_ALGORITHMS = {
    RoundRobinScheduler.name: RoundRobinScheduler,
    StrictCoScheduler.name: StrictCoScheduler,
    RelaxedCoScheduler.name: RelaxedCoScheduler,
    BalanceScheduler.name: BalanceScheduler,
    CreditScheduler.name: CreditScheduler,
    SEDFScheduler.name: SEDFScheduler,
    HybridScheduler.name: HybridScheduler,
    FifoScheduler.name: FifoScheduler,
    HealthAwareScheduler.name: HealthAwareScheduler,
}

__all__ = [
    "SchedulingAlgorithm",
    "FunctionScheduler",
    "VCPUHostView",
    "PCPUView",
    "VCPUStatus",
    "PCPUState",
    "RoundRobinScheduler",
    "StrictCoScheduler",
    "RelaxedCoScheduler",
    "BalanceScheduler",
    "CreditScheduler",
    "SEDFScheduler",
    "HybridScheduler",
    "FifoScheduler",
    "HealthAwareScheduler",
    "SchedulerHarness",
    "BUILTIN_ALGORITHMS",
    "validate_decisions",
]
