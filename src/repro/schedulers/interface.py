"""The pluggable VCPU-scheduling interface.

The paper's framework exports a C function-call interface from the
``Scheduling_Func`` output gate::

    bool schedule(VCPU_host_external* vcpus, int num_vcpu,
                  PCPU_external* pcpus, int num_pcpu, long timestamp)

where ``vcpus`` / ``pcpus`` are in/out arrays reflecting the state of
every VCPU place and PCPU before and after the call.  This module is
the Python equivalent: :class:`VCPUHostView` and :class:`PCPUView` are
the mutable array elements, and :class:`SchedulingAlgorithm.schedule`
has the same signature and in/out contract.  A user plugs in a new
algorithm by subclassing :class:`SchedulingAlgorithm` (or wrapping a
bare function with :class:`FunctionScheduler`) — no knowledge of SANs
required, exactly as the paper intends.

Decision protocol (per hypervisor clock tick):

* the framework first decrements timeslices and force-relinquishes
  expired VCPUs (that happens *before* the call, in the scheduler
  model's clock gate, as in the paper);
* the algorithm then inspects the views and sets, on any view,
  ``schedule_out = True`` (relinquish the PCPU now) and/or
  ``schedule_in = True`` (assign a PCPU now, optionally choosing
  ``pcpu`` and ``timeslice``);
* the framework validates and applies the decisions; inconsistent
  decisions raise :class:`repro.errors.SchedulingError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import SchedulingError


class VCPUStatus:
    """VCPU states, as defined in the paper (Section III.B.2).

    READY and BUSY are the ACTIVE states (a PCPU is assigned); INACTIVE
    means no PCPU — possibly mid-workload (``remaining_load > 0``) or
    holding a synchronization point.
    """

    READY = "READY"
    BUSY = "BUSY"
    INACTIVE = "INACTIVE"

    ALL = (READY, BUSY, INACTIVE)
    ACTIVE = (READY, BUSY)


class PCPUState:
    """PCPU states, as in the paper's PCPU array.

    ``FAILED`` extends the paper for the dependability extension: a
    failed PCPU is out of service (never idle, never assignable) until
    its repair completes.
    """

    IDLE = "IDLE"
    ASSIGNED = "ASSIGNED"
    FAILED = "FAILED"


@dataclass
class VCPUHostView:
    """One element of the ``vcpus`` in/out array (``VCPU_host_external``).

    Input fields (framework -> algorithm):
        vcpu_id: global index into the array.
        vm_id: which VM this VCPU belongs to.
        vcpu_index: position within its VM (0-based).
        status: one of :class:`VCPUStatus`.
        remaining_load: ticks of work left on the current workload.
        sync_point: 1 if the current workload carries a barrier.
        last_scheduled_in: timestamp of the most recent PCPU assignment.
        timeslice: remaining timeslice ticks (0 when INACTIVE).
        pcpu: id of the assigned PCPU, or None.

    Output fields (algorithm -> framework):
        schedule_in: request a PCPU assignment this tick.
        schedule_out: relinquish the PCPU this tick.
        next_timeslice: timeslice granted with schedule_in (None = the
            framework default).
        next_pcpu: specific PCPU requested with schedule_in (None = any
            free one).
    """

    vcpu_id: int
    vm_id: int
    vcpu_index: int
    status: str = VCPUStatus.INACTIVE
    remaining_load: int = 0
    sync_point: int = 0
    last_scheduled_in: float = -1.0
    timeslice: int = 0
    pcpu: Optional[int] = None
    schedule_in: bool = field(default=False)
    schedule_out: bool = field(default=False)
    next_timeslice: Optional[int] = None
    next_pcpu: Optional[int] = None

    @property
    def active(self) -> bool:
        """True while the VCPU holds a PCPU (READY or BUSY)."""
        return self.status in VCPUStatus.ACTIVE


@dataclass
class PCPUView:
    """One element of the ``pcpus`` in/out array (``PCPU_external``).

    ``health`` and ``capacity`` carry the degradation extension's
    scheduler-visible signals: health 0 is pristine and ``capacity`` is
    the fraction of clock ticks the core currently delivers to its
    guest (1.0 on an undegraded host, so algorithms written against the
    paper's idealized model keep working unchanged).
    """

    pcpu_id: int
    state: str = PCPUState.IDLE
    vcpu: Optional[int] = None
    health: int = 0
    capacity: float = 1.0

    @property
    def idle(self) -> bool:
        return self.state == PCPUState.IDLE

    @property
    def degraded(self) -> bool:
        """True when the core is delivering less than full capacity."""
        return self.health > 0


class SchedulingAlgorithm:
    """Base class for pluggable VCPU scheduling algorithms.

    Subclasses implement :meth:`schedule` and may keep internal state
    across ticks (run queues, skew counters, ...); :meth:`reset` must
    clear that state so one algorithm instance can serve many
    replications.

    Attributes:
        name: registry key; subclasses override.
        timeslice: default timeslice (ticks) granted on schedule_in when
            the algorithm does not set ``next_timeslice``.
        tick_skip_safe: a subclass sets this True to certify that its
            ``schedule()`` makes no decision and mutates no internal
            state on a tick where every PCPU is ASSIGNED and every
            assigned VCPU is BUSY — the precondition under which the
            compiled engine may coalesce clock ticks (see
            :class:`repro.vmm.vcpu_scheduler.ClockFastForward`).
            Algorithms that do per-tick bookkeeping regardless of the
            marking (e.g. deadline rollover, skew accounting) must
            leave it False; wrappers that do not re-declare the flag
            (guard, chaos) disable fast-forward automatically.
    """

    name = "abstract"
    tick_skip_safe = False

    def __init__(self, timeslice: int = 30) -> None:
        if timeslice < 1:
            raise SchedulingError(f"timeslice must be >= 1, got {timeslice}")
        self.timeslice = int(timeslice)
        # Monotone dispatch counter per VCPU.  When several timeslices
        # expire in the same tick, re-enqueueing in *dispatch* order (not
        # VCPU-id order) is what keeps a round-robin rotation fair — see
        # requeue_order().
        self._dispatch_order: Dict[int, int] = {}
        self._dispatch_counter = 0

    def schedule(
        self,
        vcpus: List[VCPUHostView],
        num_vcpu: int,
        pcpus: List[PCPUView],
        num_pcpu: int,
        timestamp: float,
    ) -> bool:
        """Make this tick's scheduling decision by mutating the views.

        Returns:
            True if any decision was made (mirrors the C interface's
            bool return; the framework only uses it for diagnostics).
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Clear internal state between replications.

        Subclasses with their own state must call ``super().reset()``.
        """
        self._dispatch_order.clear()
        self._dispatch_counter = 0

    # -- shared helpers for concrete algorithms ---------------------------

    @staticmethod
    def free_pcpu_count(pcpus: List[PCPUView]) -> int:
        """Number of currently idle PCPUs."""
        return sum(1 for p in pcpus if p.idle)

    @staticmethod
    def by_vm(vcpus: List[VCPUHostView]) -> Dict[int, List[VCPUHostView]]:
        """Group the VCPU views by VM id, preserving array order."""
        groups: Dict[int, List[VCPUHostView]] = {}
        for view in vcpus:
            groups.setdefault(view.vm_id, []).append(view)
        return groups

    def start(self, view: VCPUHostView, timeslice: Optional[int] = None,
              pcpu: Optional[int] = None) -> None:
        """Mark a view for schedule-in with the given (or default) timeslice."""
        view.schedule_in = True
        view.next_timeslice = timeslice if timeslice is not None else self.timeslice
        view.next_pcpu = pcpu
        self._dispatch_order[view.vcpu_id] = self._dispatch_counter
        self._dispatch_counter += 1

    @staticmethod
    def stop(view: VCPUHostView) -> None:
        """Mark a view for schedule-out."""
        view.schedule_out = True

    def requeue_order(self, views: List[VCPUHostView]) -> List[VCPUHostView]:
        """Sort views for (re-)enqueueing: earliest-dispatched first.

        Never-dispatched VCPUs sort before any dispatched one (they have
        waited "forever"), in id order among themselves.
        """
        return sorted(
            views,
            key=lambda v: (self._dispatch_order.get(v.vcpu_id, -1), v.vcpu_id),
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(timeslice={self.timeslice})"


def validate_decisions(
    vcpus: List[VCPUHostView],
    pcpus: List[PCPUView],
    num_pcpu: int,
    default_timeslice: int = 1,
    algorithm_name: str = "algorithm",
) -> None:
    """Check one tick's decisions without applying them.

    Mirrors the ``Scheduling_Func`` gate's apply-time semantics exactly
    (outs applied first, then ins in array order against the evolving
    PCPU states), so a decision set that passes here is guaranteed to
    apply cleanly.  The resilience layer's decision guard runs this
    *before* the framework mutates any model state, which is what lets
    it discard a faulty tick instead of corrupting the replication.

    Raises:
        SchedulingError: naming the first inconsistent decision —
            schedule_in+schedule_out conflicts, schedule_out without a
            PCPU, schedule_in while already holding one, out-of-range
            or non-idle (including FAILED) PCPU requests, double
            assignment of one PCPU, over-commitment, or a timeslice
            below 1.
    """
    states = [p.state for p in pcpus]
    for view in vcpus:
        if view.schedule_in and view.schedule_out:
            raise SchedulingError(
                f"{algorithm_name}: VCPU {view.vcpu_id} marked for both "
                "schedule_in and schedule_out in one tick"
            )
    for view in vcpus:
        if not view.schedule_out:
            continue
        if view.pcpu is None:
            raise SchedulingError(
                f"{algorithm_name}: schedule_out for VCPU {view.vcpu_id}, "
                "which holds no PCPU"
            )
        states[view.pcpu] = PCPUState.IDLE
    for view in vcpus:
        if not view.schedule_in:
            continue
        if view.pcpu is not None:
            raise SchedulingError(
                f"{algorithm_name}: schedule_in for VCPU {view.vcpu_id}, "
                "which already holds a PCPU"
            )
        target = view.next_pcpu
        if target is None:
            target = next(
                (i for i, state in enumerate(states) if state == PCPUState.IDLE),
                None,
            )
            if target is None:
                raise SchedulingError(
                    f"{algorithm_name}: schedule_in for VCPU {view.vcpu_id} "
                    "but no PCPU is free (over-commitment in one tick)"
                )
        else:
            if not 0 <= target < num_pcpu:
                raise SchedulingError(
                    f"{algorithm_name}: VCPU {view.vcpu_id} requested PCPU "
                    f"{target}, outside 0..{num_pcpu - 1}"
                )
            if states[target] == PCPUState.FAILED:
                raise SchedulingError(
                    f"{algorithm_name}: VCPU {view.vcpu_id} requested PCPU "
                    f"{target}, which is FAILED"
                )
            if states[target] != PCPUState.IDLE:
                raise SchedulingError(
                    f"{algorithm_name}: VCPU {view.vcpu_id} requested PCPU "
                    f"{target}, which is not idle"
                )
        timeslice = (
            view.next_timeslice
            if view.next_timeslice is not None
            else default_timeslice
        )
        if timeslice < 1:
            raise SchedulingError(
                f"{algorithm_name}: VCPU {view.vcpu_id} granted a timeslice "
                f"of {timeslice}; must be >= 1"
            )
        states[target] = PCPUState.ASSIGNED


ScheduleFunction = Callable[
    [List[VCPUHostView], int, List[PCPUView], int, float], bool
]


class FunctionScheduler(SchedulingAlgorithm):
    """Adapts a bare function to the algorithm interface.

    This is the closest analogue of the paper's "write a C function"
    workflow: a user writes one function with the standard signature and
    plugs it in without subclassing anything.

    Example:
        >>> def greedy(vcpus, num_vcpu, pcpus, num_pcpu, timestamp):
        ...     free = sum(1 for p in pcpus if p.idle)
        ...     for v in vcpus:
        ...         if free == 0:
        ...             break
        ...         if not v.active:
        ...             v.schedule_in, v.next_timeslice = True, 10
        ...             free -= 1
        ...     return True
        >>> algo = FunctionScheduler("greedy", greedy)
    """

    def __init__(self, name: str, fn: ScheduleFunction, timeslice: int = 30) -> None:
        super().__init__(timeslice)
        if not callable(fn):
            raise SchedulingError("FunctionScheduler needs a callable")
        self.name = name
        self._fn = fn

    def schedule(self, vcpus, num_vcpu, pcpus, num_pcpu, timestamp) -> bool:
        return bool(self._fn(vcpus, num_vcpu, pcpus, num_pcpu, timestamp))
