"""FIFO run-to-completion scheduling.

The simplest possible baseline for ablations: VCPUs are dispatched in
arrival order and keep their PCPU until they finish the current
workload (no timeslice preemption).  A dispatched VCPU that goes READY
(its load completed) relinquishes the PCPU on the next tick.

This scheduler exists to anchor the scheduler-zoo ablation: it shows
what happens with *no* multiplexing policy at all — extreme unfairness
under contention — which makes the fairness gains of RRS and the
latency gains of co-scheduling easy to see.
"""

from __future__ import annotations

from collections import deque
from typing import List

from .interface import PCPUView, SchedulingAlgorithm, VCPUHostView, VCPUStatus


class FifoScheduler(SchedulingAlgorithm):
    """Arrival-order dispatch, release on workload completion."""

    name = "fifo"
    # All PCPUs assigned + every assigned VCPU BUSY: no READY active to
    # release, nothing newly inactive, zero free PCPUs — a value-level
    # no-op (the queue is rebuilt but unchanged).
    tick_skip_safe = True

    # Effectively "no preemption": the granted timeslice exceeds any
    # realistic simulation length, so only the READY-release below ever
    # takes a PCPU away.
    RUN_TO_COMPLETION = 2**31

    def __init__(self, timeslice: int = 30) -> None:
        # The timeslice argument is accepted for interface uniformity but
        # unused: FIFO is deliberately non-preemptive.
        super().__init__(timeslice)
        self._queue: deque = deque()
        self._queued: set = set()

    def reset(self) -> None:
        super().reset()
        self._queue.clear()
        self._queued.clear()

    def schedule(
        self,
        vcpus: List[VCPUHostView],
        num_vcpu: int,
        pcpus: List[PCPUView],
        num_pcpu: int,
        timestamp: float,
    ) -> bool:
        decided = False

        # Release PCPUs held by VCPUs that finished their load.  (A READY
        # VCPU holds no work; under FIFO it yields instead of idling.)
        for view in vcpus:
            if view.active and view.status == VCPUStatus.READY:
                self.stop(view)
                decided = True

        newly_inactive = [
            v
            for v in vcpus
            if (not v.active or v.schedule_out) and v.vcpu_id not in self._queued
        ]
        for view in self.requeue_order(newly_inactive):
            self._queue.append(view.vcpu_id)
            self._queued.add(view.vcpu_id)

        stopping = sum(1 for v in vcpus if v.schedule_out and v.active)
        free = self.free_pcpu_count(pcpus) + stopping
        by_id = {view.vcpu_id: view for view in vcpus}
        skipped: List[int] = []
        while free > 0 and self._queue:
            vcpu_id = self._queue.popleft()
            view = by_id[vcpu_id]
            if view.active and not view.schedule_out:
                self._queued.discard(vcpu_id)
                continue
            if view.schedule_out:
                # Released this tick; it may not restart in the same tick.
                skipped.append(vcpu_id)
                continue
            self._queued.discard(vcpu_id)
            self.start(view, timeslice=self.RUN_TO_COMPLETION)
            free -= 1
            decided = True
        self._queue = deque(skipped + list(self._queue))
        return decided
