"""Balance scheduling (Sukwong & Kim, EuroSys 2011 — [1] in the paper).

Sukwong & Kim observed that synchronization latency explodes when
sibling VCPUs are *stacked* in the run queue of the same physical CPU:
a lock holder and a lock waiter then serialize behind one another.
Balance scheduling keeps per-PCPU run queues and places sibling VCPUs
on **distinct** PCPUs (when there are at least as many PCPUs as the
VM's VCPUs), without forcing co-start/co-stop — a middle ground
between plain round-robin and co-scheduling.

This is a related-work extension of the reproduction: the paper
discusses the algorithm (§I, §II.B) but does not evaluate it; the
scheduler-zoo ablation bench does.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

from .interface import PCPUView, SchedulingAlgorithm, VCPUHostView


class BalanceScheduler(SchedulingAlgorithm):
    """Per-PCPU run queues with sibling anti-stacking placement."""

    name = "balance"
    # Per-PCPU queues only change when a VCPU goes inactive or a PCPU
    # idles; a fully assigned, fully busy host offers neither.
    tick_skip_safe = True

    def __init__(self, timeslice: int = 30) -> None:
        super().__init__(timeslice)
        self._runqueues: Dict[int, deque] = {}
        self._queued: set = set()

    def reset(self) -> None:
        super().reset()
        self._runqueues.clear()
        self._queued.clear()

    def _pick_queue(
        self,
        view: VCPUHostView,
        vcpus: List[VCPUHostView],
        placement: Dict[int, int],
        num_pcpu: int,
    ) -> int:
        """Choose a run queue avoiding the VCPU's siblings, then shortest.

        ``placement`` maps vcpu_id -> pcpu_id for VCPUs that are running
        or already enqueued, so anti-stacking sees the full picture.
        """
        sibling_pcpus = {
            placement[v.vcpu_id]
            for v in vcpus
            if v.vm_id == view.vm_id and v.vcpu_id != view.vcpu_id and v.vcpu_id in placement
        }
        candidates = [p for p in range(num_pcpu) if p not in sibling_pcpus]
        if not candidates:  # more siblings than PCPUs: stacking unavoidable
            candidates = list(range(num_pcpu))
        return min(candidates, key=lambda p: (len(self._runqueues[p]), p))

    def schedule(
        self,
        vcpus: List[VCPUHostView],
        num_vcpu: int,
        pcpus: List[PCPUView],
        num_pcpu: int,
        timestamp: float,
    ) -> bool:
        for pcpu in range(num_pcpu):
            self._runqueues.setdefault(pcpu, deque())

        # Current placement: running VCPUs pin their PCPU; queued VCPUs
        # claim the queue they wait in.
        placement: Dict[int, int] = {
            v.vcpu_id: v.pcpu for v in vcpus if v.active and v.pcpu is not None
        }
        for pcpu, queue in self._runqueues.items():
            for vcpu_id in queue:
                placement[vcpu_id] = pcpu

        # Enqueue newly inactive VCPUs on a sibling-free (then shortest)
        # queue, in dispatch order for rotation fairness.
        newly_inactive = [
            v for v in vcpus if not v.active and v.vcpu_id not in self._queued
        ]
        for view in self.requeue_order(newly_inactive):
            pcpu = self._pick_queue(view, vcpus, placement, num_pcpu)
            self._runqueues[pcpu].append(view.vcpu_id)
            self._queued.add(view.vcpu_id)
            placement[view.vcpu_id] = pcpu

        # Each idle PCPU takes the head of its own run queue.
        decided = False
        by_id = {view.vcpu_id: view for view in vcpus}
        for pcpu_view in pcpus:
            if not pcpu_view.idle:
                continue
            queue = self._runqueues[pcpu_view.pcpu_id]
            while queue:
                vcpu_id = queue.popleft()
                self._queued.discard(vcpu_id)
                view = by_id[vcpu_id]
                if view.active:
                    continue
                self.start(view, pcpu=pcpu_view.pcpu_id)
                decided = True
                break
        return decided
