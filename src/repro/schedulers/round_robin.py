"""Round-Robin Scheduling (RRS).

The "naïve, yet popular" baseline of the paper (§II.B): a single global
run queue of VCPUs; whenever a PCPU frees up, the VCPU that has waited
longest gets it for one timeslice.  RRS is per-VCPU and completely
unaware of VM sibling relationships, which is exactly what exposes the
synchronization-latency problem the co-schedulers address: a VCPU
preempted mid-critical-section (here: mid-workload before a barrier)
stalls its whole VM while its siblings spin READY.

RRS's virtue — and the paper's Figure 8 finding — is fairness: every
VCPU receives the same share of PCPU time regardless of VM shape or
resource level.
"""

from __future__ import annotations

from collections import deque
from typing import List

from .interface import PCPUView, SchedulingAlgorithm, VCPUHostView


class RoundRobinScheduler(SchedulingAlgorithm):
    """Global-queue round-robin over individual VCPUs.

    Internal state: a FIFO of waiting VCPU ids.  A VCPU enters the tail
    when it loses its PCPU (timeslice expiry) and leaves from the head
    when a PCPU frees up.
    """

    name = "rrs"
    # All PCPUs assigned + every assigned VCPU BUSY: nothing is newly
    # inactive (inactive VCPUs are already queued) and no PCPU is free,
    # so schedule() neither decides nor mutates the queue.
    tick_skip_safe = True

    def __init__(self, timeslice: int = 30) -> None:
        super().__init__(timeslice)
        self._queue: deque = deque()
        self._queued: set = set()

    def reset(self) -> None:
        super().reset()
        self._queue.clear()
        self._queued.clear()

    def schedule(
        self,
        vcpus: List[VCPUHostView],
        num_vcpu: int,
        pcpus: List[PCPUView],
        num_pcpu: int,
        timestamp: float,
    ) -> bool:
        # Enqueue every inactive VCPU we are not already tracking.  On the
        # first call this admits all VCPUs in id order; afterwards it picks
        # up the ones the framework just scheduled out on timeslice expiry,
        # in dispatch order so simultaneous expiries rotate fairly.
        newly_inactive = [
            v for v in vcpus if not v.active and v.vcpu_id not in self._queued
        ]
        for view in self.requeue_order(newly_inactive):
            self._queue.append(view.vcpu_id)
            self._queued.add(view.vcpu_id)

        free = self.free_pcpu_count(pcpus)
        decided = False
        by_id = {view.vcpu_id: view for view in vcpus}
        while free > 0 and self._queue:
            vcpu_id = self._queue.popleft()
            self._queued.discard(vcpu_id)
            view = by_id[vcpu_id]
            if view.active:  # defensive: stale queue entry
                continue
            self.start(view)
            free -= 1
            decided = True
        return decided
