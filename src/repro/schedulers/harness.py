"""A lightweight harness for exercising scheduling algorithms in isolation.

Users writing a new algorithm (the paper's "idea-based" evaluation
workflow) often want to poke it tick by tick without assembling the
full SAN system.  :class:`SchedulerHarness` is a miniature hypervisor:
it owns the view arrays, performs the same timeslice accounting and
decision validation as the real ``Scheduling_Func`` gate, and exposes
counters for quick fairness/utilization checks.

It deliberately has **no workload model** — drive loads by hand with
:meth:`set_load` — so tests can construct exact scenarios (e.g. "the
lock holder gets preempted mid-critical-section").

Example:
    >>> from repro.schedulers import RoundRobinScheduler
    >>> h = SchedulerHarness(RoundRobinScheduler(timeslice=2), topology=[1, 1], num_pcpus=1)
    >>> h.run(4)
    >>> h.active_time[0] == h.active_time[1]
    True
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import SchedulingError
from .interface import (
    PCPUState,
    PCPUView,
    SchedulingAlgorithm,
    VCPUHostView,
    VCPUStatus,
)


class SchedulerHarness:
    """Drives one algorithm against synthetic VCPU/PCPU state.

    Args:
        algorithm: the algorithm under test.
        topology: VCPUs per VM (as for the real system builder).
        num_pcpus: physical CPU count.

    Attributes:
        now: current tick (starts at 0; :meth:`tick` advances it first).
        active_time: per-VCPU ticks spent holding a PCPU.
        busy_time: per-VCPU ticks spent processing (load > 0 and active).
        pcpu_busy_time: per-PCPU ticks spent assigned.
    """

    def __init__(
        self,
        algorithm: SchedulingAlgorithm,
        topology: Sequence[int],
        num_pcpus: int,
    ) -> None:
        if num_pcpus < 1:
            raise SchedulingError(f"num_pcpus must be >= 1, got {num_pcpus}")
        if not topology or any(n < 1 for n in topology):
            raise SchedulingError(f"bad topology {topology!r}")
        self.algorithm = algorithm
        self.num_pcpus = int(num_pcpus)
        self.now = 0.0

        self.views: List[VCPUHostView] = []
        for vm_id, count in enumerate(topology):
            for vcpu_index in range(count):
                self.views.append(
                    VCPUHostView(
                        vcpu_id=len(self.views),
                        vm_id=vm_id,
                        vcpu_index=vcpu_index,
                    )
                )
        self.pcpus: List[PCPUView] = [PCPUView(pcpu_id=i) for i in range(num_pcpus)]
        self._loads: Dict[int, int] = {v.vcpu_id: 0 for v in self.views}
        self.active_time: Dict[int, int] = {v.vcpu_id: 0 for v in self.views}
        self.busy_time: Dict[int, int] = {v.vcpu_id: 0 for v in self.views}
        self.pcpu_busy_time: Dict[int, int] = {p.pcpu_id: 0 for p in self.pcpus}

    # -- scenario control ---------------------------------------------------

    def set_load(self, vcpu_id: int, load: int) -> None:
        """Give a VCPU ``load`` ticks of pending work."""
        if load < 0:
            raise SchedulingError(f"load must be >= 0, got {load}")
        self._loads[vcpu_id] = int(load)
        self._refresh_status(self.views[vcpu_id])

    def load_of(self, vcpu_id: int) -> int:
        """Remaining work of one VCPU."""
        return self._loads[vcpu_id]

    def saturate(self, load: int = 10**9) -> None:
        """Give every VCPU effectively infinite work (pure-contention runs)."""
        for view in self.views:
            self.set_load(view.vcpu_id, load)

    # -- the tick loop -------------------------------------------------------

    def tick(self) -> None:
        """Advance one time unit: account, schedule, apply, process.

        Unlike the SAN model (where a decision made at tick *t* takes
        effect from tick *t+1*), the harness applies decisions at the
        start of the tick, so a VCPU admitted on tick 1 accrues active
        time from tick 1 — which makes unit-test arithmetic exact.
        """
        self.now += 1.0

        # 1. Timeslice accounting (same rule as the SAN scheduler model).
        for view in self.views:
            if view.pcpu is None:
                continue
            view.timeslice -= 1
            if view.timeslice <= 0:
                self._release(view)

        # 2. The algorithm's decision.
        for view in self.views:
            view.schedule_in = False
            view.schedule_out = False
            view.next_timeslice = None
            view.next_pcpu = None
        self.algorithm.schedule(
            self.views, len(self.views), self.pcpus, self.num_pcpus, self.now
        )

        # 3. Validate and apply: outs first, then ins.
        for view in self.views:
            if view.schedule_in and view.schedule_out:
                raise SchedulingError(
                    f"VCPU {view.vcpu_id}: schedule_in and schedule_out in one tick"
                )
        for view in self.views:
            if view.schedule_out:
                if view.pcpu is None:
                    raise SchedulingError(
                        f"VCPU {view.vcpu_id}: schedule_out without a PCPU"
                    )
                self._release(view)
        for view in self.views:
            if view.schedule_in:
                self._admit(view)

        # 4. Processing: every active VCPU with work burns one tick.
        for view in self.views:
            if view.pcpu is not None:
                self.active_time[view.vcpu_id] += 1
                self.pcpu_busy_time[view.pcpu] += 1
                if self._loads[view.vcpu_id] > 0:
                    self._loads[view.vcpu_id] -= 1
                    self.busy_time[view.vcpu_id] += 1
            self._refresh_status(view)

    def run(self, ticks: int, saturated: bool = True) -> None:
        """Run ``ticks`` time units; by default keeps all VCPUs loaded."""
        if saturated:
            self.saturate()
        for _ in range(ticks):
            self.tick()

    # -- internals -----------------------------------------------------------

    def _refresh_status(self, view: VCPUHostView) -> None:
        view.remaining_load = self._loads[view.vcpu_id]
        if view.pcpu is None:
            view.status = VCPUStatus.INACTIVE
        elif view.remaining_load > 0:
            view.status = VCPUStatus.BUSY
        else:
            view.status = VCPUStatus.READY

    def _release(self, view: VCPUHostView) -> None:
        pcpu = self.pcpus[view.pcpu]
        pcpu.state = PCPUState.IDLE
        pcpu.vcpu = None
        view.pcpu = None
        view.timeslice = 0
        self._refresh_status(view)

    def _admit(self, view: VCPUHostView) -> None:
        if view.pcpu is not None:
            raise SchedulingError(
                f"VCPU {view.vcpu_id}: schedule_in while already on PCPU {view.pcpu}"
            )
        pcpu_index: Optional[int] = view.next_pcpu
        if pcpu_index is None:
            pcpu_index = next(
                (p.pcpu_id for p in self.pcpus if p.state == PCPUState.IDLE), None
            )
            if pcpu_index is None:
                raise SchedulingError(
                    f"VCPU {view.vcpu_id}: schedule_in but no PCPU is free"
                )
        else:
            if not 0 <= pcpu_index < self.num_pcpus:
                raise SchedulingError(
                    f"VCPU {view.vcpu_id}: requested PCPU {pcpu_index} out of range"
                )
            if self.pcpus[pcpu_index].state != PCPUState.IDLE:
                raise SchedulingError(
                    f"VCPU {view.vcpu_id}: requested PCPU {pcpu_index} is busy"
                )
        timeslice = (
            view.next_timeslice
            if view.next_timeslice is not None
            else self.algorithm.timeslice
        )
        if timeslice < 1:
            raise SchedulingError(
                f"VCPU {view.vcpu_id}: timeslice {timeslice} must be >= 1"
            )
        pcpu = self.pcpus[pcpu_index]
        pcpu.state = PCPUState.ASSIGNED
        pcpu.vcpu = view.vcpu_id
        view.pcpu = pcpu_index
        view.timeslice = timeslice
        view.last_scheduled_in = self.now
        self._refresh_status(view)

    # -- observation -----------------------------------------------------------

    def active_ids(self) -> List[int]:
        """VCPU ids currently holding a PCPU."""
        return [v.vcpu_id for v in self.views if v.pcpu is not None]

    def assignment(self) -> Dict[int, int]:
        """Mapping vcpu_id -> pcpu_id for active VCPUs."""
        return {v.vcpu_id: v.pcpu for v in self.views if v.pcpu is not None}

    def availability(self, vcpu_id: int) -> float:
        """Active-time fraction of one VCPU so far."""
        if self.now == 0:
            return 0.0
        return self.active_time[vcpu_id] / self.now

    def pcpu_utilization(self) -> float:
        """Mean assigned fraction over all PCPUs so far."""
        if self.now == 0:
            return 0.0
        total = sum(self.pcpu_busy_time.values())
        return total / (self.now * self.num_pcpus)
