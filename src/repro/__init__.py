"""repro — a simulation framework to evaluate VCPU scheduling algorithms.

A from-scratch reproduction of Pham, Li, Estrada, Kalbarczyk, Iyer,
"A Simulation Framework to Evaluate Virtual CPU Scheduling Algorithms"
(IEEE ICDCS Workshops 2013), including the Stochastic Activity Network
engine the paper delegated to the closed-source Mobius tool.

Layers (bottom-up):

* :mod:`repro.des` — discrete-event kernel (events, clock, streams,
  distributions);
* :mod:`repro.san` — the SAN formalism: places, activities, gates,
  Join/Replicate, simulator, reward variables;
* :mod:`repro.vmm` — the paper's virtualization sub-models (Figures
  2–7) built on the SAN engine;
* :mod:`repro.schedulers` — the pluggable algorithm interface plus
  RRS / SCS / RCS and extensions;
* :mod:`repro.workloads`, :mod:`repro.metrics`, :mod:`repro.analysis`
  — workload characterization, reward definitions, statistics;
* :mod:`repro.resilience` — parallel/fault-tolerant experiment
  execution: timeouts, retry/reseed, checkpoint/resume, the scheduler
  decision guard, and chaos injection;
* :mod:`repro.core` — the public facade: specs, experiments, results;
* :mod:`repro.service` — the long-lived JSON/HTTP job server over a
  shared sweep pool and persistent result cache.
"""

from . import (
    analysis,
    core,
    des,
    metrics,
    paper,
    resilience,
    san,
    schedulers,
    service,
    vmm,
    workloads,
)
from .core import (
    SystemSpec,
    VMSpec,
    WorkloadSpec,
    run_experiment,
    run_sweep,
    simulate_once,
)
from .resilience import ChaosSpec, GuardPolicy, ReplicationFailure, ResilienceConfig

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "core",
    "paper",
    "des",
    "san",
    "vmm",
    "schedulers",
    "workloads",
    "metrics",
    "resilience",
    "service",
    "SystemSpec",
    "VMSpec",
    "WorkloadSpec",
    "simulate_once",
    "run_experiment",
    "run_sweep",
    "ResilienceConfig",
    "GuardPolicy",
    "ChaosSpec",
    "ReplicationFailure",
    "__version__",
]
