"""The Virtual System composed model (paper Figure 7 and Table 2).

A Virtual System joins one VCPU Scheduler with any number of Virtual
Machine composed models.  The join places reproduce the paper's
Table 2 — per VM *i* and VCPU *k* (mapped to global scheduler slot
*g*)::

    Schedule_In<i>_<k>   VM_<i> -> VCPU<k>.Schedule_In
                         VCPU_Scheduler -> VCPU<g>_Schedule_In
    Schedule_Out<i>_<k>  VM_<i> -> VCPU<k>.Schedule_Out
                         VCPU_Scheduler -> VCPU<g>_Schedule_Out

plus two channels the paper's figures imply but its tables elide: the
Clock tick fan-out (``Tick<i>_<k>``) that lets the hypervisor Clock
trigger each VCPU's ``Processing_load`` gate, and the VCPU slot
sharing (``Slot<i>_<k>``) that gives the scheduling function the VCPU
states its C interface promises ("passes the states of the VCPUs and
PCPUs").
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..des.random_streams import StreamFactory
from ..errors import ModelError
from ..resilience.degradation import (
    DegradationModel,
    HVOverheadModel,
    MaintenancePolicy,
)
from ..san import ComposedModel, ExtendedPlace, SharedVariable, join
from ..schedulers.interface import SchedulingAlgorithm
from ..workloads.generators import WorkloadModel
from .job_scheduler import DEFAULT_NUM_SLOTS as DEFAULT_VM_SLOTS
from .vcpu_scheduler import (
    DEFAULT_NUM_SLOTS as DEFAULT_SCHEDULER_SLOTS,
    PCPUFailureModel,
    SCHEDULER_NAME,
    build_vcpu_scheduler,
)
from .virtual_machine import build_vm_model

SYSTEM_NAME = "Virtual_System"


def vm_model_name(num_vcpus: int, position: int) -> str:
    """The paper's VM naming convention: ``VM_2VCPU_1`` etc."""
    return f"VM_{num_vcpus}VCPU_{position}"


def build_virtual_system(
    vm_configs: Sequence[Tuple[int, WorkloadModel]],
    algorithm: SchedulingAlgorithm,
    num_pcpus: int,
    streams: Optional[StreamFactory] = None,
    vm_slots: int = DEFAULT_VM_SLOTS,
    scheduler_slots: int = DEFAULT_SCHEDULER_SLOTS,
    name: str = SYSTEM_NAME,
    failures: Optional[PCPUFailureModel] = None,
    degradation: Optional[DegradationModel] = None,
    maintenance: Optional[MaintenancePolicy] = None,
    hv_overhead: Optional[HVOverheadModel] = None,
) -> ComposedModel:
    """Assemble a complete virtualization system.

    Args:
        vm_configs: one ``(num_vcpus, workload_model)`` pair per VM, or
            ``(num_vcpus, workload_model, dispatch_policy)`` triples to
            override the job scheduler's dispatch policy.
        algorithm: the plugged scheduling algorithm (a fresh instance —
            its internal run queues must not carry over between runs).
        num_pcpus: number of physical CPUs.
        streams: random streams for this replication (default: seed 0,
            replication 0).
        vm_slots: static job-scheduler slots per VM (paper: 8).
        scheduler_slots: static hypervisor VCPU slots (paper: 16).
        name: composed model name.

    Returns:
        A :class:`repro.san.ComposedModel` carrying convenience
        metadata: ``slot_map`` (global slot -> (vm_id, vcpu_index)),
        ``scheduler`` (the scheduler sub-model), ``vm_names``,
        ``topology``, ``num_pcpus``, and ``algorithm``.
    """
    if not vm_configs:
        raise ModelError("a virtual system needs at least one VM")
    streams = streams if streams is not None else StreamFactory()

    normalized = [
        config if len(config) == 3 else (config[0], config[1], "round_robin")
        for config in vm_configs
    ]
    topology = [num_vcpus for num_vcpus, _, _ in normalized]
    scheduler = build_vcpu_scheduler(
        algorithm,
        num_pcpus,
        topology,
        num_slots=scheduler_slots,
        failures=failures,
        degradation=degradation,
        maintenance=maintenance,
        hv_overhead=hv_overhead,
        streams=streams,
    )

    submodels = {SCHEDULER_NAME: scheduler}
    vm_names: List[str] = []
    # (stream key, rng) pairs captured by builder closures — the VM
    # generators below plus the scheduler's degradation case streams.
    # Cross-replication reuse re-arms them via StreamFactory.reseed
    # (same objects, new seeds); this list lets tests verify the
    # captured objects really are the factory's memoized streams.
    stream_bindings: List[Tuple[str, object]] = list(scheduler.stream_bindings)
    for position, (num_vcpus, workload_model, dispatch) in enumerate(
        normalized, start=1
    ):
        vm_name = vm_model_name(num_vcpus, position)
        if vm_name in submodels:
            raise ModelError(f"duplicate VM model name {vm_name!r}")
        rng = streams.stream(f"{vm_name}.Workload_Generator")
        dispatch_rng = streams.stream(f"{vm_name}.VM_Job_Scheduler")
        stream_bindings.append((f"{vm_name}.Workload_Generator", rng))
        stream_bindings.append((f"{vm_name}.VM_Job_Scheduler", dispatch_rng))
        submodels[vm_name] = build_vm_model(
            vm_name,
            num_vcpus,
            workload_model,
            rng,
            num_slots=vm_slots,
            dispatch=dispatch,
            dispatch_rng=dispatch_rng,
        )
        vm_names.append(vm_name)

    shared: List[SharedVariable] = []
    g = 0  # global slot index, 0-based here; place names are 1-based
    for vm_index, (num_vcpus, _, _) in enumerate(normalized, start=1):
        vm_name = vm_names[vm_index - 1]
        for k in range(1, num_vcpus + 1):
            g += 1
            shared.append(
                SharedVariable(
                    f"Schedule_In{vm_index}_{k}",
                    [
                        (vm_name, f"VCPU{k}.Schedule_In"),
                        (SCHEDULER_NAME, f"VCPU{g}_Schedule_In"),
                    ],
                )
            )
            shared.append(
                SharedVariable(
                    f"Schedule_Out{vm_index}_{k}",
                    [
                        (vm_name, f"VCPU{k}.Schedule_Out"),
                        (SCHEDULER_NAME, f"VCPU{g}_Schedule_Out"),
                    ],
                )
            )
            shared.append(
                SharedVariable(
                    f"Tick{vm_index}_{k}",
                    [
                        (vm_name, f"VCPU{k}.Tick"),
                        (SCHEDULER_NAME, f"VCPU{g}_Tick"),
                    ],
                )
            )
            shared.append(
                SharedVariable(
                    f"Slot{vm_index}_{k}",
                    [
                        (vm_name, f"VCPU{k}_slot"),
                        (SCHEDULER_NAME, f"VCPU{g}_slot"),
                    ],
                )
            )

    system = join(name, submodels, shared)
    # Convenience metadata for metrics and the core facade.
    system.slot_map = scheduler.slot_map
    system.scheduler = scheduler
    system.vm_names = vm_names
    system.topology = topology
    system.num_pcpus = num_pcpus
    system.algorithm = algorithm
    system.degradation = degradation
    system.maintenance = maintenance
    system.hv_overhead = hv_overhead
    # Forward the scheduler's tick fast-forward certificate and the
    # builder stream bindings so the compiled engine and the reuse path
    # find them on the composed model.
    system.tick_fast_forward = scheduler.tick_fast_forward
    system.stream_bindings = stream_bindings
    return system


def slot_value_place(system: ComposedModel, global_slot: int) -> ExtendedPlace:
    """The ``VCPU_slot`` extended place for a global slot (0-based)."""
    return system.place(f"{SCHEDULER_NAME}.VCPU{global_slot + 1}_slot")


def pcpus_place(system: ComposedModel) -> ExtendedPlace:
    """The hypervisor's PCPU array place."""
    return system.place(f"{SCHEDULER_NAME}.PCPUs")


def vcpu_label(system: ComposedModel, global_slot: int) -> str:
    """The paper's VCPU naming, e.g. global slot 0 -> ``"VCPU1.1"``."""
    vm_id, vcpu_index = system.slot_map[global_slot]
    return f"VCPU{vm_id + 1}.{vcpu_index + 1}"
