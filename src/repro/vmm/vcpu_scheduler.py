"""The Virtual CPU Scheduler sub-model (paper Figure 6).

The hypervisor side of the framework.  Its components, following
§III.B.5:

* **Clock** — a timed activity with a deterministic unit delay; it
  "fires at every time unit to regulate the operation of the
  scheduling function ... and computes the remaining timeslice of each
  ACTIVE VCPU".  Its output gate fans a tick token out to every
  plugged VCPU sub-model (driving their ``Processing_load``) and arms
  the ``Scheduling_Func`` activity.
* **VCPU places** — one per possible VCPU (statically 16 in the paper;
  ``num_slots`` here, defaulting to 16).  Each plugged slot carries
  the paper's fields as places: ``Schedule_In`` / ``Schedule_Out``
  (token channels joined to the VCPU model), ``Last_Scheduled_In``,
  and ``Timeslice``, plus the slot's assigned-PCPU record.  Unplugged
  slots exist but are never enabled.
* **Num_PCPUs** and the **PCPUs array** — resource configuration and
  per-PCPU ``IDLE`` / ``ASSIGNED`` state.
* **Scheduling_Func** — the output gate that builds the
  ``VCPU_host_external`` / ``PCPU_external`` view arrays, calls the
  plugged :class:`~repro.schedulers.interface.SchedulingAlgorithm`
  (the paper's user C function), validates its decisions, and applies
  them: freeing/assigning PCPUs, granting timeslices, stamping
  ``Last_Scheduled_In``, and depositing Schedule_In / Schedule_Out
  tokens for the VCPU models.

Timeslice accounting happens *before* the algorithm call, as in the
paper: an ACTIVE VCPU's timeslice decreases at each Clock firing and
the VCPU "must relinquish the PCPU" when it reaches zero — the
algorithm then sees the freed PCPUs.

**Dependability extension.**  Passing a :class:`PCPUFailureModel`
attaches an exponential fail/repair process to every PCPU (the classic
SAN dependability pattern — this framework's formalism was built for
exactly such models).  A failing ASSIGNED PCPU forcibly deschedules
its VCPU; a FAILED PCPU is never assignable; repair returns it to
IDLE.  Schedulers need no changes: they only ever dispatch onto IDLE
PCPUs.

**Degradation extension.**  Passing a
:class:`~repro.resilience.degradation.DegradationModel` replaces the
binary fail/repair process with a multi-state Markov health chain per
PCPU.  A core at health ``h`` withholds clock ticks from its hosted
VCPU so that only a ``capacity[h]`` fraction reach the guest (leaky
bucket: the withheld fraction accumulates and one whole tick is
dropped each time it reaches 1).  Terminal health feeds the same
``pcpu.fail``/``pcpu.repair`` trace machinery as the binary model.  A
:class:`~repro.resilience.degradation.MaintenancePolicy` adds repair:
PCPUs compete for a token-bounded crew pool, and a PCPU under
maintenance is out of service until its repair restores pristine
health.  An :class:`~repro.resilience.degradation.HVOverheadModel`
charges every world switch: the first ``cost`` ticks after a
schedule-in are consumed by the hypervisor instead of the guest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..des.distributions import Deterministic, Exponential
from ..des.random_streams import StreamFactory
from ..errors import ConfigurationError, ModelError, SchedulingError
from ..observability import profile as _profile
from ..observability import trace as _trace
from ..resilience.degradation import (
    DegradationModel,
    HVOverheadModel,
    MaintenancePolicy,
)
from ..san import (
    ExtendedPlace,
    InputGate,
    InstantaneousActivity,
    OutputGate,
    Place,
    SANModel,
    TimedActivity,
)
from ..san import exprs as E
from ..schedulers.interface import (
    PCPUState,
    PCPUView,
    SchedulingAlgorithm,
    VCPUHostView,
    VCPUStatus,
)
from .states import PRIORITY_MAINT, PRIORITY_SCHEDULER, new_pcpu_entry, new_slot

DEFAULT_NUM_SLOTS = 16  # the paper's Figure 6 statically defines sixteen

SCHEDULER_NAME = "VCPU_Scheduler"


@dataclass
class PCPUFailureModel:
    """Exponential fail/repair process per PCPU.

    Attributes:
        mtbf: mean time between failures (ticks; rate = 1/mtbf).
        mttr: mean time to repair (ticks; rate = 1/mttr).

    Steady-state availability of one PCPU is ``mtbf / (mtbf + mttr)``.
    """

    mtbf: float
    mttr: float

    def __post_init__(self) -> None:
        if self.mtbf <= 0 or self.mttr <= 0:
            raise ConfigurationError(
                f"mtbf and mttr must be > 0, got mtbf={self.mtbf}, mttr={self.mttr}"
            )

    def availability(self) -> float:
        """Analytic per-PCPU operational fraction."""
        return self.mtbf / (self.mtbf + self.mttr)


class ClockFastForward:
    """Certificate + closed form for coalescing idle Clock ticks.

    Published on the scheduler model as ``tick_fast_forward`` and
    consumed by :class:`repro.san.compiled.CompiledSANSimulator`.  The
    engine asks :meth:`max_skip` how many consecutive ticks from the
    current (quiescent) marking are *pure countdown* — every firing in
    the span is the fixed set {Clock, one tick consumer per plugged
    slot, Scheduling_Func}, every one of them merely decrements
    timeslices/remaining loads, and the plugged algorithm provably
    decides nothing.  That holds exactly when:

    * the algorithm class declares ``tick_skip_safe`` — its
      ``schedule()`` is a no-op whenever every PCPU is assigned and
      every assigned VCPU is BUSY (resolved through
      ``model.algorithm``, so guard/chaos wrappers — which do not
      declare the flag — automatically disable fast-forward);
    * every PCPU is ASSIGNED (no idle PCPU an algorithm could fill, no
      FAILED PCPU mid-repair);
    * every assigned slot is BUSY outside its critical section, and no
      non-assigned slot is BUSY (so each slot's tick consumer is fixed
      for the whole span: ``Processing_load`` for assigned slots,
      ``Discard_tick`` otherwise);
    * no timeslice expires and no load completes strictly inside the
      span — the returned bound is the smallest distance to either;
    * no degradation-layer state can change delivery inside the span:
      every PCPU is at pristine health with no maintenance pending and
      no hypervisor-overhead debt outstanding.  A degraded core
      withholds ticks data-dependently (the leaky-bucket accumulator),
      so any nonzero health disables coalescing outright; *pending*
      degradation/maintenance timed events need no check here — the
      engine already bounds spans by the earliest other pending event.

    Under those conditions every per-tick firing has a single case (no
    RNG draw) and the span's net marking change is arithmetic:
    :meth:`apply` performs it through the ordinary place APIs so the
    engine's dirty tracking sees every write.
    """

    __slots__ = (
        "_model",
        "_pcpus",
        "_timestamp",
        "_slot_values",
        "_timeslices",
        "_pcpu_refs",
        "_health",
        "_hv_debts",
        "_total",
        "_span",
        "clock",
        "per_tick_completions",
    )

    def __init__(
        self,
        model: SANModel,
        clock: TimedActivity,
        timestamp: Place,
        pcpus: ExtendedPlace,
        slot_value_places: Sequence[ExtendedPlace],
        timeslice_places: Sequence[Place],
        pcpu_places: Sequence[ExtendedPlace],
        total_vcpus: int,
        health: Optional[ExtendedPlace] = None,
        hv_debts: Optional[ExtendedPlace] = None,
    ) -> None:
        self._model = model
        #: The Clock activity *object* — the engine matches the queue
        #: head by identity, which survives Join re-qualification.
        self.clock = clock
        self._timestamp = timestamp
        self._pcpus = pcpus
        self._slot_values = list(slot_value_places[:total_vcpus])
        self._timeslices = list(timeslice_places[:total_vcpus])
        self._pcpu_refs = list(pcpu_places[:total_vcpus])
        self._health = health
        self._hv_debts = hv_debts
        self._total = total_vcpus
        #: Completions per coalesced tick: Clock + Scheduling_Func +
        #: exactly one tick consumer per plugged slot.
        self.per_tick_completions = total_vcpus + 2
        self._span: List[int] = []

    def max_skip(self) -> int:
        """Ticks certifiably skippable from the current marking (0 = none).

        Called at quiescence under a read sink, so the extended-place
        reads below are pure observation.  Also records which slots are
        burning load, for :meth:`apply`.
        """
        if not getattr(self._model.algorithm, "tick_skip_safe", False):
            return 0
        for entry in self._pcpus.value:
            if entry["state"] != PCPUState.ASSIGNED:
                return 0
        if self._health is not None:
            for entry in self._health.value:
                if entry["health"] or entry["maint"] or entry["due"]:
                    return 0
        if self._hv_debts is not None:
            for debt in self._hv_debts.value:
                if debt:
                    return 0
        span = self._span
        del span[:]
        bound: Optional[int] = None
        for g in range(self._total):
            slot = self._slot_values[g].value
            if slot["critical"]:
                return 0
            busy = slot["status"] == VCPUStatus.BUSY
            if self._pcpu_refs[g].value is None:
                if busy:
                    # A BUSY slot without a PCPU would burn load it was
                    # never granted time for — only a transient state;
                    # never certify it.
                    return 0
                continue
            if not busy:
                return 0
            room = min(slot["remaining_load"], self._timeslices[g].tokens) - 1
            if bound is None or room < bound:
                bound = room
            span.append(g)
        if bound is None or bound < 1:
            return 0
        return bound

    def apply(self, k: int) -> None:
        """Net marking change of ``k`` countdown ticks.

        Per tick: ``Timestamp`` gains a token (Clock), every burning
        slot's timeslice drops by one (Scheduling_Func accounting) and
        its remaining load drops by one (Processing_load).  Tick and
        Sched_tick tokens are deposited and consumed within each tick,
        so their net change is zero.
        """
        self._timestamp.add(k)
        for g in self._span:
            self._timeslices[g].remove(k)
            slot = self._slot_values[g].value  # mutable ref: marks the cell written
            slot["remaining_load"] -= k


def slot_places(index: int) -> Dict[str, str]:
    """Names of the per-slot places for global slot ``index`` (1-based)."""
    return {
        "schedule_in": f"VCPU{index}_Schedule_In",
        "schedule_out": f"VCPU{index}_Schedule_Out",
        "tick": f"VCPU{index}_Tick",
        "slot": f"VCPU{index}_slot",
        "timeslice": f"VCPU{index}_Timeslice",
        "last_in": f"VCPU{index}_Last_Scheduled_In",
        "pcpu": f"VCPU{index}_PCPU",
    }


def build_vcpu_scheduler(
    algorithm: SchedulingAlgorithm,
    num_pcpus: int,
    topology: Sequence[int],
    num_slots: int = DEFAULT_NUM_SLOTS,
    name: str = SCHEDULER_NAME,
    failures: Optional[PCPUFailureModel] = None,
    degradation: Optional[DegradationModel] = None,
    maintenance: Optional[MaintenancePolicy] = None,
    hv_overhead: Optional[HVOverheadModel] = None,
    streams: Optional[StreamFactory] = None,
) -> SANModel:
    """Construct the hypervisor VCPU-scheduler model.

    Args:
        algorithm: the plugged scheduling algorithm (fresh per
            replication; the framework never resets it for you).
        num_pcpus: number of physical CPUs (>= 1).
        topology: VCPUs per VM, e.g. ``[2, 1, 1]`` — global slots are
            assigned to VMs in order (VM 0 takes slots 1..2, ...).
        num_slots: statically defined VCPU slots (paper default: 16).
        name: model name (``"VCPU_Scheduler"`` by convention).
        failures: optional per-PCPU exponential fail/repair process
            (mutually exclusive with ``degradation``, which subsumes
            it: terminal health is failure).
        degradation: optional multi-state Markov health model.
        maintenance: optional repair policy (requires ``degradation``).
        hv_overhead: optional per-world-switch hypervisor cost.
        streams: random streams for the degradation case draws (the
            which-state-next choice is a *case* decision made in an
            output gate, outside the simulator's per-activity delay
            streams); default: seed 0, replication 0.

    Returns:
        A :class:`repro.san.SANModel` exposing, per plugged slot *g*,
        the join places ``VCPU<g>_Schedule_In``, ``VCPU<g>_Schedule_Out``,
        ``VCPU<g>_Tick``, and ``VCPU<g>_slot``, plus ``Num_PCPUs``,
        ``PCPUs``, and ``Timestamp``.
    """
    if num_pcpus < 1:
        raise ModelError(f"need at least one PCPU, got {num_pcpus}")
    if not topology or any(n < 1 for n in topology):
        raise ModelError(f"topology must list >= 1 VCPU per VM, got {topology!r}")
    total_vcpus = sum(topology)
    if total_vcpus > num_slots:
        raise ModelError(
            f"{total_vcpus} VCPUs exceed the {num_slots} statically defined "
            "slots; pass a larger num_slots (the paper: 'more VCPU slots can "
            "be easily added')"
        )
    if not isinstance(algorithm, SchedulingAlgorithm):
        raise ModelError(
            "algorithm must be a SchedulingAlgorithm, got "
            f"{type(algorithm).__name__}"
        )
    if degradation is not None and failures is not None:
        raise ConfigurationError(
            "degradation and pcpu failures are mutually exclusive: the "
            "health model's terminal state *is* failure (binary "
            "fail/repair is the h_max=1 special case)"
        )
    if maintenance is not None and degradation is None:
        raise ConfigurationError(
            "a maintenance policy needs a degradation model to repair"
        )
    if degradation is not None and degradation.initial_health is not None:
        if len(degradation.initial_health) != num_pcpus:
            raise ConfigurationError(
                f"initial_health lists {len(degradation.initial_health)} "
                f"entries for {num_pcpus} PCPUs"
            )
    if (
        maintenance is not None
        and maintenance.policy == "condition_based"
        and maintenance.threshold > degradation.h_max
    ):
        raise ConfigurationError(
            f"condition_based threshold {maintenance.threshold} exceeds "
            f"h_max {degradation.h_max}; the trigger would never fire "
            "below terminal failure"
        )
    if hv_overhead is not None and not hv_overhead.enabled:
        hv_overhead = None

    model = SANModel(name)
    timestamp = model.add_place(Place("Timestamp"))
    sched_tick = model.add_place(Place("Sched_tick"))
    model.add_place(Place("Num_PCPUs", initial=num_pcpus))

    def initial_pcpu_entry(i: int) -> Dict[str, Optional[str]]:
        # A PCPU configured to start at terminal health is out of
        # service from t=0 (the forced-degradation test hook).
        if degradation is not None and degradation.health_at(i) >= degradation.h_max:
            return {"state": PCPUState.FAILED, "vcpu": None}
        return new_pcpu_entry()

    pcpus = model.add_place(
        ExtendedPlace("PCPUs", [initial_pcpu_entry(i) for i in range(num_pcpus)])
    )

    # -- degradation-extension state ----------------------------------------
    # One health record per PCPU: current Markov state, the leaky-bucket
    # accumulator of withheld capacity, the in-maintenance and
    # periodic-overhaul-due flags, and whether a *runtime* terminal
    # failure was announced (so maintenance knows to announce the
    # matching repair; initially-terminal PCPUs never announced a fail).
    health: Optional[ExtendedPlace] = None
    capacity: List[float] = []
    matrix: List[List[float]] = []
    if degradation is not None:
        capacity = degradation.effective_capacity()
        matrix = degradation.effective_matrix()
        health = model.add_place(
            ExtendedPlace(
                "PCPU_Health",
                [
                    {
                        "health": degradation.health_at(i),
                        "acc": 0.0,
                        "maint": 0,
                        "due": 0,
                        "failed": 0,
                    }
                    for i in range(num_pcpus)
                ],
            )
        )
    # Outstanding hypervisor ticks per slot: set to the world-switch
    # cost at every schedule-in, burned down before guest ticks flow.
    hv_debts: Optional[ExtendedPlace] = None
    hv_cost = 0
    if hv_overhead is not None:
        hv_cost = hv_overhead.cost
        hv_debts = model.add_place(
            ExtendedPlace("HV_Debts", [0] * total_vcpus)
        )
    crews: Optional[Place] = None
    if maintenance is not None:
        crews = model.add_place(Place("Repair_Crews", initial=maintenance.crews))

    # Global slot map: slot index (1-based) -> (vm_id, vcpu_index).
    slot_map: List[Tuple[int, int]] = []
    for vm_id, count in enumerate(topology):
        for vcpu_index in range(count):
            slot_map.append((vm_id, vcpu_index))

    schedule_in_places: List[Place] = []
    schedule_out_places: List[Place] = []
    tick_places: List[Place] = []
    slot_value_places: List[ExtendedPlace] = []
    timeslice_places: List[Place] = []
    last_in_places: List[ExtendedPlace] = []
    pcpu_places: List[ExtendedPlace] = []

    for index in range(1, num_slots + 1):
        names = slot_places(index)
        plugged = index <= total_vcpus
        schedule_in_places.append(model.add_place(Place(names["schedule_in"])))
        schedule_out_places.append(model.add_place(Place(names["schedule_out"])))
        tick_places.append(model.add_place(Place(names["tick"])))
        slot_value_places.append(
            model.add_place(
                ExtendedPlace(names["slot"], new_slot() if plugged else None)
            )
        )
        timeslice_places.append(model.add_place(Place(names["timeslice"])))
        last_in_places.append(model.add_place(ExtendedPlace(names["last_in"], -1.0)))
        pcpu_places.append(model.add_place(ExtendedPlace(names["pcpu"], None)))

    # -- Clock: the unit-time heartbeat -------------------------------------

    if health is None and hv_debts is None:

        def tick_fanout() -> None:
            timestamp.add()
            for g in range(total_vcpus):
                tick_places[g].add()
            sched_tick.add()

    else:
        # Degradation/overhead-aware fan-out.  A slot holding a PCPU
        # only receives its tick when (a) no hypervisor world-switch
        # debt is outstanding for it and (b) the host core's leaky
        # bucket delivers: per tick the bucket gains ``capacity[h]``
        # and a whole tick flows to the guest each time it reaches 1.
        # Unassigned slots always get their tick (their consumer is
        # Discard_tick, exactly as in the plain fan-out).  Timeslice
        # accounting in Scheduling_Func still runs on *wall-clock*
        # ticks, so a degraded tenure does strictly less guest work.

        def tick_fanout() -> None:
            timestamp.add()
            health_entries = health.value if health is not None else None
            debts = hv_debts.value if hv_debts is not None else None
            for g in range(total_vcpus):
                pcpu_index = pcpu_places[g].value
                if pcpu_index is None:
                    tick_places[g].add()
                    continue
                if debts is not None and debts[g] > 0:
                    debts[g] -= 1
                    continue
                if health_entries is not None:
                    entry = health_entries[pcpu_index]
                    h = entry["health"]
                    if h:
                        acc = entry["acc"] + capacity[h]
                        if acc < 1.0:
                            entry["acc"] = acc
                            continue
                        entry["acc"] = acc - 1.0
                tick_places[g].add()
            sched_tick.add()

    clock = model.add_activity(
        TimedActivity(
            "Clock",
            Deterministic(1),
            input_gates=[InputGate("Always", expr=E.TRUE)],
            output_gates=[OutputGate("Tick_fanout", tick_fanout)],
        )
    )

    # -- Scheduling_Func: timeslice accounting + the plugged algorithm ------

    def _deschedule(g: int, reason: str = _trace.OUT_DECISION) -> None:
        """Free slot g's PCPU and notify its VCPU model."""
        pcpu_index = pcpu_places[g].value
        pcpus.value[pcpu_index] = new_pcpu_entry()
        pcpu_places[g].value = None
        timeslice_places[g].tokens = 0
        if hv_debts is not None:
            hv_debts.value[g] = 0
        schedule_out_places[g].add()
        tracer = _trace._ACTIVE
        if tracer is not None:
            vm_id, vcpu_index = slot_map[g]
            tracer.emit(_trace.SCHED_OUT, vcpu=g, vm=vm_id,
                        vcpu_index=vcpu_index, pcpu=pcpu_index, reason=reason)

    def _assign(g: int, pcpu_index: int, timeslice: int, now: float) -> None:
        """Assign a PCPU to slot g and notify its VCPU model."""
        pcpus.value[pcpu_index] = {"state": PCPUState.ASSIGNED, "vcpu": g}
        pcpu_places[g].value = pcpu_index
        timeslice_places[g].tokens = timeslice
        last_in_places[g].value = now
        if hv_debts is not None:
            hv_debts.value[g] = hv_cost
        schedule_in_places[g].add()
        tracer = _trace._ACTIVE
        if tracer is not None:
            vm_id, vcpu_index = slot_map[g]
            tracer.emit(_trace.SCHED_IN, vcpu=g, vm=vm_id,
                        vcpu_index=vcpu_index, pcpu=pcpu_index,
                        timeslice=timeslice)
            if hv_debts is not None:
                tracer.emit(_trace.HV_OVERHEAD, vcpu=g, pcpu=pcpu_index,
                            cost=hv_cost)

    # -- optional dependability process: PCPU fail/repair --------------------

    if failures is not None:
        for pcpu_index in range(num_pcpus):

            def fail(i: int = pcpu_index) -> None:
                entry = pcpus.value[i]
                victim = None
                if entry["state"] == PCPUState.ASSIGNED:
                    victim = entry["vcpu"]
                    _deschedule(victim, reason=_trace.OUT_PCPU_FAILURE)
                pcpus.value[i] = {"state": PCPUState.FAILED, "vcpu": None}
                tracer = _trace._ACTIVE
                if tracer is not None:
                    tracer.emit(_trace.PCPU_FAIL, pcpu=i, victim=victim)

            def repair(i: int = pcpu_index) -> None:
                pcpus.value[i] = new_pcpu_entry()
                tracer = _trace._ACTIVE
                if tracer is not None:
                    tracer.emit(_trace.PCPU_REPAIR, pcpu=i)

            model.add_activity(
                TimedActivity(
                    f"Fail_PCPU{pcpu_index}",
                    Exponential(1.0 / failures.mtbf),
                    input_gates=[
                        InputGate(
                            f"Operational{pcpu_index}",
                            expr=E.field(pcpus, pcpu_index, "state")
                            != E.const(PCPUState.FAILED),
                        )
                    ],
                    output_gates=[OutputGate(f"Fail_gate{pcpu_index}", fail)],
                )
            )
            model.add_activity(
                TimedActivity(
                    f"Repair_PCPU{pcpu_index}",
                    Exponential(1.0 / failures.mttr),
                    input_gates=[
                        InputGate(
                            f"Down{pcpu_index}",
                            expr=E.field(pcpus, pcpu_index, "state")
                            == E.const(PCPUState.FAILED),
                        )
                    ],
                    output_gates=[OutputGate(f"Repair_gate{pcpu_index}", repair)],
                )
            )

    # -- degradation extension: Markov health, maintenance, crews -----------

    if degradation is not None:
        h_max = degradation.h_max
        case_streams = streams if streams is not None else StreamFactory()
        stream_bindings: List[Tuple[str, object]] = []

        for pcpu_index in range(num_pcpus):
            # The which-state-next draw is a *case* decision in the
            # output gate; it gets its own named stream (separate from
            # the activity's delay stream, which the simulator binds by
            # qualified name) so trajectories survive model reuse.
            case_key = f"{name}.Degrade_case{pcpu_index}"
            case_rng = case_streams.stream(case_key)
            stream_bindings.append((case_key, case_rng))

            def degrade(i: int = pcpu_index, rng=case_rng) -> None:
                entry = health.value[i]
                h = entry["health"]
                row = matrix[h]
                draw = rng.random()
                cumulative = 0.0
                new_h = h
                for state, probability in enumerate(row):
                    cumulative += probability
                    if draw < cumulative:
                        new_h = state
                        break
                if new_h == h:
                    return
                entry["health"] = new_h
                entry["acc"] = 0.0
                tracer = _trace._ACTIVE
                if tracer is not None:
                    tracer.emit(_trace.PCPU_DEGRADE, pcpu=i, from_health=h,
                                to_health=new_h, capacity=capacity[new_h])
                if new_h >= h_max:
                    # Terminal: feed the existing fail machinery.
                    pcpu_entry = pcpus.value[i]
                    victim = None
                    if pcpu_entry["state"] == PCPUState.ASSIGNED:
                        victim = pcpu_entry["vcpu"]
                        _deschedule(victim, reason=_trace.OUT_PCPU_FAILURE)
                    pcpus.value[i] = {"state": PCPUState.FAILED, "vcpu": None}
                    entry["failed"] = 1
                    if tracer is not None:
                        tracer.emit(_trace.PCPU_FAIL, pcpu=i, victim=victim)

            model.add_activity(
                TimedActivity(
                    f"Degrade_PCPU{pcpu_index}",
                    Exponential(1.0 / degradation.mtbe),
                    input_gates=[
                        InputGate(
                            f"Degradable{pcpu_index}",
                            expr=(E.field(health, pcpu_index, "health") < h_max)
                            & (E.field(health, pcpu_index, "maint") == 0),
                        )
                    ],
                    output_gates=[OutputGate(f"Degrade_gate{pcpu_index}", degrade)],
                )
            )

        model.stream_bindings = stream_bindings

    if maintenance is not None:
        policy = maintenance.policy
        threshold = maintenance.threshold
        h_max = degradation.h_max

        def maint_needed(i: int) -> bool:
            entry = health.value[i]
            if entry["maint"]:
                return False
            h = entry["health"]
            if h >= h_max:
                # Every policy repairs a dead core: corrective repair
                # of terminal failures is the baseline all policies
                # build on.
                return True
            if policy == "condition_based":
                return h >= threshold
            if policy == "periodic":
                return bool(entry["due"])
            return False

        for pcpu_index in range(num_pcpus):

            def maint_start(i: int = pcpu_index) -> None:
                entry = health.value[i]
                crews.remove()
                entry["maint"] = 1
                entry["due"] = 0
                pcpu_entry = pcpus.value[i]
                victim = None
                if pcpu_entry["state"] == PCPUState.ASSIGNED:
                    victim = pcpu_entry["vcpu"]
                    _deschedule(victim, reason=_trace.OUT_MAINTENANCE)
                # Out of service for the repair's duration.
                pcpus.value[i] = {"state": PCPUState.FAILED, "vcpu": None}
                tracer = _trace._ACTIVE
                if tracer is not None:
                    tracer.emit(_trace.MAINT_START, pcpu=i, policy=policy,
                                health=entry["health"], victim=victim)

            def maint_done(i: int = pcpu_index) -> None:
                entry = health.value[i]
                was_failed = entry["failed"]
                entry["health"] = 0
                entry["acc"] = 0.0
                entry["maint"] = 0
                entry["failed"] = 0
                pcpus.value[i] = new_pcpu_entry()
                crews.add()
                tracer = _trace._ACTIVE
                if tracer is not None:
                    tracer.emit(_trace.MAINT_DONE, pcpu=i, policy=policy)
                    if was_failed:
                        # The matching pcpu.repair for the pcpu.fail a
                        # runtime terminal degrade announced (an
                        # initially-terminal PCPU announced no fail, so
                        # it gets no repair record either).
                        tracer.emit(_trace.PCPU_REPAIR, pcpu=i)

            model.add_activity(
                InstantaneousActivity(
                    f"Maint_Start{pcpu_index}",
                    priority=PRIORITY_MAINT,
                    input_gates=[
                        # Two gates preserve the closure's short-circuit:
                        # the IR crew guard is scanned first, so the
                        # policy closure only runs when a crew is free.
                        InputGate(
                            f"Maint_crew_free{pcpu_index}",
                            expr=E.tokens(crews) > 0,
                        ),
                        InputGate(
                            f"Maint_trigger{pcpu_index}",
                            lambda i=pcpu_index: maint_needed(i),
                        ),
                    ],
                    output_gates=[
                        OutputGate(f"Maint_start_gate{pcpu_index}", maint_start)
                    ],
                )
            )
            model.add_activity(
                TimedActivity(
                    f"Maint_Done{pcpu_index}",
                    Exponential(1.0 / maintenance.mttr),
                    input_gates=[
                        InputGate(
                            f"In_maintenance{pcpu_index}",
                            expr=E.field(health, pcpu_index, "maint") != 0,
                        )
                    ],
                    output_gates=[
                        OutputGate(f"Maint_done_gate{pcpu_index}", maint_done)
                    ],
                )
            )
            if policy == "periodic":

                def maint_due(i: int = pcpu_index) -> None:
                    entry = health.value[i]
                    if not entry["maint"]:
                        entry["due"] = 1

                model.add_activity(
                    TimedActivity(
                        f"Maint_Due{pcpu_index}",
                        Deterministic(maintenance.period),
                        input_gates=[
                            InputGate(f"Due_clock{pcpu_index}", expr=E.TRUE)
                        ],
                        output_gates=[
                            OutputGate(f"Maint_due_gate{pcpu_index}", maint_due)
                        ],
                    )
                )

    def _status_of(g: int) -> str:
        """Hypervisor view of a slot's status (authoritative mid-tick)."""
        if pcpu_places[g].value is None:
            return VCPUStatus.INACTIVE
        if slot_value_places[g].value["remaining_load"] > 0:
            return VCPUStatus.BUSY
        return VCPUStatus.READY

    def run_scheduling_func() -> None:
        profiler = _profile._ACTIVE
        if profiler is not None:
            with profiler.section("vmm.scheduling_func"):
                _run_scheduling_func()
            return
        _run_scheduling_func()

    def _run_scheduling_func() -> None:
        # Resolved through the model each tick so cross-replication
        # reuse can swap in a fresh algorithm (or a guard/chaos wrapper)
        # without rebuilding these closures.
        algorithm = model.algorithm
        sched_tick.remove()
        now = float(timestamp.tokens)

        # 1. Timeslice accounting: expire VCPUs whose tenure ran out.
        for g in range(total_vcpus):
            if pcpu_places[g].value is None:
                continue
            remaining = timeslice_places[g].tokens - 1
            if remaining <= 0:
                _deschedule(g, reason=_trace.OUT_EXPIRE)
            else:
                timeslice_places[g].tokens = remaining

        # 2. Build the in/out view arrays the C interface passes.
        views: List[VCPUHostView] = []
        for g in range(total_vcpus):
            vm_id, vcpu_index = slot_map[g]
            slot = slot_value_places[g].value
            views.append(
                VCPUHostView(
                    vcpu_id=g,
                    vm_id=vm_id,
                    vcpu_index=vcpu_index,
                    status=_status_of(g),
                    remaining_load=slot["remaining_load"],
                    sync_point=slot["sync_point"],
                    last_scheduled_in=last_in_places[g].value,
                    timeslice=timeslice_places[g].tokens,
                    pcpu=pcpu_places[g].value,
                )
            )
        if health is None:
            pcpu_views = [
                PCPUView(pcpu_id=i, state=entry["state"], vcpu=entry["vcpu"])
                for i, entry in enumerate(pcpus.value)
            ]
        else:
            health_entries = health.value
            pcpu_views = [
                PCPUView(
                    pcpu_id=i,
                    state=entry["state"],
                    vcpu=entry["vcpu"],
                    health=health_entries[i]["health"],
                    capacity=capacity[health_entries[i]["health"]],
                )
                for i, entry in enumerate(pcpus.value)
            ]

        # 3. Call the plugged scheduling function.
        profiler = _profile._ACTIVE
        if profiler is None:
            algorithm.schedule(views, len(views), pcpu_views, num_pcpus, now)
        else:
            with profiler.section("vmm.algorithm"):
                algorithm.schedule(views, len(views), pcpu_views, num_pcpus, now)

        # 4. Validate and apply its decisions: outs first, then ins.
        for view in views:
            if view.schedule_in and view.schedule_out:
                raise SchedulingError(
                    f"{algorithm.name}: VCPU {view.vcpu_id} marked for both "
                    "schedule_in and schedule_out in one tick"
                )
        for view in views:
            if not view.schedule_out:
                continue
            if pcpu_places[view.vcpu_id].value is None:
                raise SchedulingError(
                    f"{algorithm.name}: schedule_out for VCPU {view.vcpu_id}, "
                    "which holds no PCPU"
                )
            _deschedule(view.vcpu_id)
        for view in views:
            if not view.schedule_in:
                continue
            g = view.vcpu_id
            if pcpu_places[g].value is not None:
                raise SchedulingError(
                    f"{algorithm.name}: schedule_in for VCPU {g}, "
                    "which already holds a PCPU"
                )
            pcpu_index = view.next_pcpu
            if pcpu_index is None:
                pcpu_index = next(
                    (
                        i
                        for i, entry in enumerate(pcpus.value)
                        if entry["state"] == PCPUState.IDLE
                    ),
                    None,
                )
                if pcpu_index is None:
                    raise SchedulingError(
                        f"{algorithm.name}: schedule_in for VCPU {g} but no "
                        "PCPU is free (over-commitment in one tick)"
                    )
            else:
                if not 0 <= pcpu_index < num_pcpus:
                    raise SchedulingError(
                        f"{algorithm.name}: VCPU {g} requested PCPU "
                        f"{pcpu_index}, outside 0..{num_pcpus - 1}"
                    )
                if pcpus.value[pcpu_index]["state"] != PCPUState.IDLE:
                    raise SchedulingError(
                        f"{algorithm.name}: VCPU {g} requested PCPU "
                        f"{pcpu_index}, which is not idle"
                    )
            timeslice = (
                view.next_timeslice
                if view.next_timeslice is not None
                else algorithm.timeslice
            )
            if timeslice < 1:
                raise SchedulingError(
                    f"{algorithm.name}: VCPU {g} granted a timeslice of "
                    f"{timeslice}; must be >= 1"
                )
            _assign(g, pcpu_index, timeslice, now)

    model.add_activity(
        InstantaneousActivity(
            "Scheduling_Func",
            priority=PRIORITY_SCHEDULER,
            input_gates=[InputGate("Sched_armed", expr=E.tokens(sched_tick) > 0)],
            output_gates=[OutputGate("Scheduling_Func_gate", run_scheduling_func)],
        )
    )

    # Metadata consumed by the Virtual System builder and the metrics.
    model.slot_map = slot_map
    model.total_vcpus = total_vcpus
    model.num_pcpus = num_pcpus
    model.algorithm = algorithm
    model.failures = failures
    model.degradation = degradation
    model.maintenance = maintenance
    model.hv_overhead = hv_overhead
    if degradation is None:
        model.stream_bindings = []
    model.tick_fast_forward = ClockFastForward(
        model,
        clock,
        timestamp,
        pcpus,
        slot_value_places,
        timeslice_places,
        pcpu_places,
        total_vcpus,
        health=health,
        hv_debts=hv_debts,
    )
    return model
