"""The Virtual CPU Scheduler sub-model (paper Figure 6).

The hypervisor side of the framework.  Its components, following
§III.B.5:

* **Clock** — a timed activity with a deterministic unit delay; it
  "fires at every time unit to regulate the operation of the
  scheduling function ... and computes the remaining timeslice of each
  ACTIVE VCPU".  Its output gate fans a tick token out to every
  plugged VCPU sub-model (driving their ``Processing_load``) and arms
  the ``Scheduling_Func`` activity.
* **VCPU places** — one per possible VCPU (statically 16 in the paper;
  ``num_slots`` here, defaulting to 16).  Each plugged slot carries
  the paper's fields as places: ``Schedule_In`` / ``Schedule_Out``
  (token channels joined to the VCPU model), ``Last_Scheduled_In``,
  and ``Timeslice``, plus the slot's assigned-PCPU record.  Unplugged
  slots exist but are never enabled.
* **Num_PCPUs** and the **PCPUs array** — resource configuration and
  per-PCPU ``IDLE`` / ``ASSIGNED`` state.
* **Scheduling_Func** — the output gate that builds the
  ``VCPU_host_external`` / ``PCPU_external`` view arrays, calls the
  plugged :class:`~repro.schedulers.interface.SchedulingAlgorithm`
  (the paper's user C function), validates its decisions, and applies
  them: freeing/assigning PCPUs, granting timeslices, stamping
  ``Last_Scheduled_In``, and depositing Schedule_In / Schedule_Out
  tokens for the VCPU models.

Timeslice accounting happens *before* the algorithm call, as in the
paper: an ACTIVE VCPU's timeslice decreases at each Clock firing and
the VCPU "must relinquish the PCPU" when it reaches zero — the
algorithm then sees the freed PCPUs.

**Dependability extension.**  Passing a :class:`PCPUFailureModel`
attaches an exponential fail/repair process to every PCPU (the classic
SAN dependability pattern — this framework's formalism was built for
exactly such models).  A failing ASSIGNED PCPU forcibly deschedules
its VCPU; a FAILED PCPU is never assignable; repair returns it to
IDLE.  Schedulers need no changes: they only ever dispatch onto IDLE
PCPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..des.distributions import Deterministic, Exponential
from ..errors import ConfigurationError, ModelError, SchedulingError
from ..observability import profile as _profile
from ..observability import trace as _trace
from ..san import (
    ExtendedPlace,
    InputGate,
    InstantaneousActivity,
    OutputGate,
    Place,
    SANModel,
    TimedActivity,
)
from ..schedulers.interface import (
    PCPUState,
    PCPUView,
    SchedulingAlgorithm,
    VCPUHostView,
    VCPUStatus,
)
from .states import PRIORITY_SCHEDULER, new_pcpu_entry, new_slot

DEFAULT_NUM_SLOTS = 16  # the paper's Figure 6 statically defines sixteen

SCHEDULER_NAME = "VCPU_Scheduler"


@dataclass
class PCPUFailureModel:
    """Exponential fail/repair process per PCPU.

    Attributes:
        mtbf: mean time between failures (ticks; rate = 1/mtbf).
        mttr: mean time to repair (ticks; rate = 1/mttr).

    Steady-state availability of one PCPU is ``mtbf / (mtbf + mttr)``.
    """

    mtbf: float
    mttr: float

    def __post_init__(self) -> None:
        if self.mtbf <= 0 or self.mttr <= 0:
            raise ConfigurationError(
                f"mtbf and mttr must be > 0, got mtbf={self.mtbf}, mttr={self.mttr}"
            )

    def availability(self) -> float:
        """Analytic per-PCPU operational fraction."""
        return self.mtbf / (self.mtbf + self.mttr)


def slot_places(index: int) -> Dict[str, str]:
    """Names of the per-slot places for global slot ``index`` (1-based)."""
    return {
        "schedule_in": f"VCPU{index}_Schedule_In",
        "schedule_out": f"VCPU{index}_Schedule_Out",
        "tick": f"VCPU{index}_Tick",
        "slot": f"VCPU{index}_slot",
        "timeslice": f"VCPU{index}_Timeslice",
        "last_in": f"VCPU{index}_Last_Scheduled_In",
        "pcpu": f"VCPU{index}_PCPU",
    }


def build_vcpu_scheduler(
    algorithm: SchedulingAlgorithm,
    num_pcpus: int,
    topology: Sequence[int],
    num_slots: int = DEFAULT_NUM_SLOTS,
    name: str = SCHEDULER_NAME,
    failures: Optional[PCPUFailureModel] = None,
) -> SANModel:
    """Construct the hypervisor VCPU-scheduler model.

    Args:
        algorithm: the plugged scheduling algorithm (fresh per
            replication; the framework never resets it for you).
        num_pcpus: number of physical CPUs (>= 1).
        topology: VCPUs per VM, e.g. ``[2, 1, 1]`` — global slots are
            assigned to VMs in order (VM 0 takes slots 1..2, ...).
        num_slots: statically defined VCPU slots (paper default: 16).
        name: model name (``"VCPU_Scheduler"`` by convention).
        failures: optional per-PCPU exponential fail/repair process.

    Returns:
        A :class:`repro.san.SANModel` exposing, per plugged slot *g*,
        the join places ``VCPU<g>_Schedule_In``, ``VCPU<g>_Schedule_Out``,
        ``VCPU<g>_Tick``, and ``VCPU<g>_slot``, plus ``Num_PCPUs``,
        ``PCPUs``, and ``Timestamp``.
    """
    if num_pcpus < 1:
        raise ModelError(f"need at least one PCPU, got {num_pcpus}")
    if not topology or any(n < 1 for n in topology):
        raise ModelError(f"topology must list >= 1 VCPU per VM, got {topology!r}")
    total_vcpus = sum(topology)
    if total_vcpus > num_slots:
        raise ModelError(
            f"{total_vcpus} VCPUs exceed the {num_slots} statically defined "
            "slots; pass a larger num_slots (the paper: 'more VCPU slots can "
            "be easily added')"
        )
    if not isinstance(algorithm, SchedulingAlgorithm):
        raise ModelError(
            "algorithm must be a SchedulingAlgorithm, got "
            f"{type(algorithm).__name__}"
        )

    model = SANModel(name)
    timestamp = model.add_place(Place("Timestamp"))
    sched_tick = model.add_place(Place("Sched_tick"))
    model.add_place(Place("Num_PCPUs", initial=num_pcpus))
    pcpus = model.add_place(
        ExtendedPlace("PCPUs", [new_pcpu_entry() for _ in range(num_pcpus)])
    )

    # Global slot map: slot index (1-based) -> (vm_id, vcpu_index).
    slot_map: List[Tuple[int, int]] = []
    for vm_id, count in enumerate(topology):
        for vcpu_index in range(count):
            slot_map.append((vm_id, vcpu_index))

    schedule_in_places: List[Place] = []
    schedule_out_places: List[Place] = []
    tick_places: List[Place] = []
    slot_value_places: List[ExtendedPlace] = []
    timeslice_places: List[Place] = []
    last_in_places: List[ExtendedPlace] = []
    pcpu_places: List[ExtendedPlace] = []

    for index in range(1, num_slots + 1):
        names = slot_places(index)
        plugged = index <= total_vcpus
        schedule_in_places.append(model.add_place(Place(names["schedule_in"])))
        schedule_out_places.append(model.add_place(Place(names["schedule_out"])))
        tick_places.append(model.add_place(Place(names["tick"])))
        slot_value_places.append(
            model.add_place(
                ExtendedPlace(names["slot"], new_slot() if plugged else None)
            )
        )
        timeslice_places.append(model.add_place(Place(names["timeslice"])))
        last_in_places.append(model.add_place(ExtendedPlace(names["last_in"], -1.0)))
        pcpu_places.append(model.add_place(ExtendedPlace(names["pcpu"], None)))

    # -- Clock: the unit-time heartbeat -------------------------------------

    def tick_fanout() -> None:
        timestamp.add()
        for g in range(total_vcpus):
            tick_places[g].add()
        sched_tick.add()

    model.add_activity(
        TimedActivity(
            "Clock",
            Deterministic(1),
            input_gates=[InputGate("Always", lambda: True)],
            output_gates=[OutputGate("Tick_fanout", tick_fanout)],
        )
    )

    # -- Scheduling_Func: timeslice accounting + the plugged algorithm ------

    def _deschedule(g: int, reason: str = _trace.OUT_DECISION) -> None:
        """Free slot g's PCPU and notify its VCPU model."""
        pcpu_index = pcpu_places[g].value
        pcpus.value[pcpu_index] = new_pcpu_entry()
        pcpu_places[g].value = None
        timeslice_places[g].tokens = 0
        schedule_out_places[g].add()
        tracer = _trace._ACTIVE
        if tracer is not None:
            vm_id, vcpu_index = slot_map[g]
            tracer.emit(_trace.SCHED_OUT, vcpu=g, vm=vm_id,
                        vcpu_index=vcpu_index, pcpu=pcpu_index, reason=reason)

    def _assign(g: int, pcpu_index: int, timeslice: int, now: float) -> None:
        """Assign a PCPU to slot g and notify its VCPU model."""
        pcpus.value[pcpu_index] = {"state": PCPUState.ASSIGNED, "vcpu": g}
        pcpu_places[g].value = pcpu_index
        timeslice_places[g].tokens = timeslice
        last_in_places[g].value = now
        schedule_in_places[g].add()
        tracer = _trace._ACTIVE
        if tracer is not None:
            vm_id, vcpu_index = slot_map[g]
            tracer.emit(_trace.SCHED_IN, vcpu=g, vm=vm_id,
                        vcpu_index=vcpu_index, pcpu=pcpu_index,
                        timeslice=timeslice)

    # -- optional dependability process: PCPU fail/repair --------------------

    if failures is not None:
        for pcpu_index in range(num_pcpus):

            def fail(i: int = pcpu_index) -> None:
                entry = pcpus.value[i]
                victim = None
                if entry["state"] == PCPUState.ASSIGNED:
                    victim = entry["vcpu"]
                    _deschedule(victim, reason=_trace.OUT_PCPU_FAILURE)
                pcpus.value[i] = {"state": PCPUState.FAILED, "vcpu": None}
                tracer = _trace._ACTIVE
                if tracer is not None:
                    tracer.emit(_trace.PCPU_FAIL, pcpu=i, victim=victim)

            def repair(i: int = pcpu_index) -> None:
                pcpus.value[i] = new_pcpu_entry()
                tracer = _trace._ACTIVE
                if tracer is not None:
                    tracer.emit(_trace.PCPU_REPAIR, pcpu=i)

            model.add_activity(
                TimedActivity(
                    f"Fail_PCPU{pcpu_index}",
                    Exponential(1.0 / failures.mtbf),
                    input_gates=[
                        InputGate(
                            f"Operational{pcpu_index}",
                            lambda i=pcpu_index: pcpus.value[i]["state"]
                            != PCPUState.FAILED,
                        )
                    ],
                    output_gates=[OutputGate(f"Fail_gate{pcpu_index}", fail)],
                )
            )
            model.add_activity(
                TimedActivity(
                    f"Repair_PCPU{pcpu_index}",
                    Exponential(1.0 / failures.mttr),
                    input_gates=[
                        InputGate(
                            f"Down{pcpu_index}",
                            lambda i=pcpu_index: pcpus.value[i]["state"]
                            == PCPUState.FAILED,
                        )
                    ],
                    output_gates=[OutputGate(f"Repair_gate{pcpu_index}", repair)],
                )
            )

    def _status_of(g: int) -> str:
        """Hypervisor view of a slot's status (authoritative mid-tick)."""
        if pcpu_places[g].value is None:
            return VCPUStatus.INACTIVE
        if slot_value_places[g].value["remaining_load"] > 0:
            return VCPUStatus.BUSY
        return VCPUStatus.READY

    def run_scheduling_func() -> None:
        profiler = _profile._ACTIVE
        if profiler is not None:
            with profiler.section("vmm.scheduling_func"):
                _run_scheduling_func()
            return
        _run_scheduling_func()

    def _run_scheduling_func() -> None:
        sched_tick.remove()
        now = float(timestamp.tokens)

        # 1. Timeslice accounting: expire VCPUs whose tenure ran out.
        for g in range(total_vcpus):
            if pcpu_places[g].value is None:
                continue
            remaining = timeslice_places[g].tokens - 1
            if remaining <= 0:
                _deschedule(g, reason=_trace.OUT_EXPIRE)
            else:
                timeslice_places[g].tokens = remaining

        # 2. Build the in/out view arrays the C interface passes.
        views: List[VCPUHostView] = []
        for g in range(total_vcpus):
            vm_id, vcpu_index = slot_map[g]
            slot = slot_value_places[g].value
            views.append(
                VCPUHostView(
                    vcpu_id=g,
                    vm_id=vm_id,
                    vcpu_index=vcpu_index,
                    status=_status_of(g),
                    remaining_load=slot["remaining_load"],
                    sync_point=slot["sync_point"],
                    last_scheduled_in=last_in_places[g].value,
                    timeslice=timeslice_places[g].tokens,
                    pcpu=pcpu_places[g].value,
                )
            )
        pcpu_views = [
            PCPUView(pcpu_id=i, state=entry["state"], vcpu=entry["vcpu"])
            for i, entry in enumerate(pcpus.value)
        ]

        # 3. Call the plugged scheduling function.
        profiler = _profile._ACTIVE
        if profiler is None:
            algorithm.schedule(views, len(views), pcpu_views, num_pcpus, now)
        else:
            with profiler.section("vmm.algorithm"):
                algorithm.schedule(views, len(views), pcpu_views, num_pcpus, now)

        # 4. Validate and apply its decisions: outs first, then ins.
        for view in views:
            if view.schedule_in and view.schedule_out:
                raise SchedulingError(
                    f"{algorithm.name}: VCPU {view.vcpu_id} marked for both "
                    "schedule_in and schedule_out in one tick"
                )
        for view in views:
            if not view.schedule_out:
                continue
            if pcpu_places[view.vcpu_id].value is None:
                raise SchedulingError(
                    f"{algorithm.name}: schedule_out for VCPU {view.vcpu_id}, "
                    "which holds no PCPU"
                )
            _deschedule(view.vcpu_id)
        for view in views:
            if not view.schedule_in:
                continue
            g = view.vcpu_id
            if pcpu_places[g].value is not None:
                raise SchedulingError(
                    f"{algorithm.name}: schedule_in for VCPU {g}, "
                    "which already holds a PCPU"
                )
            pcpu_index = view.next_pcpu
            if pcpu_index is None:
                pcpu_index = next(
                    (
                        i
                        for i, entry in enumerate(pcpus.value)
                        if entry["state"] == PCPUState.IDLE
                    ),
                    None,
                )
                if pcpu_index is None:
                    raise SchedulingError(
                        f"{algorithm.name}: schedule_in for VCPU {g} but no "
                        "PCPU is free (over-commitment in one tick)"
                    )
            else:
                if not 0 <= pcpu_index < num_pcpus:
                    raise SchedulingError(
                        f"{algorithm.name}: VCPU {g} requested PCPU "
                        f"{pcpu_index}, outside 0..{num_pcpus - 1}"
                    )
                if pcpus.value[pcpu_index]["state"] != PCPUState.IDLE:
                    raise SchedulingError(
                        f"{algorithm.name}: VCPU {g} requested PCPU "
                        f"{pcpu_index}, which is not idle"
                    )
            timeslice = (
                view.next_timeslice
                if view.next_timeslice is not None
                else algorithm.timeslice
            )
            if timeslice < 1:
                raise SchedulingError(
                    f"{algorithm.name}: VCPU {g} granted a timeslice of "
                    f"{timeslice}; must be >= 1"
                )
            _assign(g, pcpu_index, timeslice, now)

    model.add_activity(
        InstantaneousActivity(
            "Scheduling_Func",
            priority=PRIORITY_SCHEDULER,
            input_gates=[InputGate("Sched_armed", lambda: sched_tick.tokens > 0)],
            output_gates=[OutputGate("Scheduling_Func_gate", run_scheduling_func)],
        )
    )

    # Metadata consumed by the Virtual System builder and the metrics.
    model.slot_map = slot_map
    model.total_vcpus = total_vcpus
    model.num_pcpus = num_pcpus
    model.algorithm = algorithm
    model.failures = failures
    return model
