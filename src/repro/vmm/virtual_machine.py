"""The Virtual Machine composed model (paper Figure 2 and Table 1).

A VM is a Join of one Workload Generator, one Job Scheduler, and N
VCPU sub-models.  The join places reproduce the paper's Table 1:

===================  =====================================================
``Blocked``          generator, job scheduler, and every VCPU
``Num_VCPUs_ready``  generator, job scheduler, and every VCPU
``Workload``         generator and job scheduler
``VCPU<i>_slot``     job scheduler and VCPU *i*
===================  =====================================================

plus one extension join place beyond the paper's table: ``Lock``, the
VM-wide critical-section lock shared across all VCPU sub-models
(only multi-VCPU VMs get it — a 1-VCPU VM cannot contend with itself).

The composed model additionally exposes each VCPU's ``Schedule_In``,
``Schedule_Out``, and ``Tick`` places under their qualified names
(``VCPU<i>.Schedule_In`` ...), which the Virtual System join (Table 2)
connects to the hypervisor's VCPU Scheduler.
"""

from __future__ import annotations

from random import Random
from typing import Optional

from ..errors import ModelError
from ..san import ComposedModel, SharedVariable, join
from ..workloads.generators import WorkloadModel
from .job_scheduler import DEFAULT_NUM_SLOTS, build_job_scheduler
from .vcpu import build_vcpu_model
from .workload_generator import build_workload_generator

GENERATOR_NAME = "Workload_Generator"
JOB_SCHEDULER_NAME = "VM_Job_Scheduler"


def vcpu_model_name(index: int) -> str:
    """The paper's VCPU sub-model naming: VCPU1, VCPU2, ..."""
    return f"VCPU{index}"


def build_vm_model(
    name: str,
    num_vcpus: int,
    workload_model: WorkloadModel,
    rng: Random,
    num_slots: Optional[int] = None,
    dispatch: str = "round_robin",
    dispatch_rng: Optional[Random] = None,
) -> ComposedModel:
    """Construct a Virtual Machine composed model.

    Args:
        name: VM name, e.g. ``"VM_2VCPU_1"`` (the paper's convention).
        num_vcpus: number of VCPU sub-models to plug in (>= 1).
        workload_model: this VM's workload characterization.
        rng: the VM's workload random stream.
        num_slots: statically defined job-scheduler slots (default 8,
            as in the paper's Figure 3).
        dispatch: job-dispatch policy (see
            :mod:`repro.vmm.job_scheduler`; default is the paper's even
            round-robin).
        dispatch_rng: random stream for the ``"random"`` policy.

    Returns:
        A :class:`repro.san.ComposedModel` whose join-place table matches
        the paper's Table 1 (see :meth:`ComposedModel.join_place_table`).
    """
    if num_vcpus < 1:
        raise ModelError(f"VM {name!r} needs at least one VCPU, got {num_vcpus}")
    slots = num_slots if num_slots is not None else DEFAULT_NUM_SLOTS

    generator = build_workload_generator(GENERATOR_NAME, workload_model, rng)
    job_scheduler = build_job_scheduler(
        JOB_SCHEDULER_NAME, num_vcpus, slots, dispatch=dispatch, rng=dispatch_rng
    )
    vcpus = [
        build_vcpu_model(vcpu_model_name(i), lock_owner_id=i)
        for i in range(1, num_vcpus + 1)
    ]

    submodels = {GENERATOR_NAME: generator, JOB_SCHEDULER_NAME: job_scheduler}
    for vcpu in vcpus:
        submodels[vcpu.name] = vcpu

    everyone = [GENERATOR_NAME, JOB_SCHEDULER_NAME] + [v.name for v in vcpus]
    shared = [
        SharedVariable("Blocked", [(sub, "Blocked") for sub in everyone]),
        SharedVariable(
            "Num_VCPUs_ready", [(sub, "Num_VCPUs_ready") for sub in everyone]
        ),
        SharedVariable(
            "Workload",
            [(GENERATOR_NAME, "Workload"), (JOB_SCHEDULER_NAME, "Workload")],
        ),
    ]
    for index, vcpu in enumerate(vcpus, start=1):
        shared.append(
            SharedVariable(
                f"VCPU{index}_slot",
                [(JOB_SCHEDULER_NAME, f"VCPU{index}_slot"), (vcpu.name, "VCPU_slot")],
            )
        )
    if num_vcpus > 1:
        shared.append(
            SharedVariable("Lock", [(vcpu.name, "Lock") for vcpu in vcpus])
        )

    model = join(name, submodels, shared)
    # Convenience metadata consumed by the Virtual System builder.
    model.num_vcpus = num_vcpus
    return model
