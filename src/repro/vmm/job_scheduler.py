"""The Job Scheduler sub-model (paper Figure 3): "the hub of each VM".

Takes workloads from the generator via the shared ``Workload`` place
and, based on the state of the VCPU slots, decides which READY VCPU
receives each one.  The paper statically defines eight VCPU slots
("to support bigger VMs, more VCPU slots can easily be added" — here,
``num_slots`` is a parameter defaulting to the paper's 8); slots
without a plugged VCPU model stay ``None`` and are never selected.

The ``Scheduling`` event fires when (i) there is a pending workload and
(ii) at least one VCPU is READY.  The paper prescribes *even*
distribution; this implementation makes the policy explicit:

* ``"round_robin"`` (default, the paper's semantics) — a rotating
  cursor (the ``Next_VCPU`` place) spreads jobs evenly;
* ``"first_ready"`` — always the lowest-indexed READY VCPU (a naive
  implementation that concentrates work, useful as an ablation);
* ``"random"`` — a uniformly random READY VCPU (needs an ``rng``).

This model also owns the barrier-release ``Unblock`` activity: when
the VM is blocked and every outstanding load has completed (all slots
at ``remaining_load == 0`` and no pending workload), the ``Blocked``
place clears and generation resumes.
"""

from __future__ import annotations

from random import Random
from typing import Optional

from ..errors import ModelError
from ..san import (
    ExtendedPlace,
    InputGate,
    InstantaneousActivity,
    OutputGate,
    Place,
    SANModel,
)
from ..schedulers.interface import VCPUStatus
from .states import (
    PRIORITY_DISPATCH,
    PRIORITY_UNBLOCK,
    new_slot,
)

DEFAULT_NUM_SLOTS = 8  # the paper's Figure 3 statically defines eight

DISPATCH_POLICIES = ("round_robin", "first_ready", "random")


def build_job_scheduler(
    name: str,
    num_vcpus: int,
    num_slots: int = DEFAULT_NUM_SLOTS,
    dispatch: str = "round_robin",
    rng: Optional[Random] = None,
) -> SANModel:
    """Construct one VM's job scheduler.

    Args:
        name: model name, conventionally ``"VM_Job_Scheduler"``.
        num_vcpus: number of plugged VCPU slots (1..num_slots).
        num_slots: statically defined slot count (paper default: 8).
        dispatch: READY-VCPU selection policy (see module docstring).
        rng: random stream, required by the ``"random"`` policy.

    Returns:
        A model exposing join places ``Workload``, ``Blocked``,
        ``Num_VCPUs_ready``, and ``VCPU1_slot``..``VCPU<n>_slot``.
    """
    if not 1 <= num_vcpus <= num_slots:
        raise ModelError(
            f"job scheduler {name!r}: num_vcpus must be in 1..{num_slots}, "
            f"got {num_vcpus}"
        )
    if dispatch not in DISPATCH_POLICIES:
        raise ModelError(
            f"job scheduler {name!r}: unknown dispatch policy {dispatch!r}; "
            f"valid: {DISPATCH_POLICIES}"
        )
    if dispatch == "random" and rng is None:
        raise ModelError(
            f"job scheduler {name!r}: the 'random' dispatch policy needs an rng"
        )
    model = SANModel(name)
    workload = model.add_place(ExtendedPlace("Workload", None))
    blocked = model.add_place(Place("Blocked"))
    num_ready = model.add_place(Place("Num_VCPUs_ready"))
    cursor = model.add_place(Place("Next_VCPU"))

    slots = []
    for index in range(1, num_slots + 1):
        initial = new_slot() if index <= num_vcpus else None
        slots.append(model.add_place(ExtendedPlace(f"VCPU{index}_slot", initial)))
    plugged = slots[:num_vcpus]

    # -- Scheduling: dispatch the pending workload to a READY VCPU --------

    def can_dispatch() -> bool:
        return workload.value is not None and num_ready.tokens > 0

    def _ready_indices() -> list:
        return [
            i
            for i, slot in enumerate(plugged)
            if slot.value["status"] == VCPUStatus.READY
        ]

    def _pick() -> int:
        ready = _ready_indices()
        if not ready:
            # Unreachable while Num_VCPUs_ready is maintained correctly;
            # the invariant tests assert this never happens.
            raise ModelError(
                f"job scheduler {name!r}: Num_VCPUs_ready={num_ready.tokens} "
                "but no READY slot found"
            )
        if dispatch == "first_ready":
            return ready[0]
        if dispatch == "random":
            return rng.choice(ready)
        # round_robin: first READY slot at or after the cursor.
        start = cursor.tokens % num_vcpus
        for offset in range(num_vcpus):
            index = (start + offset) % num_vcpus
            if index in ready:
                return index
        return ready[0]  # unreachable; keeps the type checker honest

    def do_dispatch() -> None:
        job = workload.value
        index = _pick()
        slot = plugged[index]
        slot.value["remaining_load"] = job["load"]
        slot.value["sync_point"] = job["sync_point"]
        slot.value["critical"] = job.get("critical", 0)
        slot.value["status"] = VCPUStatus.BUSY
        num_ready.remove()
        workload.value = None
        cursor.tokens = (index + 1) % num_vcpus

    model.add_activity(
        InstantaneousActivity(
            "Scheduling",
            priority=PRIORITY_DISPATCH,
            input_gates=[InputGate("Scheduling_gate", can_dispatch)],
            output_gates=[OutputGate("Dispatch", do_dispatch)],
        )
    )

    # -- Unblock: barrier release ------------------------------------------

    def barrier_done() -> bool:
        if blocked.tokens == 0 or workload.value is not None:
            return False
        return all(slot.value["remaining_load"] == 0 for slot in plugged)

    model.add_activity(
        InstantaneousActivity(
            "Unblock",
            priority=PRIORITY_UNBLOCK,
            input_gates=[InputGate("Barrier_done", barrier_done)],
            output_gates=[OutputGate("Clear_blocked", lambda: blocked.remove(blocked.tokens))],
        )
    )

    return model
