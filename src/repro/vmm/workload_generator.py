"""The Workload Generator sub-model (paper Figure 5).

Generates a workload when two conditions are met (§III.B.3): (i) at
least one READY VCPU exists, and (ii) the VM is not blocked by a
synchronization point.  Each workload carries a ``load`` (processing
ticks) and a ``sync_point`` flag; generation of both "is configurable
to any distribution and rate" via :class:`repro.workloads.WorkloadModel`.

Generating a sync workload raises the VM-wide ``Blocked`` place, which
halts further generation until every outstanding job — including jobs
stranded on descheduled VCPUs — has completed (the barrier).  The job
counter lives in the ``Num_Generated`` place so the whole generator
state is part of the marking.
"""

from __future__ import annotations

from random import Random

from ..san import (
    ExtendedPlace,
    InputGate,
    InstantaneousActivity,
    OutputGate,
    Place,
    SANModel,
)
from ..workloads.generators import WorkloadModel
from .states import PRIORITY_GENERATE, new_workload


def build_workload_generator(
    name: str,
    workload_model: WorkloadModel,
    rng: Random,
) -> SANModel:
    """Construct one VM's workload generator.

    Args:
        name: model name, conventionally ``"Workload_Generator"``.
        workload_model: load distribution + sync policy for this VM.
        rng: the generator's private random stream (one per VM, from the
            replication's :class:`repro.des.StreamFactory`).

    Returns:
        A model exposing join places ``Workload``, ``Blocked``, and
        ``Num_VCPUs_ready`` (paper Table 1), plus the observable
        ``Num_Generated`` counter.
    """
    model = SANModel(name)
    workload = model.add_place(ExtendedPlace("Workload", None))
    blocked = model.add_place(Place("Blocked"))
    num_ready = model.add_place(Place("Num_VCPUs_ready"))
    num_generated = model.add_place(Place("Num_Generated"))

    def can_generate() -> bool:
        return (
            workload.value is None
            and blocked.tokens == 0
            and num_ready.tokens > 0
        )

    def wl_output() -> None:
        index = num_generated.tokens
        job = workload_model.next_job(index, rng)
        workload.value = new_workload(job.load, job.sync_point, job.critical)
        num_generated.add()
        if job.sync_point:
            # The barrier: stop generating until all preceding jobs
            # (this one included) complete.  The pending workload itself
            # is still dispatched — Blocked only gates generation.
            blocked.add()

    model.add_activity(
        InstantaneousActivity(
            "WL_gen",
            priority=PRIORITY_GENERATE,
            input_gates=[InputGate("Can_generate", can_generate)],
            output_gates=[OutputGate("WL_Output", wl_output)],
        )
    )
    return model
