"""The paper's virtualization sub-models, built on the SAN engine.

One builder per paper figure:

* :func:`build_vcpu_model` — Figure 4 (VCPU)
* :func:`build_workload_generator` — Figure 5 (Workload Generator)
* :func:`build_job_scheduler` — Figure 3 (Job Scheduler)
* :func:`build_vm_model` — Figure 2 / Table 1 (Virtual Machine)
* :func:`build_vcpu_scheduler` — Figure 6 (VCPU Scheduler)
* :func:`build_virtual_system` — Figure 7 / Table 2 (Virtual System)
"""

from .job_scheduler import build_job_scheduler
from .states import (
    PRIORITY_APPLY_SCHEDULE,
    PRIORITY_APPLY_SCHEDULE_IN,
    PRIORITY_APPLY_SCHEDULE_OUT,
    PRIORITY_DISPATCH,
    PRIORITY_GENERATE,
    PRIORITY_PROCESS,
    PRIORITY_SCHEDULER,
    PRIORITY_UNBLOCK,
    new_pcpu_entry,
    new_slot,
    new_workload,
    slot_is_active,
    slot_is_busy,
)
from .system import (
    SYSTEM_NAME,
    build_virtual_system,
    pcpus_place,
    slot_value_place,
    vcpu_label,
    vm_model_name,
)
from .vcpu import build_vcpu_model
from .vcpu_scheduler import PCPUFailureModel, SCHEDULER_NAME, build_vcpu_scheduler
from .virtual_machine import build_vm_model
from .workload_generator import build_workload_generator

__all__ = [
    "build_vcpu_model",
    "build_workload_generator",
    "build_job_scheduler",
    "build_vm_model",
    "build_vcpu_scheduler",
    "build_virtual_system",
    "slot_value_place",
    "pcpus_place",
    "vcpu_label",
    "vm_model_name",
    "PCPUFailureModel",
    "SCHEDULER_NAME",
    "SYSTEM_NAME",
    "new_slot",
    "new_workload",
    "new_pcpu_entry",
    "slot_is_active",
    "slot_is_busy",
    "PRIORITY_APPLY_SCHEDULE",
    "PRIORITY_APPLY_SCHEDULE_IN",
    "PRIORITY_APPLY_SCHEDULE_OUT",
    "PRIORITY_PROCESS",
    "PRIORITY_UNBLOCK",
    "PRIORITY_GENERATE",
    "PRIORITY_DISPATCH",
    "PRIORITY_SCHEDULER",
]
