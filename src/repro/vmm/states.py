"""Shared state-variable definitions for the virtualization models.

The paper's sub-models communicate through a handful of typed places;
this module pins down their shapes and initial markings so that every
sub-model builder constructs *identical* initials — a requirement for
the Join operation to share them (see :func:`repro.san.places.share`).

Token shapes:

* ``VCPU_slot`` (extended place) — ``{"remaining_load": int,
  "sync_point": int, "status": str}``, exactly the fields of §III.B.2.
* ``Workload`` (extended place) — ``None`` when empty, else
  ``{"load": int, "sync_point": int}``, the two fields of §III.B.3.
* ``PCPUs`` (extended place) — a list of ``{"state": str, "vcpu":
  Optional[int]}`` entries, the paper's PCPU array.

Priorities: the per-tick phase order of DESIGN.md §5, encoded as
instantaneous-activity priorities (lower fires first).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..schedulers.interface import PCPUState, VCPUStatus

# Per-tick phase priorities for instantaneous activities.  The settle
# loop always fires the lowest-priority enabled activity first, so these
# constants define the phase order within one clock tick.
#
# Schedule_Out applies strictly before Schedule_In: when a timeslice
# expiry and an algorithm re-dispatch hit the same VCPU in one tick, the
# out-then-in order is the only consistent one (in-then-out would leave
# the VCPU marked INACTIVE while the hypervisor holds a PCPU for it).
PRIORITY_APPLY_SCHEDULE_OUT = 0  # Handle_Schedule_Out
PRIORITY_APPLY_SCHEDULE_IN = 1  # Handle_Schedule_In
PRIORITY_APPLY_SCHEDULE = PRIORITY_APPLY_SCHEDULE_OUT  # backward-compat alias
PRIORITY_ACQUIRE = 9  # Acquire_lock (critical sections, before processing)
PRIORITY_PROCESS = 10  # Processing_load / Spin_tick / Discard_tick
PRIORITY_UNBLOCK = 20  # barrier release
PRIORITY_GENERATE = 30  # workload generation
PRIORITY_DISPATCH = 31  # job scheduler dispatch
PRIORITY_MAINT = 39  # maintenance crew dispatch (before Scheduling_Func)
PRIORITY_SCHEDULER = 40  # hypervisor Scheduling_Func


def new_slot() -> Dict[str, Any]:
    """The initial ``VCPU_slot`` marking: idle, unscheduled, no load.

    ``critical`` extends the paper's slot with the lock-based
    synchronization of §V's future work: 1 while the current job must
    execute inside the VM's critical section.
    """
    return {
        "remaining_load": 0,
        "sync_point": 0,
        "critical": 0,
        "status": VCPUStatus.INACTIVE,
    }


def new_workload(load: int, sync_point: int, critical: int = 0) -> Dict[str, int]:
    """A ``Workload`` token: ``load`` ticks of work plus sync semantics."""
    return {"load": int(load), "sync_point": int(sync_point), "critical": int(critical)}


def new_pcpu_entry() -> Dict[str, Optional[str]]:
    """One idle entry of the PCPU array."""
    return {"state": PCPUState.IDLE, "vcpu": None}


def slot_is_active(slot: Dict[str, Any]) -> bool:
    """True while the slot's VCPU holds a PCPU (READY or BUSY)."""
    return slot["status"] in VCPUStatus.ACTIVE


def slot_is_busy(slot: Dict[str, Any]) -> bool:
    """True while the slot's VCPU is processing a workload."""
    return slot["status"] == VCPUStatus.BUSY
