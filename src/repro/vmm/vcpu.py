"""The VCPU sub-model (paper Figure 4).

State:

* ``VCPU_slot`` — extended place with ``remaining_load``,
  ``sync_point``, ``status``; joined with the VM's job scheduler (and,
  in this implementation, visible to the hypervisor so the scheduling
  function can see VCPU status, as the paper's C interface promises).
* ``Schedule_In`` / ``Schedule_Out`` — token places; the hypervisor
  deposits a token to notify the VCPU it has been assigned a PCPU /
  must relinquish it.  Joined with the VCPU Scheduler (paper Table 2).
* ``Tick`` — one token per hypervisor clock firing; the channel through
  which the Clock activity "triggers" load processing (§III.B.2).
* ``Blocked`` / ``Num_VCPUs_ready`` — VM-wide places joined across all
  of the VM's sub-models (paper Table 1).

Activities (all instantaneous):

* ``Handle_Schedule_In`` — consume a Schedule_In token; INACTIVE →
  BUSY if a load is pending, else READY (bumping ``Num_VCPUs_ready``).
* ``Handle_Schedule_Out`` — consume a Schedule_Out token; READY/BUSY →
  INACTIVE.  Note the paper's remark: the VCPU may be mid-workload
  (``remaining_load > 0``) or even holding a synchronization point —
  both fields survive descheduling, which is exactly what creates
  synchronization latency under sibling-oblivious schedulers.
* ``Processing_load`` — on each tick while BUSY (and, for a critical
  job, while holding the VM lock), decrement ``remaining_load``; at
  zero the VCPU turns READY (releasing the lock if held).
* ``Acquire_lock`` / ``Spin_tick`` — the critical-section extension
  (paper §V future work): a BUSY VCPU whose job is critical first
  acquires the VM-wide ``Lock``; while a sibling holds it, the VCPU
  *spins* — its tick is consumed, ``Spin_ticks`` counts it, and no
  progress is made.  A preempted lock holder keeps the lock (that is
  the lock-holder-preemption problem of §II.B, now measurable).
* ``Discard_tick`` — consume the tick token when not BUSY (keeps the
  tick channel from accumulating).
"""

from __future__ import annotations

from ..san import (
    ExtendedPlace,
    InputGate,
    InstantaneousActivity,
    OutputGate,
    Place,
    SANModel,
)
from ..schedulers.interface import VCPUStatus
from .states import (
    PRIORITY_ACQUIRE,
    PRIORITY_APPLY_SCHEDULE_IN,
    PRIORITY_APPLY_SCHEDULE_OUT,
    PRIORITY_PROCESS,
    new_slot,
)


def _spin(tick: Place, spin_ticks: Place):
    """Gate function: burn the tick token and count it as spin waste."""

    def spin() -> None:
        tick.remove()
        spin_ticks.add()

    return spin


def build_vcpu_model(name: str, lock_owner_id: int = 0) -> SANModel:
    """Construct one VCPU sub-model.

    Args:
        name: model name, e.g. ``"VCPU1"`` (the paper's convention).
        lock_owner_id: this VCPU's identity in the VM-wide ``Lock``
            place (the VM builder passes the 1-based VCPU index).

    Returns:
        A :class:`repro.san.SANModel` exposing the join places
        ``VCPU_slot``, ``Schedule_In``, ``Schedule_Out``, ``Tick``,
        ``Blocked``, ``Num_VCPUs_ready``, and ``Lock``, plus the local
        ``Spin_ticks`` counter.
    """
    model = SANModel(name)
    slot = model.add_place(ExtendedPlace("VCPU_slot", new_slot()))
    schedule_in = model.add_place(Place("Schedule_In"))
    schedule_out = model.add_place(Place("Schedule_Out"))
    tick = model.add_place(Place("Tick"))
    model.add_place(Place("Blocked"))
    num_ready = model.add_place(Place("Num_VCPUs_ready"))
    # The VM-wide lock: None when free, else the holder's lock_owner_id.
    lock = model.add_place(ExtendedPlace("Lock", None))
    spin_ticks = model.add_place(Place("Spin_ticks"))
    me = int(lock_owner_id)

    def apply_schedule_in() -> None:
        schedule_in.remove()
        slot_value = slot.value
        if slot_value["remaining_load"] > 0:
            slot_value["status"] = VCPUStatus.BUSY
        else:
            slot_value["status"] = VCPUStatus.READY
            num_ready.add()

    model.add_activity(
        InstantaneousActivity(
            "Handle_Schedule_In",
            priority=PRIORITY_APPLY_SCHEDULE_IN,
            input_gates=[
                InputGate("Has_schedule_in", lambda: schedule_in.tokens > 0)
            ],
            output_gates=[OutputGate("Apply_schedule_in", apply_schedule_in)],
        )
    )

    def apply_schedule_out() -> None:
        schedule_out.remove()
        slot_value = slot.value
        if slot_value["status"] == VCPUStatus.READY:
            num_ready.remove()
        slot_value["status"] = VCPUStatus.INACTIVE

    model.add_activity(
        InstantaneousActivity(
            "Handle_Schedule_Out",
            priority=PRIORITY_APPLY_SCHEDULE_OUT,
            input_gates=[
                InputGate("Has_schedule_out", lambda: schedule_out.tokens > 0)
            ],
            output_gates=[OutputGate("Apply_schedule_out", apply_schedule_out)],
        )
    )

    # -- critical sections (paper §V future-work extension) ---------------

    def may_process() -> bool:
        """A critical job only progresses while this VCPU holds the lock."""
        return slot.value["critical"] == 0 or lock.value == me

    model.add_activity(
        InstantaneousActivity(
            "Acquire_lock",
            priority=PRIORITY_ACQUIRE,
            input_gates=[
                InputGate(
                    "Wants_lock",
                    lambda: slot.value["status"] == VCPUStatus.BUSY
                    and slot.value["critical"] == 1
                    and lock.value is None,
                )
            ],
            output_gates=[
                OutputGate("Take_lock", lambda: setattr(lock, "value", me))
            ],
        )
    )

    model.add_activity(
        InstantaneousActivity(
            "Spin_tick",
            priority=PRIORITY_PROCESS,
            input_gates=[
                InputGate(
                    "Spinning",
                    lambda: tick.tokens > 0
                    and slot.value["status"] == VCPUStatus.BUSY
                    and slot.value["critical"] == 1
                    and lock.value is not None
                    and lock.value != me,
                )
            ],
            output_gates=[OutputGate("Spin_gate", _spin(tick, spin_ticks))],
        )
    )

    # -- processing ---------------------------------------------------------

    def process_one_unit() -> None:
        tick.remove()
        slot_value = slot.value
        slot_value["remaining_load"] -= 1
        if slot_value["remaining_load"] == 0:
            slot_value["sync_point"] = 0  # the barrier job itself is done
            if slot_value["critical"] and lock.value == me:
                lock.value = None  # leave the critical section
            slot_value["critical"] = 0
            slot_value["status"] = VCPUStatus.READY
            num_ready.add()

    model.add_activity(
        InstantaneousActivity(
            "Processing_load",
            priority=PRIORITY_PROCESS,
            input_gates=[
                InputGate(
                    "Busy_with_tick",
                    lambda: tick.tokens > 0
                    and slot.value["status"] == VCPUStatus.BUSY
                    and may_process(),
                )
            ],
            output_gates=[OutputGate("Processing_load_gate", process_one_unit)],
        )
    )

    model.add_activity(
        InstantaneousActivity(
            "Discard_tick",
            priority=PRIORITY_PROCESS,
            input_gates=[
                InputGate(
                    "Idle_with_tick",
                    lambda: tick.tokens > 0
                    and slot.value["status"] != VCPUStatus.BUSY,
                )
            ],
            output_gates=[OutputGate("Discard_tick_gate", tick.remove)],
        )
    )

    return model
