"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list-schedulers`` — registered algorithm names.
* ``run --spec spec.json`` — run one experiment from a JSON system
  spec (the dict form of :class:`~repro.core.config.SystemSpec`),
  printing every metric with its confidence interval; ``--csv`` emits
  machine-readable output instead.  Resilience flags: ``--jobs N``
  (parallel replications), ``--timeout S`` (per-attempt wall clock),
  ``--retries K`` (reseeded retries), ``--checkpoint F`` / ``--resume``
  (stream/reuse finished replications).
* ``tables`` — print the paper's Tables 1 and 2.
* ``figures [--figure 8|9|10|all] [--full]`` — regenerate the paper's
  figures (quick fidelity by default).
* ``serve`` — run the long-lived simulation job server (JSON over
  HTTP; see :mod:`repro.service`); ``--cache-dir`` makes repeated
  queries warm-hit the persistent result cache.

Example spec file::

    {
      "vms": [{"vcpus": 2}, {"vcpus": 1}, {"vcpus": 1}],
      "pcpus": 2,
      "scheduler": "rcs",
      "sim_time": 2000,
      "warmup": 200
    }
"""

from __future__ import annotations

import argparse
import contextlib
import json
import math
import sys
from typing import Any, Dict, List, Optional

from .core.config import SystemSpec
from .core.experiment import run_experiment
from .core.registry import list_schedulers
from .core.results import render_table, results_to_csv
from .errors import ConfigurationError, ReproError
from .observability import SimProfiler, SimTracer, profiling, tracing
from .observability.trace import TRACE_FORMATS
from .resilience import ResilienceConfig, failure_summary


def _cmd_list_schedulers(args: argparse.Namespace) -> int:
    for name in list_schedulers():
        print(name)
    return 0


#: Boolean-ish spellings we refuse to guess at: JSON specs spell booleans
#: ``true``/``false``, so the CLI accepts exactly those and nothing else.
_KV_AMBIGUOUS_BOOLS = frozenset({"yes", "no", "on", "off", "y", "n", "t", "f"})


def _coerce_kv_value(value: str, flag: str, key: str) -> Any:
    """Coerce one ``k=v`` value: bool, then int, then float, then str.

    ``true``/``false`` (any case) become booleans; integer literals
    become ints; anything ``float()`` accepts — including scientific
    notation like ``1e3`` — becomes a float.  Values that could be read
    more than one way (``yes``/``off``-style booleans, ``nan``, ``inf``,
    or an empty value) are rejected outright rather than passed through
    as surprise strings or non-finite numbers.
    """
    if not value:
        raise ConfigurationError(f"{flag}: {key}= has an empty value")
    lowered = value.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if lowered in _KV_AMBIGUOUS_BOOLS:
        raise ConfigurationError(
            f"{flag}: ambiguous value {key}={value!r}; spell booleans true/false"
        )
    try:
        return int(value)
    except ValueError:
        pass
    try:
        number = float(value)
    except ValueError:
        return value
    if math.isnan(number) or math.isinf(number):
        raise ConfigurationError(
            f"{flag}: non-finite value {key}={value!r} is not allowed"
        )
    return number


def _parse_kv(text: str, flag: str) -> Dict[str, Any]:
    """Parse ``k=v,k=v`` flag payloads, coercing values bool -> int -> float -> str.

    Used by ``--degradation`` and ``--maintenance``; the resulting dict
    feeds the same ``from_dict`` validators the JSON spec path uses, so
    unknown keys and bad values fail with the same messages.  Value
    coercion (see :func:`_coerce_kv_value`) is normalized: ``true`` and
    ``false`` parse as booleans, ``1e3`` parses as a float, and
    ambiguous spellings fail with a one-line :class:`ConfigurationError`.
    """
    out: Dict[str, Any] = {}
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        key, sep, value = chunk.partition("=")
        if not sep or not key.strip():
            raise ConfigurationError(
                f"{flag} expects comma-separated k=v pairs, got {chunk!r}"
            )
        key = key.strip()
        out[key] = _coerce_kv_value(value.strip(), flag, key)
    return out


def _spec_overrides_from_args(
    spec: SystemSpec, args: argparse.Namespace
) -> SystemSpec:
    """Apply ``--degradation`` / ``--maintenance`` / ``--hv-overhead``."""
    overrides: Dict[str, Any] = {}
    if args.degradation is not None:
        overrides["degradation"] = _parse_kv(args.degradation, "--degradation")
    if args.maintenance is not None:
        overrides["maintenance"] = _parse_kv(args.maintenance, "--maintenance")
    if args.hv_overhead is not None:
        overrides["hv_overhead"] = {"cost": args.hv_overhead}
    return spec.with_overrides(**overrides) if overrides else spec


def _cache_dir_from_args(args: argparse.Namespace) -> Optional[str]:
    """``--cache-dir`` unless ``--no-cache`` vetoes it."""
    if getattr(args, "no_cache", False):
        return None
    return getattr(args, "cache_dir", None)


def _resilience_from_args(args: argparse.Namespace) -> Optional[ResilienceConfig]:
    """Build the executor config from CLI flags; None when all defaults."""
    cache_dir = _cache_dir_from_args(args)
    if (
        args.jobs == 1
        and args.timeout is None
        and args.retries == 0
        and args.checkpoint is None
        and not args.resume
        and cache_dir is None
        and args.batch_width is None
        and args.batch_wave_window is None
    ):
        return None
    config = ResilienceConfig(
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        checkpoint=args.checkpoint,
        resume=args.resume,
        incremental=args.engine != "rescan",
        engine=args.engine,
        cache_dir=cache_dir,
        batch_width=args.batch_width,
        batch_wave_window=args.batch_wave_window,
    )
    config.validate()
    return config


def _cmd_run(args: argparse.Namespace) -> int:
    with open(args.spec, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    spec = _spec_overrides_from_args(SystemSpec.from_dict(payload), args)
    if args.trace is not None and (args.jobs != 1 or args.timeout is not None):
        raise ConfigurationError(
            "--trace records in-process and needs serial execution: "
            "it is incompatible with --jobs > 1 and --timeout"
        )
    tracer = SimTracer() if args.trace is not None else None
    profiler = SimProfiler() if args.profile else None
    with contextlib.ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(tracing(tracer))
        if profiler is not None:
            stack.enter_context(profiling(profiler))
        result = run_experiment(
            spec,
            min_replications=args.min_replications,
            max_replications=args.max_replications,
            target_half_width=args.target_half_width,
            root_seed=args.seed,
            extra_probes=args.probes,
            resilience=_resilience_from_args(args),
            incremental=args.engine != "rescan",
            engine=args.engine,
        )
    if tracer is not None:
        tracer.write(args.trace, format=args.trace_format)
        print(
            f"trace: {len(tracer.records)} records -> {args.trace} "
            f"({args.trace_format})",
            file=sys.stderr,
        )
    if profiler is not None:
        print(profiler.table(), file=sys.stderr)
        fired = profiler.counters.get("engine.ticks_fired", 0)
        skipped = profiler.counters.get("engine.ticks_fast_forwarded", 0)
        print(
            f"engine: {args.engine} "
            f"(clock ticks fired {fired}, fast-forwarded {skipped})",
            file=sys.stderr,
        )
    if args.csv:
        print(results_to_csv([result], metrics=result.metrics()), end="")
        return 0
    print(f"{result.label}  ({result.replications} replications)")
    rows = [
        [name, f"{result.mean(name):.4f}", f"{result.half_width(name):.4f}"]
        for name in result.metrics()
    ]
    print(render_table(["metric", "mean", "ci_half_width"], rows))
    if result.failures:
        print(f"absorbed faults: {failure_summary(result.failures)}", file=sys.stderr)
    if result.degraded:
        print(
            "warning: results are degraded (quarantine fallback was used)",
            file=sys.stderr,
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .service import ServiceConfig, SimulationServer

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        queue_limit=args.queue_limit,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        cache_dir=_cache_dir_from_args(args),
        timeout=args.timeout,
    )
    config.validate()

    async def _serve() -> None:
        server = SimulationServer(config)
        await server.start()
        print(
            f"repro service listening on http://{config.host}:{server.port} "
            f"(pool jobs={config.jobs}, queue limit={config.queue_limit})",
            file=sys.stderr,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix loops: ctrl-C raises KeyboardInterrupt instead
        try:
            await stop.wait()
        finally:
            print("repro service draining...", file=sys.stderr)
            await server.shutdown()
            print("repro service stopped", file=sys.stderr)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from .paper import table1, table2

    print(table1())
    print()
    print(table2())
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    import os

    from .paper import run_figure8, run_figure9, run_figure10

    if args.full:
        knobs = {"sim_time": 2000, "replications": (5, 20)}
    else:
        knobs = {"sim_time": 1000, "replications": (3, 6)}
    # Env overrides, mainly for fast CI runs of the CLI path.
    if "REPRO_FIGURES_SIM_TIME" in os.environ:
        knobs["sim_time"] = int(os.environ["REPRO_FIGURES_SIM_TIME"])
    if "REPRO_FIGURES_REPS" in os.environ:
        reps = int(os.environ["REPRO_FIGURES_REPS"])
        knobs["replications"] = (reps, reps)
    cache_dir = _cache_dir_from_args(args)
    if args.sweep_jobs is not None or cache_dir is not None:
        knobs["sweep_engine"] = "interleaved"
        knobs["sweep_jobs"] = args.sweep_jobs
        if cache_dir is not None:
            knobs["resilience"] = ResilienceConfig(cache_dir=cache_dir)
    runners = {"8": run_figure8, "9": run_figure9, "10": run_figure10}
    wanted = list(runners) if args.figure == "all" else [args.figure]
    for key in wanted:
        figure = runners[key](**knobs)
        print(figure.table)
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simulation framework for evaluating VCPU scheduling algorithms",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-schedulers", help="print registered algorithms").set_defaults(
        handler=_cmd_list_schedulers
    )

    run_parser = sub.add_parser("run", help="run one experiment from a JSON spec")
    run_parser.add_argument("--spec", required=True, help="path to a JSON system spec")
    run_parser.add_argument("--seed", type=int, default=0, help="root random seed")
    run_parser.add_argument(
        "--min-replications", type=int, default=5, dest="min_replications"
    )
    run_parser.add_argument(
        "--max-replications", type=int, default=30, dest="max_replications"
    )
    run_parser.add_argument(
        "--target-half-width",
        type=float,
        default=0.1,
        dest="target_half_width",
        help="stop when every watched metric's 95%% CI half-width is below this",
    )
    run_parser.add_argument(
        "--probes",
        action="store_true",
        help="also collect blocked-fraction and throughput probes",
    )
    run_parser.add_argument("--csv", action="store_true", help="emit CSV")
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for parallel replications (default: 1, in-process)",
    )
    run_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="wall-clock seconds allowed per replication attempt",
    )
    run_parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry budget per replication (failed attempts are reseeded)",
    )
    run_parser.add_argument(
        "--checkpoint",
        default=None,
        help="JSONL file streaming every finished replication",
    )
    run_parser.add_argument(
        "--resume",
        action="store_true",
        help="reuse replications already in --checkpoint instead of recomputing",
    )
    run_parser.add_argument(
        "--cache-dir",
        default=None,
        dest="cache_dir",
        help="persistent result-cache directory: finished replications are "
        "memoized across invocations (invalidated on any code change)",
    )
    run_parser.add_argument(
        "--no-cache",
        action="store_true",
        dest="no_cache",
        help="ignore --cache-dir (read nothing, write nothing)",
    )
    run_parser.add_argument(
        "--engine",
        choices=("incremental", "rescan", "compiled", "batch"),
        default="incremental",
        help="enablement engine: incremental (cached, default), rescan "
        "(full re-evaluation reference), compiled (flat-array lowering "
        "with clock-tick fast-forward), or batch (replication groups "
        "advanced in waves over one shared calendar); results are "
        "bit-identical across all four",
    )
    run_parser.add_argument(
        "--batch-width",
        type=int,
        default=None,
        dest="batch_width",
        metavar="N",
        help="replications per batch-dispatch group (engine=batch only; "
        "default: framework default)",
    )
    run_parser.add_argument(
        "--batch-wave-window",
        type=float,
        default=None,
        dest="batch_wave_window",
        metavar="T",
        help="wave-calendar interleaving window in simulated time "
        "(engine=batch only; results are identical for any positive "
        "value — tunes cache locality; default: engine default)",
    )
    run_parser.add_argument(
        "--degradation",
        default=None,
        metavar="K=V,...",
        help="enable the multi-state PCPU health model, overriding the "
        "spec: comma-separated DegradationModel fields, e.g. "
        "'p=0.1,h_max=4,mtbe=50'",
    )
    run_parser.add_argument(
        "--maintenance",
        default=None,
        metavar="K=V,...",
        help="enable maintenance (requires degradation): comma-separated "
        "MaintenancePolicy fields, e.g. "
        "'policy=condition_based,crews=1,mttr=20,threshold=2'",
    )
    run_parser.add_argument(
        "--hv-overhead",
        type=int,
        default=None,
        dest="hv_overhead",
        metavar="TICKS",
        help="charge this many ticks of hypervisor overhead on every "
        "world switch (schedule-in)",
    )
    run_parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record a structured simulation trace to FILE "
        "(serial runs only: incompatible with --jobs > 1 / --timeout)",
    )
    run_parser.add_argument(
        "--trace-format",
        choices=TRACE_FORMATS,
        default="jsonl",
        dest="trace_format",
        help="trace output format: jsonl (one record per line) or "
        "chrome (trace_event JSON, viewable in Perfetto)",
    )
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help="print per-subsystem wall-clock timings to stderr",
    )
    run_parser.set_defaults(handler=_cmd_run)

    sub.add_parser("tables", help="print the paper's Tables 1 and 2").set_defaults(
        handler=_cmd_tables
    )

    figures_parser = sub.add_parser("figures", help="regenerate the paper's figures")
    figures_parser.add_argument(
        "--figure", choices=["8", "9", "10", "all"], default="all"
    )
    figures_parser.add_argument(
        "--full", action="store_true", help="bench-grade fidelity (slower)"
    )
    figures_parser.add_argument(
        "--sweep-jobs",
        type=int,
        default=None,
        dest="sweep_jobs",
        help="run each figure through the interleaved sweep engine with "
        "this many shared-pool workers (1 = in-process scheduling)",
    )
    figures_parser.add_argument(
        "--cache-dir",
        default=None,
        dest="cache_dir",
        help="persistent result cache for the sweep (implies the "
        "interleaved engine); reruns skip finished replications",
    )
    figures_parser.add_argument(
        "--no-cache",
        action="store_true",
        dest="no_cache",
        help="ignore --cache-dir (read nothing, write nothing)",
    )
    figures_parser.set_defaults(handler=_cmd_figures)

    serve_parser = sub.add_parser(
        "serve", help="run the long-lived simulation job server"
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8642,
        help="bind port (default: 8642; 0 = let the OS pick)",
    )
    serve_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="sweep-pool worker processes shared by every job "
        "(default: 1, in-process)",
    )
    serve_parser.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        dest="queue_limit",
        help="max queued-or-running jobs before submissions get 503",
    )
    serve_parser.add_argument(
        "--quota-rate",
        type=float,
        default=None,
        dest="quota_rate",
        help="per-tenant admitted jobs per second (default: unlimited)",
    )
    serve_parser.add_argument(
        "--quota-burst",
        type=float,
        default=10.0,
        dest="quota_burst",
        help="per-tenant token-bucket capacity (default: 10)",
    )
    serve_parser.add_argument(
        "--cache-dir",
        default=None,
        dest="cache_dir",
        help="persistent result cache shared by every job: identical "
        "queries warm-hit and execute zero replications",
    )
    serve_parser.add_argument(
        "--no-cache",
        action="store_true",
        dest="no_cache",
        help="ignore --cache-dir (read nothing, write nothing)",
    )
    serve_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="wall-clock seconds per replication attempt (forces "
        "process workers)",
    )
    serve_parser.set_defaults(handler=_cmd_serve)
    return parser


def _one_line(message: str) -> str:
    """Collapse a (possibly multi-line) exception message to one line."""
    return " ".join(str(message).split())


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Framework errors exit non-zero with a single structured line on
    stderr (``error: <ErrorType>: <message>``) — never a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except FileNotFoundError as exc:
        print(f"error: {_one_line(str(exc))}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: malformed JSON spec: {_one_line(str(exc))}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {_one_line(str(exc))}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
