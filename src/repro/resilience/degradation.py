"""Multi-state PCPU health: Markov degradation, maintenance, HV overhead.

The paper's host model is idealized: a PCPU is either perfectly up or
(since the dependability extension) binarily failed.  Real cores
degrade *gradually* — thermal throttling, correctable-error storms,
firmware-level capacity loss — and fleets repair them with a bounded
maintenance crew.  This module ports the discrete-state degradation
idiom of manufacturing simulators (simantha's ``degradation_matrix``)
onto the hypervisor's PCPU array:

* :class:`DegradationModel` — a seeded Markov chain over integer
  health states ``0..h_max`` per PCPU.  State 0 is pristine; state
  ``h_max`` is terminal failure, feeding the existing
  ``pcpu.fail``/``pcpu.repair`` machinery.  Intermediate states scale
  the core's *effective capacity*: a PCPU at health ``h`` delivers
  only ``capacity[h]`` of its clock ticks to the VCPU it hosts (the
  withheld ticks model a degraded core running slower).
* :class:`MaintenancePolicy` — corrective, periodic, or
  condition-based repair, with all PCPUs competing for ``crews``
  repair crews (a token-bounded resource).  A PCPU under maintenance
  is out of service until its repair completes, which restores it to
  pristine health.
* :class:`HVOverheadModel` — a per-world-switch hypervisor cost: the
  first ``cost`` ticks after every schedule-in are consumed by the
  hypervisor (context-switch, TLB/cache refill) instead of the guest,
  so context-switch-heavy schedulers pay a realistic penalty.

All three are plain-data configs that round-trip through dicts (spec
files, sweeps, the result cache).  The stochastic parts draw from
named :class:`~repro.des.random_streams.StreamFactory` streams, so
trajectories are bit-identical across the three enablement engines and
under cross-replication model reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ConfigurationError

#: Tolerance for row-stochasticity checks (rows must sum to 1).
_ROW_SUM_TOL = 1e-9

MAINTENANCE_POLICIES = ("corrective", "periodic", "condition_based")


def generate_degradation_matrix(p: float, h_max: int) -> List[List[float]]:
    """The standard single-step degradation transition matrix.

    An ``(h_max + 1) x (h_max + 1)`` row-stochastic matrix: from each
    non-terminal health state the chain steps to the next-worse state
    with probability ``p`` and stays put with ``1 - p``; the terminal
    state ``h_max`` is absorbing (only maintenance leaves it).

    Example:
        >>> generate_degradation_matrix(0.25, 2)
        [[0.75, 0.25, 0.0], [0.0, 0.75, 0.25], [0.0, 0.0, 1.0]]
    """
    if not 0 < p <= 1:
        raise ConfigurationError(f"degradation p must be in (0, 1], got {p}")
    if h_max < 1:
        raise ConfigurationError(f"h_max must be >= 1, got {h_max}")
    size = h_max + 1
    matrix = [[0.0] * size for _ in range(size)]
    for h in range(h_max):
        matrix[h][h] = 1.0 - p
        matrix[h][h + 1] = p
    matrix[h_max][h_max] = 1.0
    return matrix


def validate_degradation_matrix(matrix: Sequence[Sequence[float]]) -> None:
    """Check squareness, non-negativity, and row-stochasticity."""
    size = len(matrix)
    if size < 2:
        raise ConfigurationError(
            f"a degradation matrix needs >= 2 health states, got {size}"
        )
    for h, row in enumerate(matrix):
        if len(row) != size:
            raise ConfigurationError(
                f"degradation matrix row {h} has {len(row)} entries, "
                f"expected {size} (matrix must be square)"
            )
        if any(entry < 0 for entry in row):
            raise ConfigurationError(
                f"degradation matrix row {h} has a negative probability"
            )
        total = sum(row)
        if abs(total - 1.0) > _ROW_SUM_TOL:
            raise ConfigurationError(
                f"degradation matrix row {h} sums to {total!r}, not 1 "
                "(rows must be probability distributions)"
            )


@dataclass
class DegradationModel:
    """Per-PCPU Markov health process with capacity scaling.

    Attributes:
        p: single-step degradation probability used when ``matrix`` is
            not given (see :func:`generate_degradation_matrix`).
        h_max: terminal health state (``>= 1``); ignored in favor of
            the matrix size when ``matrix`` is given.
        mtbe: mean time between degradation evaluations per PCPU
            (ticks; each evaluation draws one transition from the
            current state's matrix row).
        matrix: explicit ``(h_max+1) x (h_max+1)`` row-stochastic
            transition matrix; ``None`` generates the standard one.
        capacity: effective capacity per health state, each in
            ``[0, 1]``; ``None`` defaults to the linear ramp
            ``1 - h / h_max``.  A PCPU at health ``h`` delivers a
            ``capacity[h]`` fraction of its ticks to the hosted VCPU.
        initial_health: optional per-PCPU starting health (length
            checked against the system's PCPU count at validation).
            A PCPU starting at ``h_max`` is out of service from t=0 —
            the forced-degradation hook used by tests and ablations.
    """

    p: float = 0.1
    h_max: int = 4
    mtbe: float = 50.0
    matrix: Optional[List[List[float]]] = None
    capacity: Optional[List[float]] = None
    initial_health: Optional[List[int]] = None

    def __post_init__(self) -> None:
        if self.matrix is not None:
            validate_degradation_matrix(self.matrix)
            self.h_max = len(self.matrix) - 1
        if self.h_max < 1:
            raise ConfigurationError(f"h_max must be >= 1, got {self.h_max}")
        if self.matrix is None and not 0 < self.p <= 1:
            raise ConfigurationError(
                f"degradation p must be in (0, 1], got {self.p}"
            )
        if self.mtbe <= 0:
            raise ConfigurationError(f"mtbe must be > 0, got {self.mtbe}")
        if self.capacity is not None:
            if len(self.capacity) != self.h_max + 1:
                raise ConfigurationError(
                    f"capacity needs {self.h_max + 1} entries (one per "
                    f"health state), got {len(self.capacity)}"
                )
            if any(not 0.0 <= c <= 1.0 for c in self.capacity):
                raise ConfigurationError(
                    "capacity entries must be in [0, 1], got "
                    f"{self.capacity}"
                )
        if self.initial_health is not None:
            for i, h in enumerate(self.initial_health):
                if not 0 <= int(h) <= self.h_max:
                    raise ConfigurationError(
                        f"initial_health[{i}] = {h} outside 0..{self.h_max}"
                    )

    def effective_matrix(self) -> List[List[float]]:
        """The transition matrix (explicit or generated)."""
        if self.matrix is not None:
            return [list(row) for row in self.matrix]
        return generate_degradation_matrix(self.p, self.h_max)

    def effective_capacity(self) -> List[float]:
        """Capacity per health state (explicit or the linear ramp)."""
        if self.capacity is not None:
            return list(self.capacity)
        return [1.0 - h / self.h_max for h in range(self.h_max + 1)]

    def health_at(self, pcpu_index: int) -> int:
        """Starting health for one PCPU (0 unless initial_health says)."""
        if self.initial_health is None or pcpu_index >= len(self.initial_health):
            return 0
        return int(self.initial_health[pcpu_index])

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form; inverse of :meth:`from_dict`."""
        return {
            "p": self.p,
            "h_max": self.h_max,
            "mtbe": self.mtbe,
            "matrix": [list(row) for row in self.matrix] if self.matrix else None,
            "capacity": list(self.capacity) if self.capacity else None,
            "initial_health": (
                list(self.initial_health) if self.initial_health else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "DegradationModel":
        known = {"p", "h_max", "mtbe", "matrix", "capacity", "initial_health"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown degradation keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(
            p=float(payload.get("p", 0.1)),
            h_max=int(payload.get("h_max", 4)),
            mtbe=float(payload.get("mtbe", 50.0)),
            matrix=payload.get("matrix"),
            capacity=payload.get("capacity"),
            initial_health=payload.get("initial_health"),
        )


@dataclass
class MaintenancePolicy:
    """Repair strategy for degraded/failed PCPUs, with bounded crews.

    Attributes:
        policy: ``"corrective"`` (repair only terminal failures),
            ``"periodic"`` (additionally overhaul every PCPU every
            ``period`` ticks), or ``"condition_based"`` (additionally
            repair as soon as health reaches ``threshold``).  All
            policies repair FAILED PCPUs — a dead core is never left
            dead while a crew is free.
        crews: repair crews shared by all PCPUs (``>= 1``); at most
            this many maintenances run concurrently.
        mttr: mean time to repair (ticks; exponential).
        period: periodic-policy overhaul interval (ticks).
        threshold: condition-based trigger health (``>= 1``).
    """

    policy: str = "corrective"
    crews: int = 1
    mttr: float = 20.0
    period: float = 100.0
    threshold: int = 2

    def __post_init__(self) -> None:
        if self.policy not in MAINTENANCE_POLICIES:
            raise ConfigurationError(
                f"maintenance policy must be one of {MAINTENANCE_POLICIES}, "
                f"got {self.policy!r}"
            )
        if self.crews < 1:
            raise ConfigurationError(f"crews must be >= 1, got {self.crews}")
        if self.mttr <= 0:
            raise ConfigurationError(f"mttr must be > 0, got {self.mttr}")
        if self.period <= 0:
            raise ConfigurationError(f"period must be > 0, got {self.period}")
        if self.threshold < 1:
            raise ConfigurationError(
                f"threshold must be >= 1, got {self.threshold}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form; inverse of :meth:`from_dict`."""
        return {
            "policy": self.policy,
            "crews": self.crews,
            "mttr": self.mttr,
            "period": self.period,
            "threshold": self.threshold,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MaintenancePolicy":
        known = {"policy", "crews", "mttr", "period", "threshold"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown maintenance keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(
            policy=str(payload.get("policy", "corrective")),
            crews=int(payload.get("crews", 1)),
            mttr=float(payload.get("mttr", 20.0)),
            period=float(payload.get("period", 100.0)),
            threshold=int(payload.get("threshold", 2)),
        )


@dataclass
class HVOverheadModel:
    """Per-world-switch hypervisor cost.

    Attributes:
        cost: ticks consumed by the hypervisor after every schedule-in
            before the guest receives its first work tick (``>= 0``;
            0 disables the layer).  The VCPU's timeslice keeps counting
            down during those ticks, so a ``cost``-tick overhead
            shortens every tenure by ``cost`` useful ticks.
    """

    cost: int = 2

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise ConfigurationError(
                f"hv overhead cost must be >= 0, got {self.cost}"
            )
        self.cost = int(self.cost)

    @property
    def enabled(self) -> bool:
        return self.cost > 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form; inverse of :meth:`from_dict`."""
        return {"cost": self.cost}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "HVOverheadModel":
        known = {"cost"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown hv_overhead keys {sorted(unknown)}; expected {sorted(known)}"
            )
        return cls(cost=int(payload.get("cost", 2)))
