"""The scheduler decision guard: fault isolation for plugged algorithms.

The paper invites users to plug in arbitrary scheduling functions; a
buggy one must not take the whole experiment down with it.  The guard
wraps every :meth:`SchedulingAlgorithm.schedule` call and

* converts raised exceptions and invalid decisions (double-assigned
  PCPU, out-of-range ids, schedule_in on a FAILED PCPU, ...) into
  structured :class:`~repro.resilience.failures.ReplicationFailure`
  records instead of lost tracebacks;
* in ``fail_fast`` mode (the default) re-raises as
  :class:`~repro.errors.SchedulingError` so the replication dies
  immediately — the executor then retries it under a fresh seed;
* in ``degrade`` mode (opt-in) discards the faulty tick's decisions
  (no model state is corrupted — validation runs *before* apply) and,
  after ``quarantine_after`` consecutive faults, quarantines the
  algorithm for the rest of the replication, falling back to plain
  round-robin so the system keeps making progress.  The replication's
  results are then flagged ``degraded``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..errors import ConfigurationError, SchedulingError
from ..observability import trace as _trace
from ..schedulers.interface import (
    PCPUView,
    SchedulingAlgorithm,
    VCPUHostView,
    validate_decisions,
)
from ..schedulers.round_robin import RoundRobinScheduler
from .failures import FailureKind, ReplicationFailure

GUARD_MODES = ("fail_fast", "degrade")


@dataclass
class GuardPolicy:
    """How the guard reacts to scheduler faults.

    Attributes:
        mode: ``"fail_fast"`` (default — re-raise, let the executor
            retry the replication) or ``"degrade"`` (drop the faulty
            tick, quarantine after repeated faults).
        quarantine_after: consecutive faults before the inner algorithm
            is quarantined and round-robin takes over (degrade mode).
    """

    mode: str = "fail_fast"
    quarantine_after: int = 3

    def validate(self) -> None:
        if self.mode not in GUARD_MODES:
            raise ConfigurationError(
                f"guard mode must be one of {GUARD_MODES}, got {self.mode!r}"
            )
        if self.quarantine_after < 1:
            raise ConfigurationError(
                f"quarantine_after must be >= 1, got {self.quarantine_after}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {"mode": self.mode, "quarantine_after": self.quarantine_after}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "GuardPolicy":
        return cls(
            mode=payload.get("mode", "fail_fast"),
            quarantine_after=int(payload.get("quarantine_after", 3)),
        )


def _clear_decisions(vcpus: List[VCPUHostView]) -> None:
    """Discard every output field a faulty schedule call may have set."""
    for view in vcpus:
        view.schedule_in = False
        view.schedule_out = False
        view.next_timeslice = None
        view.next_pcpu = None


class GuardedScheduler(SchedulingAlgorithm):
    """Wraps an algorithm with fault isolation per :class:`GuardPolicy`.

    Attributes:
        failures: the tick-level faults observed so far this replication.
        quarantined: True once the inner algorithm has been benched and
            the round-robin fallback is driving.
    """

    def __init__(
        self, inner: SchedulingAlgorithm, policy: Optional[GuardPolicy] = None
    ) -> None:
        if not isinstance(inner, SchedulingAlgorithm):
            raise ConfigurationError(
                f"guard needs a SchedulingAlgorithm, got {type(inner).__name__}"
            )
        policy = policy if policy is not None else GuardPolicy()
        policy.validate()
        super().__init__(timeslice=inner.timeslice)
        self.name = f"guard({inner.name})"
        self.inner = inner
        self.policy = policy
        self.failures: List[ReplicationFailure] = []
        self.quarantined = False
        self._consecutive_faults = 0
        self._fallback = RoundRobinScheduler(timeslice=inner.timeslice)

    def reset(self) -> None:
        super().reset()
        self.inner.reset()
        self._fallback.reset()
        self.failures.clear()
        self.quarantined = False
        self._consecutive_faults = 0

    def schedule(
        self,
        vcpus: List[VCPUHostView],
        num_vcpu: int,
        pcpus: List[PCPUView],
        num_pcpu: int,
        timestamp: float,
    ) -> bool:
        if self.quarantined:
            return self._fallback.schedule(vcpus, num_vcpu, pcpus, num_pcpu, timestamp)
        try:
            decided = self.inner.schedule(vcpus, num_vcpu, pcpus, num_pcpu, timestamp)
            validate_decisions(
                vcpus, pcpus, num_pcpu, self.inner.timeslice, self.inner.name
            )
        except Exception as exc:  # noqa: BLE001 — isolating arbitrary user code
            return self._on_fault(exc, vcpus, num_vcpu, pcpus, num_pcpu, timestamp)
        self._consecutive_faults = 0
        return bool(decided)

    def _on_fault(
        self,
        exc: Exception,
        vcpus: List[VCPUHostView],
        num_vcpu: int,
        pcpus: List[PCPUView],
        num_pcpu: int,
        timestamp: float,
    ) -> bool:
        kind = (
            FailureKind.INVALID_DECISION
            if isinstance(exc, SchedulingError)
            else FailureKind.EXCEPTION
        )
        self.failures.append(
            ReplicationFailure(
                kind=kind,
                message=f"{type(exc).__name__}: {exc}",
                scheduler=self.inner.name,
                sim_time=timestamp,
            )
        )
        tracer = _trace._ACTIVE
        if tracer is not None:
            tracer.emit(
                _trace.GUARD_FAULT,
                time=timestamp,
                scheduler=self.inner.name,
                fault_kind=kind,
                message=f"{type(exc).__name__}: {exc}"[:200],
            )
        if self.policy.mode == "fail_fast":
            raise SchedulingError(
                f"{self.inner.name} faulted at t={timestamp:g}: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        # Degrade mode: the faulty tick's decisions are discarded whole —
        # validation ran before any state was touched, so the model is
        # still consistent and this tick simply makes no decision.
        _clear_decisions(vcpus)
        self._consecutive_faults += 1
        if self._consecutive_faults >= self.policy.quarantine_after:
            self.quarantined = True
            if tracer is not None:
                tracer.emit(
                    _trace.GUARD_QUARANTINE,
                    time=timestamp,
                    scheduler=self.inner.name,
                    faults=len(self.failures),
                )
            self._fallback.reset()
            return self._fallback.schedule(vcpus, num_vcpu, pcpus, num_pcpu, timestamp)
        return False

    def __repr__(self) -> str:
        state = "quarantined" if self.quarantined else self.policy.mode
        return f"GuardedScheduler({self.inner!r}, {state})"
