"""The resilience layer: production-grade experiment infrastructure.

The paper's experiment protocol ("replicate until 95% confidence")
assumed every replication finishes; a user-plugged scheduler that
crashes, stalls, or emits corrupt decisions used to take the whole
sweep down with it.  This package makes the runner survive all three:

* :mod:`~repro.resilience.executor` — parallel replications with
  per-attempt wall-clock timeouts and deterministic retry/reseed;
* :mod:`~repro.resilience.checkpoint` — streaming JSONL checkpoints so
  interrupted runs resume without recomputation;
* :mod:`~repro.resilience.guard` — the scheduler decision guard:
  fault records, optional quarantine, round-robin fallback;
* :mod:`~repro.resilience.chaos` — deterministic, seeded fault
  injection so the machinery above is itself tested end-to-end;
* :mod:`~repro.resilience.failures` — the structured
  :class:`ReplicationFailure` records everything else emits;
* :mod:`~repro.resilience.result_cache` — the persistent
  content-addressed replication result cache (memoize across
  invocations, invalidated by code fingerprint);
* :mod:`~repro.resilience.degradation` — multi-state PCPU health
  (Markov degradation matrices), maintenance policies with bounded
  repair crews, and per-world-switch hypervisor overhead.
"""

from .chaos import CORRUPT_KINDS, ChaosScheduler, ChaosSpec, InjectedFault
from .checkpoint import CheckpointStore, fingerprint
from .degradation import (
    MAINTENANCE_POLICIES,
    DegradationModel,
    HVOverheadModel,
    MaintenancePolicy,
    generate_degradation_matrix,
    validate_degradation_matrix,
)
from .executor import (
    ExecutionOutcome,
    ReplicationOutcome,
    ResilienceConfig,
    retry_seed,
    run_replications,
)
from .failures import FailureKind, ReplicationFailure, failure_summary
from .guard import GUARD_MODES, GuardedScheduler, GuardPolicy
from .result_cache import ResultCache, code_fingerprint

__all__ = [
    "ChaosScheduler",
    "ChaosSpec",
    "CheckpointStore",
    "CORRUPT_KINDS",
    "DegradationModel",
    "ExecutionOutcome",
    "FailureKind",
    "HVOverheadModel",
    "MAINTENANCE_POLICIES",
    "MaintenancePolicy",
    "GUARD_MODES",
    "GuardedScheduler",
    "GuardPolicy",
    "InjectedFault",
    "ReplicationFailure",
    "ReplicationOutcome",
    "ResilienceConfig",
    "ResultCache",
    "code_fingerprint",
    "failure_summary",
    "fingerprint",
    "generate_degradation_matrix",
    "retry_seed",
    "run_replications",
    "validate_degradation_matrix",
]
