"""Persistent content-addressed replication result cache.

The PR-1 checkpoint answers "resume *this* run"; this store answers
"never recompute a replication any run has already finished".  Every
completed replication is written to an on-disk JSON file keyed by the
blake2b digest of its full identity:

* the canonical spec JSON (``SystemSpec.to_dict()``, sorted keys),
* the enablement engine name,
* the root seed and the replication index,
* whether extra probes were collected,

with the **code fingerprint** — a digest over every ``.py`` file of the
``repro`` package — as a directory level above the entries.  Because a
replication is a pure function of exactly those inputs (the determinism
contract the differential suites assert), a hit can be trusted without
re-running anything; and because any code change moves the fingerprint
directory, stale results can never leak across versions — invalidation
is free and total.

Safety rules (enforced by the executor, documented here):

* only clean results are stored — attempt 0, not degraded, no failure
  records — so a cache hit is always the value the legacy serial
  runner would produce;
* caching is disabled entirely when a guard or chaos plan is active
  (their outputs are not a function of the key), and for specs whose
  ``to_dict`` does not round-trip to JSON (a ``repr`` fallback could
  embed memory addresses and collide across processes);
* writes are atomic (temp file + ``os.replace``), so a killed process
  leaves no torn entries; a corrupt or unreadable entry reads as a
  miss, never as an error.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from typing import Any, Dict, Optional

#: Directory-name prefix length for the two fan-out levels.
_FINGERPRINT_CHARS = 12
_SHARD_CHARS = 2

_code_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """Digest of every ``.py`` file in the ``repro`` package.

    Computed once per process (the package does not change under a
    running interpreter) and used as a cache-directory level: any code
    change — engine, scheduler, metrics — silently retires every cached
    result from the previous version.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        digest = hashlib.blake2b(digest_size=16)
        for dirpath, dirnames, filenames in os.walk(package_root):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                relative = os.path.relpath(path, package_root)
                digest.update(relative.encode("utf-8"))
                digest.update(b"\0")
                with open(path, "rb") as handle:
                    digest.update(handle.read())
                digest.update(b"\0")
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


def cacheable_spec_payload(spec: Any) -> Optional[Any]:
    """The spec's canonical JSON identity, or None if it has none.

    A spec that does not serialize (live ``Distribution`` instances,
    user subclasses) would fall back to ``repr``, which may embed
    memory addresses — deterministic within a process but colliding
    *across* processes.  Such specs simply cannot be cached.
    """
    try:
        payload = spec.to_dict()
        json.dumps(payload, sort_keys=True)
    except Exception:  # noqa: BLE001 — any serialization trouble = no cache
        return None
    return payload


class ResultCache:
    """On-disk content-addressed store of replication results.

    Args:
        root: cache directory; created lazily on the first write.
            Entries live at ``root/<code_fp>/<shard>/<key>.json``.

    Example:
        >>> import tempfile
        >>> cache = ResultCache(tempfile.mkdtemp())
        >>> key = cache.key({"scheduler": "rrs"}, "compiled", 0, 3)
        >>> cache.load(key) is None
        True
    """

    def __init__(self, root: str) -> None:
        self.root = str(root)
        self.fingerprint = code_fingerprint()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        # A shared handle (see :func:`shared_cache`) is read and written
        # from many service jobs at once; the store itself is safe under
        # concurrency (atomic writes, equal values), the counters need
        # the lock to stay exact.
        self._lock = threading.Lock()

    def key(
        self,
        spec_payload: Any,
        engine: str,
        root_seed: int,
        replication: int,
        extra_probes: bool = False,
    ) -> str:
        """The content digest of one replication's full identity."""
        text = json.dumps(
            {
                "spec": spec_payload,
                "engine": engine,
                "root_seed": root_seed,
                "replication": replication,
                "extra_probes": extra_probes,
            },
            sort_keys=True,
        )
        return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(
            self.root,
            self.fingerprint[:_FINGERPRINT_CHARS],
            key[:_SHARD_CHARS],
            f"{key}.json",
        )

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored result payload, or None (miss / unreadable entry)."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            with self._lock:
                self.misses += 1
            return None
        if not isinstance(payload, dict) or not payload.get("ok"):
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return payload

    def store(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically persist one result (last writer wins, all equal)."""
        path = self._path(key)
        temp = f"{path}.tmp.{os.getpid()}"
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(temp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(temp, path)
        except OSError:
            # A full or read-only disk degrades to "no cache", never an error.
            try:
                os.remove(temp)
            except OSError:
                pass
            return
        with self._lock:
            self.writes += 1

    def stats(self) -> Dict[str, Any]:
        """This handle's traffic counters (hit ratio for dashboards)."""
        with self._lock:
            hits, misses, writes = self.hits, self.misses, self.writes
        looked = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "writes": writes,
            "hit_ratio": (hits / looked) if looked else 0.0,
        }


# -- shared multi-tenant handles ------------------------------------------
#
# Many concurrent service jobs — typically different tenants submitting
# overlapping experiments — read and write the same content-addressed
# store.  The *store* needs no coordination (keys are pure content
# digests, writes are atomic, and every writer of a key writes the same
# bytes), but sharing one handle per root directory makes the traffic
# counters aggregate across jobs, which is what a server reports as its
# cache-hit ratio.

_SHARED: Dict[str, ResultCache] = {}
_SHARED_LOCK = threading.Lock()


def shared_cache(root: str) -> ResultCache:
    """The process-wide :class:`ResultCache` handle for ``root``.

    Repeated calls with the same directory return the same instance, so
    counters accumulate across every experiment bound to it.
    """
    key = os.path.abspath(str(root))
    with _SHARED_LOCK:
        cache = _SHARED.get(key)
        if cache is None:
            cache = _SHARED[key] = ResultCache(key)
        return cache
