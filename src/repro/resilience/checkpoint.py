"""Streaming JSONL checkpoints for experiment runs.

Every resolved replication is appended to the checkpoint as one JSON
line the moment it finishes, so an interrupted ``run_experiment`` or
``run_sweep`` loses at most the replication in flight.  On resume, the
store replays completed replications and the executor recomputes only
what is missing — producing byte-identical result tables to an
uninterrupted run.

File format (one JSON object per line):

* ``{"kind": "scope", "scope": ..., "fingerprint": ...}`` — opens a
  namespace (one per experiment; sweeps use one scope per point) and
  pins the experiment fingerprint (spec + seed + protocol), so a stale
  checkpoint cannot silently contaminate a different experiment;
* ``{"kind": "replication", "scope": ..., "replication": ..., ...}`` —
  one resolved replication: its metrics (or permanent failure), the
  attempt that succeeded, failure records, and the degraded flag.

A truncated final line (the process died mid-write) is tolerated and
dropped; corruption anywhere else raises
:class:`~repro.errors.CheckpointError`.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional, Tuple

from ..errors import CheckpointError


def fingerprint(payload: Any) -> str:
    """Stable hex digest of an arbitrary JSON-able payload.

    Falls back to ``repr`` for objects that do not serialize (e.g. a
    spec holding live :class:`Distribution` instances), which is still
    deterministic within one code version.
    """
    try:
        text = json.dumps(payload, sort_keys=True, default=repr)
    except (TypeError, ValueError):
        text = repr(payload)
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()


class CheckpointStore:
    """Append-only JSONL store of resolved replications.

    Args:
        path: checkpoint file; created (with parent directories) on the
            first write.
        resume: load existing records instead of starting fresh.  When
            False an existing file is truncated — a deliberate new run
            overwrites stale state.
    """

    def __init__(self, path: str, resume: bool = False) -> None:
        self.path = str(path)
        self._scopes: Dict[str, str] = {}
        self._records: Dict[Tuple[str, int], Dict[str, Any]] = {}
        if resume and os.path.exists(self.path):
            self._load()
        elif not resume and os.path.exists(self.path):
            os.remove(self.path)
        self._handle = None

    # -- reading ------------------------------------------------------------

    def _load(self) -> None:
        with open(self.path, "rb") as handle:
            raw = handle.read()
        lines = raw.decode("utf-8").splitlines()
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if number == len(lines):
                    # Torn final write from a killed process: drop the
                    # fragment from the file too, so records appended by
                    # this resumed run start on a clean line instead of
                    # gluing onto it (which would corrupt the file for
                    # every *future* resume).
                    os.truncate(self.path, len(raw) - len(line.encode("utf-8")))
                    break
                raise CheckpointError(
                    f"{self.path}:{number}: corrupt checkpoint line: {exc}"
                ) from exc
            kind = record.get("kind")
            if kind == "scope":
                self._scopes[record["scope"]] = record["fingerprint"]
            elif kind == "replication":
                key = (record["scope"], int(record["replication"]))
                self._records[key] = record
            else:
                raise CheckpointError(
                    f"{self.path}:{number}: unknown record kind {kind!r}"
                )

    def begin_scope(self, scope: str, scope_fingerprint: str) -> None:
        """Open (or re-validate) one experiment namespace.

        Raises:
            CheckpointError: the scope exists with a different
                fingerprint — this checkpoint belongs to a different
                experiment and must not be resumed against.
        """
        existing = self._scopes.get(scope)
        if existing is not None:
            if existing != scope_fingerprint:
                raise CheckpointError(
                    f"checkpoint scope {scope!r} was written by a different "
                    f"experiment (fingerprint {existing[:12]}… != "
                    f"{scope_fingerprint[:12]}…); refusing to resume"
                )
            return
        self._scopes[scope] = scope_fingerprint
        self._append({"kind": "scope", "scope": scope, "fingerprint": scope_fingerprint})

    def get(self, scope: str, replication: int) -> Optional[Dict[str, Any]]:
        """The stored record for one replication, or None."""
        return self._records.get((scope, replication))

    def replications(self, scope: str) -> Dict[int, Dict[str, Any]]:
        """All stored records of one scope, keyed by replication index."""
        return {
            rep: record
            for (record_scope, rep), record in self._records.items()
            if record_scope == scope
        }

    # -- writing ------------------------------------------------------------

    def record(self, scope: str, replication: int, payload: Dict[str, Any]) -> None:
        """Persist one resolved replication (idempotent per key)."""
        if scope not in self._scopes:
            raise CheckpointError(
                f"scope {scope!r} was never opened with begin_scope()"
            )
        key = (scope, int(replication))
        if key in self._records:
            return
        record = {"kind": "replication", "scope": scope, "replication": int(replication)}
        record.update(payload)
        self._records[key] = record
        self._append(record)

    def _append(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
