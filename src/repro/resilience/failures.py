"""Structured failure records for the resilient experiment engine.

Every fault the resilience layer observes — a scheduler raising, an
invalid decision, a replication timing out, a worker process dying —
becomes one :class:`ReplicationFailure` instead of a lost traceback.
Records ride on :class:`~repro.core.framework.RunResult` (tick-level
faults caught by the decision guard) and are aggregated onto
:class:`~repro.core.results.ExperimentResult` so partial results are
reported honestly.

Records are plain data and round-trip through dicts, so they stream to
JSONL checkpoints and survive process boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional


class FailureKind:
    """The closed set of failure categories the resilience layer emits."""

    EXCEPTION = "exception"  # the scheduler (or model) raised
    INVALID_DECISION = "invalid-decision"  # decisions failed validation
    TIMEOUT = "timeout"  # replication exceeded its wall-clock budget
    WORKER_CRASH = "worker-crash"  # the worker process died
    RETRIES_EXHAUSTED = "retries-exhausted"  # every attempt failed
    DEGRADATION = "degradation"  # degradation layer misconfiguration
    MAINTENANCE = "maintenance"  # maintenance policy misconfiguration
    UNKNOWN = "unknown"  # deserialized kind outside the closed set

    ALL = (
        EXCEPTION,
        INVALID_DECISION,
        TIMEOUT,
        WORKER_CRASH,
        RETRIES_EXHAUSTED,
        DEGRADATION,
        MAINTENANCE,
        UNKNOWN,
    )


@dataclass
class ReplicationFailure:
    """One observed fault, localized to a replication attempt.

    Attributes:
        kind: one of :class:`FailureKind`.
        message: human-readable one-liner (``TypeName: text``).
        replication: replication index the fault belongs to (-1 until
            the executor stamps it — the decision guard does not know
            which replication it is running in).
        attempt: retry attempt the fault occurred on (0 = first run).
        scheduler: name of the algorithm that faulted, if known.
        sim_time: simulated clock when a tick-level fault hit (``None``
            for replication-level faults such as timeouts).
    """

    kind: str
    message: str
    replication: int = -1
    attempt: int = 0
    scheduler: str = ""
    sim_time: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form; inverse of :meth:`from_dict`."""
        return {
            "kind": self.kind,
            "message": self.message,
            "replication": self.replication,
            "attempt": self.attempt,
            "scheduler": self.scheduler,
            "sim_time": self.sim_time,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ReplicationFailure":
        # Checkpoints from other versions may carry kinds this version
        # never emits; fold them into UNKNOWN instead of letting free
        # strings leak into the closed set downstream code sorts on.
        kind = str(payload["kind"])
        if kind not in FailureKind.ALL:
            kind = FailureKind.UNKNOWN
        return cls(
            kind=kind,
            message=str(payload["message"]),
            replication=int(payload.get("replication", -1)),
            attempt=int(payload.get("attempt", 0)),
            scheduler=str(payload.get("scheduler", "")),
            sim_time=payload.get("sim_time"),
        )

    def __str__(self) -> str:
        where = f"replication {self.replication}" if self.replication >= 0 else "replication ?"
        if self.attempt:
            where += f" (attempt {self.attempt})"
        if self.sim_time is not None:
            where += f" at t={self.sim_time:g}"
        return f"[{self.kind}] {where}: {self.message}"


def failure_summary(failures: Iterable[ReplicationFailure]) -> str:
    """Compact ``kind xN`` summary of a failure list (for CLI output).

    Never returns an empty string: a clean run reads ``"no failures"``
    so CLI tables and logs have no blank fields.
    """
    counts: Dict[str, int] = {}
    for failure in failures:
        counts[failure.kind] = counts.get(failure.kind, 0) + 1
    if not counts:
        return "no failures"
    return ", ".join(f"{kind} x{n}" for kind, n in sorted(counts.items()))
