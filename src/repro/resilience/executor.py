"""The resilient replication executor.

``run_experiment`` used to be a bare serial loop: one hung or crashing
replication killed the whole sweep and lost every completed sample.
This module is the production-infrastructure replacement:

* **parallelism** — replications fan out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` (``jobs=N``);
* **timeouts** — each replication attempt gets a wall-clock budget; a
  stalled worker is abandoned (its slot recycles when the stall ends)
  and the attempt is treated as failed;
* **retry with reseed** — a failed attempt re-runs under a fresh seed
  drawn deterministically from the same seed family
  (:func:`retry_seed`), so results are reproducible and independent of
  which other replications ran or failed;
* **checkpointing** — every resolved replication streams to a JSONL
  :class:`~repro.resilience.checkpoint.CheckpointStore`, so an
  interrupted run resumes without recomputation.

Determinism contract: replication *r*, attempt 0 uses exactly the
streams the legacy serial loop used, and the convergence decision is
taken over samples in replication order — so ``jobs=8`` produces the
same :class:`~repro.core.results.ExperimentResult` as ``jobs=1``, and a
killed-then-resumed run the same tables as an uninterrupted one.
Replications computed beyond the convergence cut (parallel over-run)
are discarded, never mixed in.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..des.random_streams import derive_seed
from ..errors import ConfigurationError, ReplicationError
from ..metrics.stats import ConvergenceMonitor
from ..observability import trace as _trace
from .chaos import ChaosSpec
from .checkpoint import CheckpointStore, fingerprint
from .failures import FailureKind, ReplicationFailure, failure_summary
from .guard import GuardPolicy
from .result_cache import ResultCache, cacheable_spec_payload, shared_cache

ConvergenceCheck = Callable[[List[Dict[str, float]]], bool]


@dataclass
class ResilienceConfig:
    """Knobs of the resilient executor (all opt-in; defaults are safe).

    Attributes:
        jobs: worker processes (1 = run in-process; >1 or a timeout
            switches to a :class:`ProcessPoolExecutor`).
        timeout: wall-clock seconds per replication attempt (``None``
            disables; setting it forces process isolation even at
            ``jobs=1`` so a stall can actually be abandoned).
        retries: extra attempts per replication after the first.
        backoff: base of the exponential retry backoff in seconds
            (attempt *a* sleeps ``backoff * 2**a``).
        checkpoint: JSONL checkpoint path (``None`` disables).
        resume: load the checkpoint instead of starting fresh.
        checkpoint_scope: namespace inside the checkpoint file
            (``run_sweep`` gives every point its own scope).
        guard: decision-guard policy applied around the scheduler
            (``None`` = unguarded, exactly the legacy behavior).
        chaos: deterministic fault-injection plan (testing only).
        keep_partial: when a replication exhausts its retries, record
            the failure and continue with the surviving replications
            instead of raising :class:`~repro.errors.ReplicationError`.
        incremental: legacy enablement-engine toggle (False forces the
            full-rescan reference engine); ignored when ``engine`` is set.
        engine: enablement engine for every replication —
            ``"incremental"``, ``"rescan"``, ``"compiled"``, or
            ``"batch"``; results are bit-identical across all four.
            ``"batch"`` additionally lets the serial driver and the
            sweep pool dispatch groups of clean (unguarded, chaos-free)
            replications through one shared calendar.
        batch_width: lanes per batch-dispatch group (``None`` = the
            framework default); only meaningful with ``engine="batch"``.
        batch_wave_window: wave-calendar interleaving granularity for
            batch groups (``None`` = the engine's ``WAVE_WINDOW``).
            Lanes are independent, so any positive value is
            result-identical — the knob trades scheduling overhead
            against cache locality.
        reuse: reuse the built (and, for compiled, lowered) model across
            replications of the same spec — once per process, so each
            pool worker compiles once and resets thereafter.
        cache_dir: persistent result-cache directory (``None`` disables).
            Clean replication results are memoized across invocations,
            keyed by (spec JSON, engine, root seed, replication index)
            under the current code fingerprint; guard/chaos runs and
            non-serializable specs are never cached.
    """

    jobs: int = 1
    timeout: Optional[float] = None
    retries: int = 2
    backoff: float = 0.05
    checkpoint: Optional[str] = None
    resume: bool = False
    checkpoint_scope: str = "experiment"
    guard: Optional[GuardPolicy] = None
    chaos: Optional[ChaosSpec] = None
    keep_partial: bool = False
    incremental: bool = True
    engine: Optional[str] = None
    reuse: bool = True
    cache_dir: Optional[str] = None
    batch_width: Optional[int] = None
    batch_wave_window: Optional[float] = None

    def validate(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {self.timeout}")
        if self.retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ConfigurationError(f"backoff must be >= 0, got {self.backoff}")
        if self.resume and not self.checkpoint:
            raise ConfigurationError("resume=True requires a checkpoint path")
        if self.guard is not None:
            self.guard.validate()
        if self.chaos is not None:
            self.chaos.validate()
        if self.engine is not None and self.engine not in (
            "incremental",
            "rescan",
            "compiled",
            "batch",
        ):
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; "
                "expected 'incremental', 'rescan', 'compiled', or 'batch'"
            )
        if self.batch_width is not None and self.batch_width < 1:
            raise ConfigurationError(
                f"batch_width must be >= 1, got {self.batch_width}"
            )
        if self.batch_wave_window is not None and not self.batch_wave_window > 0:
            raise ConfigurationError(
                f"batch_wave_window must be > 0, got {self.batch_wave_window}"
            )


def retry_seed(root_seed: int, replication: int, attempt: int) -> int:
    """The seed-family member for one replication attempt.

    Attempt 0 keeps the experiment's root seed (bit-identical to the
    legacy serial runner); retries derive a fresh root from
    ``(root_seed, replication, attempt)`` alone, so the reseed is
    deterministic and independent of execution order or of which other
    replications failed.
    """
    if attempt == 0:
        return root_seed
    return derive_seed(root_seed, f"retry:{replication}", attempt)


@dataclass
class ReplicationOutcome:
    """One resolved replication: its sample, or its permanent failure."""

    replication: int
    metrics: Optional[Dict[str, float]]
    attempt: int = 0
    completions: int = 0
    degraded: bool = False
    failures: List[ReplicationFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.metrics is not None

    def to_payload(self) -> Dict[str, Any]:
        """Checkpoint-record body (JSON-safe)."""
        return {
            "ok": self.ok,
            "metrics": self.metrics,
            "attempt": self.attempt,
            "completions": self.completions,
            "degraded": self.degraded,
            "failures": [f.to_dict() for f in self.failures],
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "ReplicationOutcome":
        return cls(
            replication=int(record["replication"]),
            metrics=record.get("metrics") if record.get("ok") else None,
            attempt=int(record.get("attempt", 0)),
            completions=int(record.get("completions", 0)),
            degraded=bool(record.get("degraded", False)),
            failures=[
                ReplicationFailure.from_dict(f) for f in record.get("failures", [])
            ],
        )


@dataclass
class ExecutionOutcome:
    """What the executor hands back to ``run_experiment``."""

    samples: List[Dict[str, float]]  # included samples, replication order
    replications: int  # number of included samples
    failures: List[ReplicationFailure]
    degraded: bool
    executed: int = 0  # replication attempts actually simulated
    cache_hits: int = 0  # replications satisfied from the result cache


@dataclass
class _Task:
    """One replication attempt, picklable for the process pool.

    When ``batch`` is set the task covers that whole group of
    replication indices at attempt 0 (``replication`` holds the first
    index, for affinity/bookkeeping); the worker answers with a
    ``batch`` list of per-replication payloads in the same order.
    """

    spec: Any  # SystemSpec (kept loose: no core import at module level)
    replication: int
    attempt: int
    root_seed: int
    extra_probes: bool
    guard: Optional[GuardPolicy]
    chaos: Optional[ChaosSpec]
    incremental: bool = True
    engine: Optional[str] = None
    reuse: bool = True
    batch: Optional[Tuple[int, ...]] = None
    wave_window: Optional[float] = None


def _run_payload(run: Any) -> Dict[str, Any]:
    return {
        "ok": True,
        "metrics": run.metrics,
        "completions": run.completions,
        "degraded": run.degraded,
        "failures": [f.to_dict() for f in run.failures],
    }


def _execute_task(task: _Task) -> Dict[str, Any]:
    """Worker entry: run one attempt, never raise across the boundary."""
    # Local imports: break the core <-> resilience import cycle.
    if task.batch:
        from ..core.framework import simulate_batch

        try:
            runs = simulate_batch(
                task.spec,
                list(task.batch),
                root_seed=task.root_seed,  # batch groups are always attempt 0
                extra_probes=task.extra_probes,
                guard=task.guard,
                chaos=task.chaos,
                engine=task.engine,
                reuse=task.reuse,
                wave_window=task.wave_window,
            )
        except Exception as exc:  # noqa: BLE001 — every fault becomes a record
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        return {"ok": True, "batch": [_run_payload(run) for run in runs]}
    from ..core.framework import simulate_once

    try:
        run = simulate_once(
            task.spec,
            replication=task.replication,
            root_seed=retry_seed(task.root_seed, task.replication, task.attempt),
            extra_probes=task.extra_probes,
            guard=task.guard,
            chaos=task.chaos,
            attempt=task.attempt,
            incremental=task.incremental,
            engine=task.engine,
            reuse=task.reuse,
        )
    except Exception as exc:  # noqa: BLE001 — every fault becomes a record
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    return _run_payload(run)


def spec_payload(spec: Any) -> Any:
    """A spec's JSON-able identity for checkpoint fingerprinting."""
    try:
        return spec.to_dict()
    except Exception:  # live Distribution instances do not round-trip
        return repr(spec)


def scope_fingerprint(
    spec: Any, root_seed: int, extra_probes: bool, config: ResilienceConfig
) -> str:
    """The checkpoint-scope fingerprint of one experiment.

    Shared by the per-experiment executor and the sweep engine so a
    checkpoint written by either resumes under the other.
    """
    return fingerprint(
        {
            "spec": spec_payload(spec),
            "root_seed": root_seed,
            "extra_probes": extra_probes,
            "guard": config.guard.to_dict() if config.guard else None,
            "chaos": config.chaos.to_dict() if config.chaos else None,
            "version": 1,
        }
    )


class CacheBinding:
    """A :class:`ResultCache` bound to one experiment's identity.

    Collapses the five-part cache key down to "which replication index",
    which is all the executor and the sweep engine ever vary.
    """

    def __init__(
        self,
        cache: ResultCache,
        spec_payload: Any,
        engine: str,
        root_seed: int,
        extra_probes: bool,
    ) -> None:
        self.cache = cache
        self._spec_payload = spec_payload
        self._engine = engine
        self._root_seed = root_seed
        self._extra_probes = extra_probes

    def key(self, replication: int) -> str:
        return self.cache.key(
            self._spec_payload,
            self._engine,
            self._root_seed,
            replication,
            self._extra_probes,
        )

    def load(self, replication: int) -> Optional[Dict[str, Any]]:
        return self.cache.load(self.key(replication))

    def store(self, replication: int, payload: Dict[str, Any]) -> None:
        self.cache.store(self.key(replication), payload)


def bind_cache(
    spec: Any, config: ResilienceConfig, root_seed: int, extra_probes: bool
) -> Optional[CacheBinding]:
    """The result cache for one experiment, or None when ineligible.

    Caching silently disables when no ``cache_dir`` is configured, when
    a guard or chaos plan makes results not a function of the cache key,
    or when the spec has no canonical JSON form.
    """
    if not config.cache_dir:
        return None
    if config.guard is not None or config.chaos is not None:
        return None
    payload = cacheable_spec_payload(spec)
    if payload is None:
        return None
    engine = config.engine or ("incremental" if config.incremental else "rescan")
    return CacheBinding(
        shared_cache(config.cache_dir), payload, engine, root_seed, extra_probes
    )


class _Run:
    """State of one run_replications call (serial or pooled)."""

    def __init__(
        self,
        spec: Any,
        root_seed: int,
        extra_probes: bool,
        min_replications: int,
        max_replications: int,
        converged: Optional[ConvergenceCheck],
        config: ResilienceConfig,
        checkpoint: Optional[CheckpointStore],
        monitor: Optional[ConvergenceMonitor] = None,
        cache: Optional[CacheBinding] = None,
    ) -> None:
        self.spec = spec
        self.root_seed = root_seed
        self.extra_probes = extra_probes
        self.min_replications = min_replications
        self.max_replications = max_replications
        self.converged = converged
        self.config = config
        self.checkpoint = checkpoint
        self.monitor = monitor
        self.cache = cache
        self.executed = 0
        self.cache_hits = 0
        self.resolved: Dict[int, ReplicationOutcome] = {}
        self._attempt_failures: Dict[int, List[ReplicationFailure]] = {}

    # -- shared bookkeeping -------------------------------------------------

    def task(self, replication: int, attempt: int = 0) -> _Task:
        return _Task(
            spec=self.spec,
            replication=replication,
            attempt=attempt,
            root_seed=self.root_seed,
            extra_probes=self.extra_probes,
            guard=self.config.guard,
            chaos=self.config.chaos,
            incremental=self.config.incremental,
            engine=self.config.engine,
            reuse=self.config.reuse,
            wave_window=self.config.batch_wave_window,
        )

    def batch_eligible(self) -> bool:
        """Clean batch-engine runs may dispatch replication groups."""
        return (
            self.config.engine == "batch"
            and self.config.guard is None
            and self.config.chaos is None
        )

    def batch_task(self, group: List[int]) -> _Task:
        return replace(self.task(group[0]), batch=tuple(group))

    def resolve_batch(self, task: _Task, payload: Dict[str, Any]) -> None:
        """Unpack a batch answer into per-replication resolutions."""
        for replication, sub in zip(task.batch, payload["batch"]):
            self.resolve_success(replace(task, replication=replication, batch=None), sub)

    def _stamp(self, failures: List[ReplicationFailure], task: _Task) -> None:
        for failure in failures:
            if failure.replication < 0:
                failure.replication = task.replication
                failure.attempt = task.attempt

    def resolve_success(self, task: _Task, payload: Dict[str, Any]) -> None:
        self.executed += 1
        tick_failures = [
            ReplicationFailure.from_dict(f) for f in payload.get("failures", [])
        ]
        self._stamp(tick_failures, task)
        earlier = self._attempt_failures.pop(task.replication, [])
        outcome = ReplicationOutcome(
            replication=task.replication,
            metrics=dict(payload["metrics"]),
            attempt=task.attempt,
            completions=int(payload.get("completions", 0)),
            degraded=bool(payload.get("degraded", False)),
            failures=earlier + tick_failures,
        )
        self.resolved[task.replication] = outcome
        self._record(task.replication)
        if (
            self.cache is not None
            and task.attempt == 0
            and not outcome.degraded
            and not outcome.failures
        ):
            # Only clean first-attempt results are memoized — a hit must
            # be exactly what the legacy serial runner would compute.
            self.cache.store(task.replication, outcome.to_payload())

    def fail_attempt(self, task: _Task, failure: ReplicationFailure) -> Optional[_Task]:
        """Register a failed attempt; return the retry task, if any."""
        self.executed += 1
        self._stamp([failure], task)
        bucket = self._attempt_failures.setdefault(task.replication, [])
        bucket.append(failure)
        if task.attempt < self.config.retries:
            if self.config.backoff:
                time.sleep(self.config.backoff * (2 ** task.attempt))
            retry = replace(task, attempt=task.attempt + 1)
            tracer = _trace._ACTIVE
            if tracer is not None:
                tracer.emit(
                    _trace.EXECUTOR_RETRY,
                    replication=retry.replication,
                    attempt=retry.attempt,
                    seed=retry_seed(retry.root_seed, retry.replication, retry.attempt),
                )
            return retry
        # Retries exhausted: the replication is permanently failed.
        bucket.append(
            ReplicationFailure(
                kind=FailureKind.RETRIES_EXHAUSTED,
                message=(
                    f"replication {task.replication} failed "
                    f"{task.attempt + 1} attempt(s): {failure_summary(bucket)}"
                ),
                replication=task.replication,
                attempt=task.attempt,
                scheduler=failure.scheduler,
            )
        )
        if not self.config.keep_partial:
            raise ReplicationError(
                f"replication {task.replication} failed after "
                f"{task.attempt + 1} attempt(s) "
                f"({failure_summary(bucket[:-1])}); last error: {failure.message}. "
                "Pass keep_partial=True to continue with surviving replications."
            )
        self.resolved[task.replication] = ReplicationOutcome(
            replication=task.replication,
            metrics=None,
            attempt=task.attempt,
            failures=self._attempt_failures.pop(task.replication),
        )
        self._record(task.replication)
        return None

    def _record(self, replication: int) -> None:
        if self.checkpoint is not None:
            self.checkpoint.record(
                self.config.checkpoint_scope,
                replication,
                self.resolved[replication].to_payload(),
            )

    def preload_cache(self) -> None:
        """Fill unresolved replications from the persistent result cache."""
        if self.cache is None:
            return
        for replication in range(self.max_replications):
            if replication in self.resolved:
                continue
            payload = self.cache.load(replication)
            if payload is None:
                continue
            self.resolved[replication] = ReplicationOutcome.from_record(
                {**payload, "replication": replication}
            )
            self.cache_hits += 1
            self._record(replication)
            tracer = _trace._ACTIVE
            if tracer is not None:
                tracer.emit(
                    _trace.CACHE_HIT,
                    scope=self.config.checkpoint_scope,
                    replication=replication,
                    key=self.cache.key(replication),
                )

    # -- convergence over the contiguous resolved prefix --------------------

    def _contiguous_prefix(self) -> int:
        prefix = 0
        while prefix < self.max_replications and prefix in self.resolved:
            prefix += 1
        return prefix

    def _surviving(self, prefix: int) -> List[ReplicationOutcome]:
        return [self.resolved[i] for i in range(prefix) if self.resolved[i].ok]

    def converged_cut(self) -> Optional[int]:
        """Smallest sample count >= min that converges, scanning the
        resolved prefix in replication order; None if not converged yet."""
        surviving = self._surviving(self._contiguous_prefix())
        if self.monitor is not None:
            # One-pass path: feed the monitor only the samples it has not
            # seen.  Each prefix is judged exactly once, which is sound
            # because a prefix's samples never change after the fact —
            # bit-identical stopping decisions to the rescan below.
            for outcome in surviving[self.monitor.n :]:
                self.monitor.push(outcome.metrics)
            return self.monitor.cut
        for count in range(self.min_replications, len(surviving) + 1):
            if self.converged([o.metrics for o in surviving[:count]]):
                return count
        return None

    def assemble(self) -> ExecutionOutcome:
        prefix = self._contiguous_prefix()
        surviving = self._surviving(prefix)
        cut = self.converged_cut()
        included = surviving[: cut if cut is not None else len(surviving)]
        if cut is not None and included:
            boundary = included[-1].replication
        else:
            boundary = prefix - 1  # budget exhausted: report the whole prefix
        failures: List[ReplicationFailure] = []
        for index in range(boundary + 1):
            outcome = self.resolved.get(index)
            if outcome is not None:
                failures.extend(outcome.failures)
        failures.sort(key=lambda f: (f.replication, f.attempt, f.sim_time or 0.0))
        return ExecutionOutcome(
            samples=[o.metrics for o in included],
            replications=len(included),
            failures=failures,
            degraded=any(o.degraded for o in included),
            executed=self.executed,
            cache_hits=self.cache_hits,
        )

    # -- serial driver -------------------------------------------------------

    def run_serial(self) -> None:
        if self.batch_eligible():
            self._run_serial_batched()
            return
        self._run_serial_single()

    def _run_serial_batched(self) -> None:
        """Serial driver, batch engine: dispatch clean replication groups.

        Groups share one calendar (see ``simulate_batch``); convergence
        is judged between groups, so a group may over-run the cut — the
        surplus is discarded by ``assemble`` exactly as the pool
        driver's over-run is.  A faulted group falls back to the
        per-replication driver for those indices, which restores the
        full retry/reseed machinery.
        """
        from ..core.framework import BATCH_WIDTH_DEFAULT, simulate_batch

        width = self.config.batch_width or BATCH_WIDTH_DEFAULT
        next_index = 0
        while True:
            if self.converged_cut() is not None:
                return
            group: List[int] = []
            while next_index < self.max_replications and len(group) < width:
                if next_index not in self.resolved:
                    group.append(next_index)
                next_index += 1
            if not group:
                return
            try:
                runs = simulate_batch(
                    self.spec,
                    group,
                    root_seed=self.root_seed,
                    extra_probes=self.extra_probes,
                    engine="batch",
                    reuse=self.config.reuse,
                    width=width,
                    wave_window=self.config.batch_wave_window,
                )
            except Exception:  # noqa: BLE001 — group fault: isolate per lane
                self._run_serial_single(group)
                continue
            task = self.batch_task(group)
            self.resolve_batch(task, {"ok": True, "batch": [
                {
                    "metrics": run.metrics,
                    "completions": run.completions,
                    "degraded": run.degraded,
                    "failures": [f.to_dict() for f in run.failures],
                }
                for run in runs
            ]})

    def _run_serial_single(self, only: Optional[List[int]] = None) -> None:
        replications = only if only is not None else range(self.max_replications)
        for replication in replications:
            if replication not in self.resolved:
                task = self.task(replication)
                while task is not None:
                    payload = _execute_task(task)
                    if payload["ok"]:
                        self.resolve_success(task, payload)
                        task = None
                    else:
                        task = self.fail_attempt(
                            task,
                            ReplicationFailure(
                                kind=FailureKind.EXCEPTION,
                                message=payload["error"],
                                scheduler=getattr(self.spec, "scheduler", ""),
                            ),
                        )
                if replication not in self.resolved:
                    continue  # permanently failed, keep_partial
            if (
                replication + 1 >= self.min_replications
                and self.converged_cut() is not None
            ):
                return

    # -- pooled driver --------------------------------------------------------

    def run_pool(self) -> None:
        from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
        from concurrent.futures.process import BrokenProcessPool

        jobs = max(1, self.config.jobs)
        pool = ProcessPoolExecutor(max_workers=jobs)
        pending: Dict[Any, Tuple[_Task, Optional[float]]] = {}
        ready: Deque[_Task] = deque()
        next_index = 0
        try:
            while True:
                if self.converged_cut() is not None:
                    return
                # Top up: retries first, then fresh replications in order.
                while len(pending) < jobs:
                    if ready:
                        task = ready.popleft()
                    else:
                        while (
                            next_index < self.max_replications
                            and next_index in self.resolved
                        ):
                            next_index += 1
                        if next_index >= self.max_replications:
                            break
                        task = self.task(next_index)
                        next_index += 1
                    deadline = (
                        time.monotonic() + self.config.timeout
                        if self.config.timeout is not None
                        else None
                    )
                    try:
                        future = pool.submit(_execute_task, task)
                    except (BrokenProcessPool, RuntimeError):
                        # Pool died between batches: rebuild, requeue.
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = ProcessPoolExecutor(max_workers=jobs)
                        future = pool.submit(_execute_task, task)
                    pending[future] = (task, deadline)
                if not pending:
                    return
                deadlines = [d for (_t, d) in pending.values() if d is not None]
                budget = (
                    max(0.0, min(deadlines) - time.monotonic()) if deadlines else None
                )
                done, _ = wait(
                    set(pending), timeout=budget, return_when=FIRST_COMPLETED
                )
                pool_broken = False
                for future in done:
                    task, _deadline = pending.pop(future)
                    try:
                        payload = future.result()
                    except BrokenProcessPool:
                        pool_broken = True
                        payload = {
                            "ok": False,
                            "kind": FailureKind.WORKER_CRASH,
                            "error": "worker process died (pool broken)",
                        }
                    except Exception as exc:  # noqa: BLE001
                        payload = {
                            "ok": False,
                            "kind": FailureKind.WORKER_CRASH,
                            "error": f"{type(exc).__name__}: {exc}",
                        }
                    if payload["ok"]:
                        self.resolve_success(task, payload)
                    else:
                        retry = self.fail_attempt(
                            task,
                            ReplicationFailure(
                                kind=payload.get("kind", FailureKind.EXCEPTION),
                                message=payload["error"],
                                scheduler=getattr(self.spec, "scheduler", ""),
                            ),
                        )
                        if retry is not None:
                            ready.append(retry)
                # Abandon attempts that blew their wall-clock budget.  The
                # worker itself cannot be interrupted, but its slot recycles
                # once the stall ends, and the attempt is failed *now*.
                now = time.monotonic()
                for future in [
                    f
                    for f, (_t, deadline) in pending.items()
                    if deadline is not None and now >= deadline
                ]:
                    task, _deadline = pending.pop(future)
                    future.cancel()
                    retry = self.fail_attempt(
                        task,
                        ReplicationFailure(
                            kind=FailureKind.TIMEOUT,
                            message=(
                                f"replication attempt exceeded the "
                                f"{self.config.timeout:g}s wall-clock timeout"
                            ),
                            scheduler=getattr(self.spec, "scheduler", ""),
                        ),
                    )
                    if retry is not None:
                        ready.append(retry)
                if pool_broken:
                    # Every in-flight future is poisoned; fail them as
                    # worker crashes, rebuild the pool, requeue retries.
                    for future in list(pending):
                        task, _deadline = pending.pop(future)
                        retry = self.fail_attempt(
                            task,
                            ReplicationFailure(
                                kind=FailureKind.WORKER_CRASH,
                                message="worker process died (pool broken)",
                                scheduler=getattr(self.spec, "scheduler", ""),
                            ),
                        )
                        if retry is not None:
                            ready.append(retry)
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(max_workers=jobs)
        finally:
            # wait=False: a stalled worker must not hold the experiment
            # hostage past its timeout; the processes reap at interpreter exit.
            pool.shutdown(wait=False, cancel_futures=True)


def run_replications(
    spec: Any,
    *,
    root_seed: int,
    extra_probes: bool,
    min_replications: int,
    max_replications: int,
    converged: Optional[ConvergenceCheck] = None,
    config: ResilienceConfig,
    monitor: Optional[ConvergenceMonitor] = None,
) -> ExecutionOutcome:
    """Resolve replications until convergence or budget, resiliently.

    Args:
        spec: the (validated) system spec.
        root_seed: seed-family root; attempt 0 of replication *r* is
            bit-identical to the legacy serial runner.
        extra_probes: forwarded to ``simulate_once``.
        min_replications / max_replications: the replication protocol.
        converged: callback receiving the ordered list of per-replication
            metric dicts collected so far; True stops the run.
        config: executor knobs (parallelism, timeout, retries,
            checkpointing, guard, chaos, result cache).
        monitor: one-pass :class:`ConvergenceMonitor` stopping rule —
            the O(n) alternative to the ``converged`` rescan callback.
            Exactly one of ``converged`` / ``monitor`` must be given,
            and a monitor must be fresh (never fed) per call.

    Returns:
        An :class:`ExecutionOutcome` with the included samples (in
        replication order), the failure records up to the convergence
        boundary, and the degraded flag.

    Raises:
        ReplicationError: a replication exhausted its retries and
            ``config.keep_partial`` is False.
        CheckpointError: resuming against a mismatched checkpoint.
    """
    config.validate()
    if (converged is None) == (monitor is None):
        raise ConfigurationError(
            "exactly one of converged= / monitor= must be given"
        )
    checkpoint: Optional[CheckpointStore] = None
    if config.checkpoint:
        checkpoint = CheckpointStore(config.checkpoint, resume=config.resume)
    run = _Run(
        spec=spec,
        root_seed=root_seed,
        extra_probes=extra_probes,
        min_replications=min_replications,
        max_replications=max_replications,
        converged=converged,
        config=config,
        checkpoint=checkpoint,
        monitor=monitor,
        cache=bind_cache(spec, config, root_seed, extra_probes),
    )
    try:
        if checkpoint is not None:
            checkpoint.begin_scope(
                config.checkpoint_scope,
                scope_fingerprint(spec, root_seed, extra_probes, config),
            )
            for rep, record in checkpoint.replications(
                config.checkpoint_scope
            ).items():
                if rep < max_replications:
                    run.resolved[rep] = ReplicationOutcome.from_record(record)
        run.preload_cache()
        if config.jobs > 1 or config.timeout is not None:
            run.run_pool()
        else:
            run.run_serial()
    finally:
        if checkpoint is not None:
            checkpoint.close()
    return run.assemble()
