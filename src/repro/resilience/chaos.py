"""Deterministic, seeded fault injection for scheduler calls.

The resilience machinery (timeouts, retry/reseed, guard/quarantine)
must itself be tested end-to-end; this module is the test double that
makes faults reproducible.  A :class:`ChaosScheduler` wraps any
algorithm and, driven entirely by a :class:`ChaosSpec` and a seeded
stream, injects

* **exceptions** — the scheduler "crashes" mid-replication;
* **stalls** — a wall-clock sleep, to exercise the executor timeout;
* **corrupt decisions** — double PCPU assignments, out-of-range ids,
  or schedule_in/schedule_out conflicts, to exercise the guard.

Injection is keyed on ``(replication, sim-time)`` so the same spec and
seed always fault at the same point, and by default only the *first*
attempt of a replication is sabotaged — which is exactly the shape the
acceptance test needs: crash once, retry under a fresh seed, succeed.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..des.random_streams import derive_seed
from ..errors import ConfigurationError
from ..observability import trace as _trace
from ..schedulers.interface import PCPUView, SchedulingAlgorithm, VCPUHostView

CORRUPT_KINDS = ("double_assign", "out_of_range", "conflict")


class InjectedFault(RuntimeError):
    """The exception the chaos harness raises inside scheduler calls.

    Deliberately *not* a :class:`~repro.errors.ReproError`: a buggy
    user scheduler raises arbitrary exceptions, and the guard and
    executor must cope with exactly that.
    """


@dataclass
class ChaosSpec:
    """Declarative fault plan, plain data so it crosses process borders.

    Attributes:
        seed: root seed of the chaos stream (independent of the
            simulation's streams, so injection never perturbs them).
        crash_replications: replication indices whose scheduler raises.
        stall_replications: replication indices whose scheduler sleeps
            ``stall_seconds`` of wall-clock time once.
        corrupt_replications: replication indices whose scheduler emits
            one corrupt decision of ``corrupt_kind``.
        inject_after: simulated time before which no fault fires (lets
            the replication do real work first).
        stall_seconds: duration of an injected stall.
        corrupt_kind: one of ``double_assign``, ``out_of_range``,
            ``conflict``.
        fault_rate: additionally, per-tick crash probability on targeted
            replications' chaos stream (0 disables).
        first_attempt_only: sabotage only attempt 0 of a replication, so
            a retry under a fresh seed succeeds (default True).
    """

    seed: int = 0
    crash_replications: Tuple[int, ...] = ()
    stall_replications: Tuple[int, ...] = ()
    corrupt_replications: Tuple[int, ...] = ()
    inject_after: float = 0.0
    stall_seconds: float = 1.0
    corrupt_kind: str = "double_assign"
    fault_rate: float = 0.0
    first_attempt_only: bool = True

    def validate(self) -> None:
        if self.corrupt_kind not in CORRUPT_KINDS:
            raise ConfigurationError(
                f"corrupt_kind must be one of {CORRUPT_KINDS}, got {self.corrupt_kind!r}"
            )
        if self.stall_seconds < 0:
            raise ConfigurationError(
                f"stall_seconds must be >= 0, got {self.stall_seconds}"
            )
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ConfigurationError(
                f"fault_rate must be in [0, 1], got {self.fault_rate}"
            )
        if self.inject_after < 0:
            raise ConfigurationError(
                f"inject_after must be >= 0, got {self.inject_after}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "crash_replications": list(self.crash_replications),
            "stall_replications": list(self.stall_replications),
            "corrupt_replications": list(self.corrupt_replications),
            "inject_after": self.inject_after,
            "stall_seconds": self.stall_seconds,
            "corrupt_kind": self.corrupt_kind,
            "fault_rate": self.fault_rate,
            "first_attempt_only": self.first_attempt_only,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ChaosSpec":
        return cls(
            seed=int(payload.get("seed", 0)),
            crash_replications=tuple(payload.get("crash_replications", ())),
            stall_replications=tuple(payload.get("stall_replications", ())),
            corrupt_replications=tuple(payload.get("corrupt_replications", ())),
            inject_after=float(payload.get("inject_after", 0.0)),
            stall_seconds=float(payload.get("stall_seconds", 1.0)),
            corrupt_kind=payload.get("corrupt_kind", "double_assign"),
            fault_rate=float(payload.get("fault_rate", 0.0)),
            first_attempt_only=bool(payload.get("first_attempt_only", True)),
        )


class ChaosScheduler(SchedulingAlgorithm):
    """Wraps an algorithm and injects the faults its spec plans.

    One-shot faults (crash, stall, corruption) fire at the first tick
    with ``timestamp >= inject_after`` and never again on the same
    instance; a retried attempt gets a fresh instance and — with
    ``first_attempt_only`` — a clean run.
    """

    def __init__(
        self,
        inner: SchedulingAlgorithm,
        spec: ChaosSpec,
        replication: int,
        attempt: int = 0,
    ) -> None:
        spec.validate()
        super().__init__(timeslice=inner.timeslice)
        self.name = f"chaos({inner.name})"
        self.inner = inner
        self.spec = spec
        self.replication = int(replication)
        self.attempt = int(attempt)
        self.armed = attempt == 0 or not spec.first_attempt_only
        self._rng = random.Random(derive_seed(spec.seed, "chaos", replication))
        self._crashed = False
        self._stalled = False
        self._corrupted = False

    def reset(self) -> None:
        super().reset()
        self.inner.reset()

    def schedule(
        self,
        vcpus: List[VCPUHostView],
        num_vcpu: int,
        pcpus: List[PCPUView],
        num_pcpu: int,
        timestamp: float,
    ) -> bool:
        tracer = _trace._ACTIVE
        if self.armed and timestamp >= self.spec.inject_after:
            if not self._crashed and self.replication in self.spec.crash_replications:
                self._crashed = True
                if tracer is not None:
                    tracer.emit(
                        _trace.CHAOS_CRASH,
                        time=timestamp,
                        replication=self.replication,
                    )
                raise InjectedFault(
                    f"chaos: injected crash in replication {self.replication} "
                    f"at t={timestamp:g}"
                )
            if (
                self.spec.fault_rate
                and self.replication in self.spec.crash_replications
                and self._rng.random() < self.spec.fault_rate
            ):
                if tracer is not None:
                    tracer.emit(
                        _trace.CHAOS_CRASH,
                        time=timestamp,
                        replication=self.replication,
                    )
                raise InjectedFault(
                    f"chaos: random fault in replication {self.replication} "
                    f"at t={timestamp:g}"
                )
            if not self._stalled and self.replication in self.spec.stall_replications:
                self._stalled = True
                if tracer is not None:
                    tracer.emit(
                        _trace.CHAOS_STALL,
                        time=timestamp,
                        replication=self.replication,
                        seconds=self.spec.stall_seconds,
                    )
                time.sleep(self.spec.stall_seconds)
        decided = self.inner.schedule(vcpus, num_vcpu, pcpus, num_pcpu, timestamp)
        if (
            self.armed
            and timestamp >= self.spec.inject_after
            and not self._corrupted
            and self.replication in self.spec.corrupt_replications
        ):
            self._corrupted = True
            if tracer is not None:
                tracer.emit(
                    _trace.CHAOS_CORRUPT,
                    time=timestamp,
                    replication=self.replication,
                    corrupt_kind=self.spec.corrupt_kind,
                )
            self._corrupt(vcpus, num_pcpu)
        return decided

    def _corrupt(self, vcpus: List[VCPUHostView], num_pcpu: int) -> None:
        """Overwrite this tick's decisions with an invalid set."""
        if not vcpus:
            return
        if self.spec.corrupt_kind == "conflict":
            view = next((v for v in vcpus if v.pcpu is not None), vcpus[0])
            view.schedule_in = True
            view.schedule_out = True
            return
        if self.spec.corrupt_kind == "out_of_range":
            view = next((v for v in vcpus if v.pcpu is None), vcpus[0])
            view.schedule_in = True
            view.schedule_out = False
            view.next_pcpu = num_pcpu + 7
            view.next_timeslice = self.timeslice
            return
        # double_assign: two VCPUs claim PCPU 0 in the same tick.
        idle = [v for v in vcpus if v.pcpu is None][:2]
        targets = idle if len(idle) == 2 else vcpus[:2]
        for view in targets:
            view.schedule_in = True
            view.schedule_out = False
            view.next_pcpu = 0
            view.next_timeslice = self.timeslice
