"""The paper's evaluation, packaged as runnable experiment definitions.

One function per table/figure of Pham et al. (ICDCSW 2013):

* :func:`table1` / :func:`table2` — the join-place tables of the VM and
  Virtual System composed models (structural, no simulation);
* :func:`run_figure8` — VCPU availability fairness (§IV.A);
* :func:`run_figure9` — PCPU utilization / fragmentation (§IV.B);
* :func:`run_figure10` — VCPU utilization / synchronization latency
  (§IV.C).

Each ``run_*`` function returns a :class:`FigureResult` carrying the raw
:class:`~repro.core.results.ExperimentResult` objects plus a rendered
ASCII table, so callers (benches, examples, EXPERIMENTS.md generation)
share one source of truth.  Replication control follows the paper: 95%
confidence, target half-width < 0.1.

All functions accept ``sim_time`` / ``replications`` knobs so tests can
run them cheaply while benches run them at full fidelity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .analysis.tables import figure_series_table
from .core.config import SystemSpec, VMSpec, WorkloadSpec
from .core.experiment import run_sweep
from .core.results import ExperimentResult, render_table
from .resilience import ResilienceConfig
from .vmm.system import build_virtual_system
from .vmm.virtual_machine import build_vm_model
from .schedulers import RoundRobinScheduler
from .workloads.generators import WorkloadModel

# The paper's §IV setups.
PAPER_SCHEDULERS = ("rrs", "scs", "rcs")
FIG8_TOPOLOGY = (2, 1, 1)  # one 2-VCPU VM + two 1-VCPU VMs
FIG8_PCPU_RANGE = (1, 2, 3, 4)
FIG9_VM_SETS = {"set1 (2+2)": (2, 2), "set2 (2+3)": (2, 3), "set3 (2+4)": (2, 4)}
FIG10_SYNC_RATIOS = (5, 4, 3, 2)  # "varied from 1:5 to 1:2"
PAPER_SYNC_RATIO = 5
PAPER_PCPUS = 4


@dataclass
class FigureResult:
    """One reproduced figure: raw experiments plus a rendered table."""

    figure: str
    results: List[ExperimentResult] = field(default_factory=list)
    table: str = ""

    def by_params(self, **params) -> ExperimentResult:
        """Find the experiment whose parameters match ``params``."""
        for result in self.results:
            if all(result.parameters.get(k) == v for k, v in params.items()):
                return result
        raise KeyError(f"no experiment with parameters {params}")


def _spec(
    topology: Sequence[int],
    pcpus: int,
    scheduler: str,
    sync_ratio: int,
    sim_time: int,
    warmup: int,
) -> SystemSpec:
    return SystemSpec(
        vms=[VMSpec(n, WorkloadSpec(sync_ratio=sync_ratio)) for n in topology],
        pcpus=pcpus,
        scheduler=scheduler,
        sim_time=sim_time,
        warmup=warmup,
    )


def _sweep(
    base_spec: SystemSpec,
    points: List[Dict],
    mutate,
    replications: Tuple[int, int],
    root_seed: int,
    resilience: Optional[ResilienceConfig],
    sweep_engine: str,
    sweep_jobs: Optional[int],
) -> List[ExperimentResult]:
    min_reps, max_reps = replications
    return run_sweep(
        base_spec,
        points,
        mutate=mutate,
        sweep_engine=sweep_engine,
        sweep_jobs=sweep_jobs,
        min_replications=min_reps,
        max_replications=max_reps,
        root_seed=root_seed,
        resilience=resilience,
    )


# ---------------------------------------------------------------------------
# Tables 1 and 2 (model structure)
# ---------------------------------------------------------------------------


def table1(num_vcpus: int = 2) -> str:
    """Render the VM composed model's join places (paper Table 1)."""
    vm = build_vm_model(
        f"VM_{num_vcpus}VCPU_1", num_vcpus, WorkloadModel(), random.Random(0)
    )
    rows = [
        [row["state_variable"], "\n".join(row["submodel_variables"])]
        for row in vm.join_place_table()
    ]
    flat_rows = []
    for state_variable, members in rows:
        for i, member in enumerate(members.split("\n")):
            flat_rows.append([state_variable if i == 0 else "", member])
    return render_table(
        ["State Name", "Sub-model Variables"],
        flat_rows,
        title=f"TABLE 1: JOIN PLACES IN VIRTUAL MACHINE MODEL ({num_vcpus} VCPUs)",
    )


def table2(vms: Sequence[int] = (2, 2), pcpus: int = 2) -> str:
    """Render the Virtual System join places (paper Table 2)."""
    system = build_virtual_system(
        [(n, WorkloadModel()) for n in vms],
        RoundRobinScheduler(),
        pcpus,
    )
    flat_rows = []
    for row in system.join_place_table():
        for i, member in enumerate(row["submodel_variables"]):
            flat_rows.append([row["state_variable"] if i == 0 else "", member])
    return render_table(
        ["State Variable Name", "Sub-model Variables"],
        flat_rows,
        title="TABLE 2: JOIN PLACES IN VIRTUAL SYSTEM MODEL",
    )


# ---------------------------------------------------------------------------
# Figure 8: VCPU availability fairness
# ---------------------------------------------------------------------------


def figure8_sweep(
    schedulers: Sequence[str] = PAPER_SCHEDULERS,
    pcpu_range: Sequence[int] = FIG8_PCPU_RANGE,
    sim_time: int = 2000,
    warmup: int = 200,
) -> Tuple[SystemSpec, List[Dict]]:
    """The Figure-8 campaign as a ``run_sweep`` input: base spec + points.

    Shared by :func:`run_figure8`, the sweep-engine differential tests,
    and ``benchmarks/bench_sweep_engine.py`` — all three must benchmark
    and verify the *same* sweep.
    """
    base = _spec(
        FIG8_TOPOLOGY, pcpu_range[0], schedulers[0], PAPER_SYNC_RATIO, sim_time, warmup
    )
    points = [
        {"pcpus": pcpus, "scheduler": scheduler}
        for pcpus in pcpu_range
        for scheduler in schedulers
    ]
    return base, points


def run_figure8(
    schedulers: Sequence[str] = PAPER_SCHEDULERS,
    pcpu_range: Sequence[int] = FIG8_PCPU_RANGE,
    sim_time: int = 2000,
    warmup: int = 200,
    replications: Tuple[int, int] = (5, 30),
    root_seed: int = 0,
    resilience: Optional[ResilienceConfig] = None,
    sweep_engine: str = "serial",
    sweep_jobs: Optional[int] = None,
) -> FigureResult:
    """Reproduce Figure 8: per-VCPU availability, VMs 2+1+1, sync 1:5.

    Returns a figure whose table has one row per (pcpus, scheduler) and
    one column per VCPU (paper labels VCPU1.1 .. VCPU3.1).
    """
    labels = ["VCPU1.1", "VCPU1.2", "VCPU2.1", "VCPU3.1"]
    base, points = figure8_sweep(schedulers, pcpu_range, sim_time, warmup)
    results = _sweep(
        base, points, None, replications, root_seed, resilience, sweep_engine, sweep_jobs
    )
    rows = []
    for result in results:
        row = [result.parameters["pcpus"], result.parameters["scheduler"]]
        for label in labels:
            metric = f"vcpu_availability[{label}]"
            row.append(f"{result.mean(metric):.3f} ±{result.half_width(metric):.3f}")
        rows.append(row)
    table = render_table(
        ["pcpus", "scheduler"] + labels,
        rows,
        title=(
            "Figure 8: availability of four VCPUs in three VMs "
            "(2VCPUs + 1VCPU + 1VCPU), sync 1:5, 95% confidence"
        ),
    )
    return FigureResult(figure="figure8", results=results, table=table)


# ---------------------------------------------------------------------------
# Figure 9: PCPU utilization
# ---------------------------------------------------------------------------


def run_figure9(
    schedulers: Sequence[str] = PAPER_SCHEDULERS,
    vm_sets: Optional[Dict[str, Sequence[int]]] = None,
    sim_time: int = 2000,
    warmup: int = 200,
    replications: Tuple[int, int] = (5, 30),
    root_seed: int = 0,
    resilience: Optional[ResilienceConfig] = None,
    sweep_engine: str = "serial",
    sweep_jobs: Optional[int] = None,
) -> FigureResult:
    """Reproduce Figure 9: averaged PCPU utilization, 4 PCPUs, sync 1:5."""
    vm_sets = vm_sets if vm_sets is not None else dict(FIG9_VM_SETS)
    first_topology = next(iter(vm_sets.values()))
    base = _spec(
        first_topology, PAPER_PCPUS, schedulers[0], PAPER_SYNC_RATIO, sim_time, warmup
    )
    points = [
        {"vm_set": set_label, "scheduler": scheduler}
        for set_label in vm_sets
        for scheduler in schedulers
    ]

    def mutate(spec: SystemSpec, other: Dict) -> SystemSpec:
        topology = vm_sets[other["vm_set"]]
        return spec.with_overrides(
            vms=[VMSpec(n, WorkloadSpec(sync_ratio=PAPER_SYNC_RATIO)) for n in topology]
        )

    results = _sweep(
        base, points, mutate, replications, root_seed, resilience, sweep_engine, sweep_jobs
    )
    series: Dict[str, List[Tuple[float, float]]] = {s: [] for s in schedulers}
    for result in results:
        series[result.parameters["scheduler"]].append(
            (result.mean("pcpu_utilization"), result.half_width("pcpu_utilization"))
        )
    table = figure_series_table(
        "Figure 9: averaged PCPU utilization of four PCPUs, sync 1:5, 95% confidence",
        "vm_set",
        list(vm_sets),
        series,
    )
    return FigureResult(figure="figure9", results=results, table=table)


# ---------------------------------------------------------------------------
# Figure 10: VCPU utilization
# ---------------------------------------------------------------------------


def run_figure10(
    schedulers: Sequence[str] = PAPER_SCHEDULERS,
    vm_sets: Optional[Dict[str, Sequence[int]]] = None,
    sync_ratios: Sequence[int] = FIG10_SYNC_RATIOS,
    sim_time: int = 2000,
    warmup: int = 200,
    replications: Tuple[int, int] = (5, 30),
    root_seed: int = 0,
    resilience: Optional[ResilienceConfig] = None,
    sweep_engine: str = "serial",
    sweep_jobs: Optional[int] = None,
) -> FigureResult:
    """Reproduce Figure 10: averaged VCPU utilization, 4 PCPUs,
    sync ratio varied 1:5 -> 1:2."""
    vm_sets = vm_sets if vm_sets is not None else dict(FIG9_VM_SETS)
    first_topology = next(iter(vm_sets.values()))
    base = _spec(
        first_topology, PAPER_PCPUS, schedulers[0], sync_ratios[0], sim_time, warmup
    )
    points = [
        {"vm_set": set_label, "scheduler": scheduler, "sync_ratio": ratio}
        for ratio in sync_ratios
        for set_label in vm_sets
        for scheduler in schedulers
    ]

    def mutate(spec: SystemSpec, other: Dict) -> SystemSpec:
        topology = vm_sets[other["vm_set"]]
        ratio = other["sync_ratio"]
        return spec.with_overrides(
            vms=[VMSpec(n, WorkloadSpec(sync_ratio=ratio)) for n in topology]
        )

    results = _sweep(
        base, points, mutate, replications, root_seed, resilience, sweep_engine, sweep_jobs
    )
    rows = []
    cursor = iter(results)
    for ratio in sync_ratios:
        for set_label in vm_sets:
            row = [f"1:{ratio}", set_label]
            for _scheduler in schedulers:
                result = next(cursor)
                row.append(
                    f"{result.mean('vcpu_utilization'):.3f} "
                    f"±{result.half_width('vcpu_utilization'):.3f}"
                )
            rows.append(row)
    table = render_table(
        ["sync", "vm_set"] + list(schedulers),
        rows,
        title=(
            "Figure 10: averaged VCPU utilization with four PCPUs, "
            "95% confidence (BUSY time / ACTIVE time)"
        ),
    )
    return FigureResult(figure="figure10", results=results, table=table)
