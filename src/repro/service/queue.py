"""Job ledger and bounded admission queue of the simulation service.

A :class:`Job` is the server-side record of one submitted experiment:
its validated payload, lifecycle status, cancellation flag, result, and
an append-only list of :class:`~repro.observability.trace.TraceRecord`
events — the same typed records the simulator traces with, reused as
the NDJSON wire format for progress streaming.  Event timestamps are
seconds since the job was accepted, sequenced per job.

The :class:`JobQueue` bounds how much work the server will hold.  A
full queue rejects the submit with :class:`QueueFull` (the server turns
that into a structured 503): under overload the service sheds load at
the door instead of accumulating unbounded latency.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from ..errors import ServiceError
from ..observability.trace import TraceRecord
from .schemas import SimulationOutput, SimulationPayload

#: Lifecycle states.  ``queued -> running -> done | failed | cancelled``;
#: a queued job may also jump straight to ``cancelled``.
JOB_STATUSES = ("queued", "running", "done", "failed", "cancelled")
_TERMINAL = frozenset(("done", "failed", "cancelled"))


class QueueFull(ServiceError):
    """The bounded job queue is at capacity; submit rejected (503)."""


class Job:
    """One accepted experiment job and everything the server knows of it."""

    def __init__(self, job_id: str, payload: SimulationPayload) -> None:
        self.id = job_id
        self.payload = payload
        self.status = "queued"
        self.output: Optional[SimulationOutput] = None
        self.accepted_at = time.monotonic()
        self.cancel = threading.Event()
        self._events: List[TraceRecord] = []
        self._seq = itertools.count()
        self._lock = threading.Lock()

    @property
    def done(self) -> bool:
        return self.status in _TERMINAL

    def emit(self, kind: str, **fields: Any) -> TraceRecord:
        """Append one progress record (t = seconds since acceptance)."""
        with self._lock:
            record = TraceRecord(
                kind=kind,
                t=time.monotonic() - self.accepted_at,
                seq=next(self._seq),
                data=fields,
            )
            self._events.append(record)
        return record

    def events(self, since: int = 0) -> List[TraceRecord]:
        """Records with ``seq >= since`` (streaming cursors poll this)."""
        with self._lock:
            return self._events[since:]

    def request_cancel(self) -> bool:
        """Flag the job for cancellation; True if it was still live.

        A queued job is finalized immediately; a running job sees the
        flag through its progress callback and aborts cooperatively.
        """
        if self.done:
            return False
        self.cancel.set()
        if self.status == "queued":
            self.finish("cancelled", error="cancelled before start")
        return True

    def finish(
        self,
        status: str,
        output: Optional[SimulationOutput] = None,
        error: Optional[str] = None,
    ) -> None:
        if status not in _TERMINAL:
            raise ServiceError(f"finish() needs a terminal status, got {status!r}")
        self.status = status
        if output is not None:
            self.output = output
        elif error is not None:
            self.output = SimulationOutput(job=self.id, status=status, error=error)

    def describe(self) -> Dict[str, Any]:
        """The ``GET /v1/jobs/{id}`` body."""
        if self.output is not None:
            body = self.output.to_dict()
            body["status"] = self.status
        else:
            body = {"job": self.id, "status": self.status}
        body["tenant"] = self.payload.tenant
        return body


class JobQueue:
    """All jobs ever accepted, plus the bounded runnable backlog.

    Args:
        limit: max jobs simultaneously queued-or-running; an admit past
            the limit raises :class:`QueueFull`.
    """

    def __init__(self, limit: int = 64) -> None:
        if limit < 1:
            raise ServiceError(f"queue limit must be >= 1, got {limit}")
        self.limit = limit
        self._jobs: Dict[str, Job] = {}
        self._pending: Deque[Job] = deque()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()

    def submit(self, payload: SimulationPayload) -> Job:
        """Admit one payload as a queued job, or raise :class:`QueueFull`."""
        with self._lock:
            live = sum(1 for job in self._jobs.values() if not job.done)
            if live >= self.limit:
                raise QueueFull(
                    f"job queue is full ({live}/{self.limit} live jobs)"
                )
            job = Job(f"job-{next(self._ids)}", payload)
            self._jobs[job.id] = job
            self._pending.append(job)
        return job

    def next_runnable(self) -> Optional[Job]:
        """Pop the oldest queued job that was not cancelled meanwhile."""
        with self._lock:
            while self._pending:
                job = self._pending.popleft()
                if job.status == "queued":
                    return job
        return None

    def get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return job

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def counts(self) -> Dict[str, int]:
        """Jobs per lifecycle status (for ``/v1/stats``)."""
        counts = {status: 0 for status in JOB_STATUSES}
        for job in self.jobs():
            counts[job.status] += 1
        return counts
