"""Simulation-as-a-service: a long-lived asyncio job server.

The one-shot CLI pays full startup and model-compile cost per
experiment; this package turns the framework into a service in the
CloudSim sense — one process holding a warm
:class:`~repro.core.SweepPool` and a persistent result cache, answering
many client queries over JSON/HTTP with typed progress streams.

Layers:

* :mod:`~repro.service.schemas` — validated request/response payloads
  (round-trip dataclasses, unknown-key rejection);
* :mod:`~repro.service.quotas` — per-tenant token-bucket admission;
* :mod:`~repro.service.queue` — the job ledger and bounded backlog;
* :mod:`~repro.service.server` — the asyncio HTTP server itself;
* :mod:`~repro.service.client` — a stdlib asyncio client.
"""

from .client import ServiceClient
from .queue import Job, JobQueue, QueueFull
from .quotas import QuotaManager, TokenBucket
from .schemas import SimulationOutput, SimulationPayload
from .server import ServiceConfig, SimulationServer

__all__ = [
    "Job",
    "JobQueue",
    "QueueFull",
    "QuotaManager",
    "ServiceClient",
    "ServiceConfig",
    "SimulationOutput",
    "SimulationPayload",
    "SimulationServer",
    "TokenBucket",
]
