"""Stdlib asyncio client for the simulation service.

A thin typed wrapper over one-request-per-connection HTTP/1.1 — the
counterpart of the server's deliberately minimal parser.  Used by the
end-to-end tests and the load-test harness; also a reasonable starting
point for real clients (it is ~100 lines of stdlib).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Dict, Optional, Tuple, Union

from ..errors import ServiceError
from ..observability.trace import TraceRecord, from_wire
from .schemas import SimulationPayload


class ServiceClient:
    """Talks to one :class:`~repro.service.SimulationServer`.

    Args:
        host / port: where the server listens.

    Every method opens its own connection (the server closes after each
    response), so one client instance is safe to share across any
    number of concurrent coroutines.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port

    async def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, str], Dict[str, Any]]:
        """One round-trip; returns ``(status, headers, parsed body)``."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            payload = (
                json.dumps(body, sort_keys=True).encode("utf-8")
                if body is not None
                else b""
            )
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
            status, headers = await _read_head(reader)
            raw = await reader.read()
            parsed = json.loads(raw.decode("utf-8")) if raw else {}
            return status, headers, parsed
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- typed endpoints ---------------------------------------------------

    async def health(self) -> bool:
        status, _, body = await self.request("GET", "/healthz")
        return status == 200 and bool(body.get("ok"))

    async def stats(self) -> Dict[str, Any]:
        _, _, body = await self.request("GET", "/v1/stats")
        return body

    async def submit(
        self, payload: Union[SimulationPayload, Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any]]:
        """Submit one experiment; returns ``(http status, body)``."""
        data = payload.to_dict() if isinstance(payload, SimulationPayload) else payload
        status, _, body = await self.request("POST", "/v1/jobs", body=data)
        return status, body

    async def job(self, job_id: str) -> Dict[str, Any]:
        _, _, body = await self.request("GET", f"/v1/jobs/{job_id}")
        return body

    async def cancel(self, job_id: str) -> Dict[str, Any]:
        _, _, body = await self.request("POST", f"/v1/jobs/{job_id}/cancel")
        return body

    async def wait(
        self,
        job_id: str,
        timeout: float = 60.0,
        interval: float = 0.02,
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final body."""
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            body = await self.job(job_id)
            if body.get("status") in ("done", "failed", "cancelled"):
                return body
            if asyncio.get_running_loop().time() > deadline:
                raise ServiceError(
                    f"job {job_id!r} still {body.get('status')!r} after {timeout}s"
                )
            await asyncio.sleep(interval)

    async def submit_and_wait(
        self,
        payload: Union[SimulationPayload, Dict[str, Any]],
        timeout: float = 60.0,
    ) -> Dict[str, Any]:
        """Submit; raise :class:`ServiceError` on rejection; await result."""
        status, body = await self.submit(payload)
        if status != 202:
            raise ServiceError(
                f"submit rejected ({status}): {body.get('message', body)}"
            )
        return await self.wait(body["job"], timeout=timeout)

    async def stream_events(self, job_id: str) -> AsyncIterator[TraceRecord]:
        """Yield the job's trace records as the server streams them."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write(
                (
                    f"GET /v1/jobs/{job_id}/events HTTP/1.1\r\n"
                    f"Host: {self.host}:{self.port}\r\n"
                    f"Connection: close\r\n\r\n"
                ).encode("latin-1")
            )
            await writer.drain()
            status, _ = await _read_head(reader)
            if status != 200:
                raw = await reader.read()
                body = json.loads(raw.decode("utf-8")) if raw else {}
                raise ServiceError(
                    f"stream rejected ({status}): {body.get('message', body)}"
                )
            async for line in _iter_lines(reader):
                yield from_wire(line)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


async def _read_head(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, str]]:
    """Parse status line + headers; leaves the body unread."""
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise ServiceError(f"malformed response status line: {lines[0]!r}")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if ":" in line:
            name, value = line.split(":", 1)
            headers[name.strip().lower()] = value.strip()
    return int(parts[1]), headers


async def _iter_lines(reader: asyncio.StreamReader) -> AsyncIterator[str]:
    """NDJSON body lines until EOF (the server closes when done)."""
    buffer = b""
    while True:
        chunk = await reader.read(4096)
        if not chunk:
            break
        buffer += chunk
        while b"\n" in buffer:
            line, buffer = buffer.split(b"\n", 1)
            if line.strip():
                yield line.decode("utf-8")
    if buffer.strip():
        yield buffer.decode("utf-8")
