"""Per-tenant admission quotas: classic token buckets.

Each tenant owns a bucket of ``burst`` tokens refilled continuously at
``rate`` tokens per second; one job submission spends one token.  An
empty bucket means the tenant is over quota and the server answers 429
with a ``Retry-After`` derived from the exact refill arithmetic, so a
well-behaved client never needs to guess a backoff.

The clock is injectable for the tests: quota behavior over simulated
hours is asserted in microseconds of real time.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from ..errors import ServiceError


class TokenBucket:
    """One tenant's bucket: ``burst`` capacity, ``rate`` tokens/second."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if rate < 0:
            raise ServiceError(f"quota rate must be >= 0, got {rate}")
        if burst <= 0:
            raise ServiceError(f"quota burst must be > 0, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock if clock is not None else time.monotonic
        self._tokens = self.burst
        self._stamp = self._clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def take(self, tokens: float = 1.0) -> Optional[float]:
        """Spend ``tokens``; ``None`` on success, else seconds-to-retry.

        A zero rate never refills — the bucket is a fixed allowance —
        so exhaustion reports ``float("inf")``.
        """
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return None
        deficit = tokens - self._tokens
        if self.rate <= 0:
            return float("inf")
        return deficit / self.rate

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


class QuotaManager:
    """Token buckets keyed by tenant, created lazily on first sight.

    Args:
        rate: tokens/second per tenant; ``None`` disables quotas
            entirely (every admit succeeds).
        burst: bucket capacity per tenant.
        clock: monotonic-seconds source (injectable for tests).
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: float = 10.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if rate is not None and rate < 0:
            raise ServiceError(f"quota rate must be >= 0, got {rate}")
        self.rate = rate
        self.burst = float(burst)
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def admit(self, tenant: str) -> Optional[float]:
        """``None`` = admitted; a float = rejected, retry after that many s."""
        if self.rate is None:
            return None
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.rate, self.burst, clock=self._clock
                )
        return bucket.take(1.0)

    def snapshot(self) -> Dict[str, float]:
        """Remaining tokens per tenant seen so far (for ``/v1/stats``)."""
        with self._lock:
            buckets = dict(self._buckets)
        return {tenant: bucket.tokens for tenant, bucket in sorted(buckets.items())}
