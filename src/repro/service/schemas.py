"""Wire schemas of the simulation service.

Requests and responses cross the HTTP boundary as JSON objects; these
dataclasses are their validated in-process forms.  The contract mirrors
the AsyncFlow payload idiom: ``from_dict`` rejects unknown keys instead
of silently dropping them (a typo'd ``max_replication`` must be a 400,
not a default-valued run), ``to_dict``/``from_dict`` round-trip to the
identical object, and every constraint violation raises a one-line
:class:`~repro.errors.ServiceError` suitable for a structured error
response.

A payload also knows its *identity*: the canonical JSON of everything
that determines the simulation's numbers — the spec, the replication
protocol, the seed — excluding presentation-only fields (``tenant``,
``label``).  Two payloads with equal identities are the same experiment,
so the server can answer the second from the content-addressed result
cache without executing anything.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.config import SystemSpec
from ..core.experiment import (
    DEFAULT_CONFIDENCE,
    DEFAULT_TARGET_HALF_WIDTH,
    validate_protocol,
)
from ..core.results import ExperimentResult
from ..errors import ReproError, ServiceError

#: Engines a payload may request (``None`` = the executor default).
PAYLOAD_ENGINES = ("incremental", "rescan", "compiled", "batch")


@dataclass
class SimulationPayload:
    """One experiment request, as submitted to ``POST /v1/jobs``.

    Attributes:
        spec: the system to simulate, in :meth:`SystemSpec.to_dict` form.
        tenant: quota accounting bucket; not part of the identity.
        label: result-table label; not part of the identity.
        min_replications / max_replications / confidence /
            target_half_width / root_seed / extra_probes: the
            :func:`~repro.core.experiment.run_experiment` protocol knobs.
        engine: enablement engine, one of :data:`PAYLOAD_ENGINES` or
            ``None`` for the default.
    """

    spec: Dict[str, Any]
    tenant: str = "default"
    label: Optional[str] = None
    min_replications: int = 5
    max_replications: int = 30
    confidence: float = DEFAULT_CONFIDENCE
    target_half_width: float = DEFAULT_TARGET_HALF_WIDTH
    root_seed: int = 0
    extra_probes: bool = False
    engine: Optional[str] = None

    def validate(self) -> SystemSpec:
        """Check every field; return the built, validated spec."""
        if not isinstance(self.spec, dict) or not self.spec:
            raise ServiceError("spec must be a non-empty object")
        if not isinstance(self.tenant, str) or not self.tenant:
            raise ServiceError("tenant must be a non-empty string")
        if self.label is not None and not isinstance(self.label, str):
            raise ServiceError(f"label must be a string, got {self.label!r}")
        try:
            validate_protocol(int(self.min_replications), int(self.max_replications))
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"malformed replication budget: {exc}") from exc
        except ReproError as exc:
            raise ServiceError(str(exc)) from exc
        if not isinstance(self.confidence, (int, float)) or not (
            0.0 < self.confidence < 1.0
        ):
            raise ServiceError(
                f"confidence must be in (0, 1), got {self.confidence!r}"
            )
        if not isinstance(self.target_half_width, (int, float)) or (
            self.target_half_width <= 0
        ):
            raise ServiceError(
                f"target_half_width must be > 0, got {self.target_half_width!r}"
            )
        if not isinstance(self.root_seed, int) or isinstance(self.root_seed, bool):
            raise ServiceError(f"root_seed must be an integer, got {self.root_seed!r}")
        if not isinstance(self.extra_probes, bool):
            raise ServiceError(
                f"extra_probes must be a boolean, got {self.extra_probes!r}"
            )
        if self.engine is not None and self.engine not in PAYLOAD_ENGINES:
            raise ServiceError(
                f"unknown engine {self.engine!r}; expected one of {PAYLOAD_ENGINES}"
            )
        try:
            spec = SystemSpec.from_dict(self.spec)
            spec.validate()
        except ReproError as exc:
            raise ServiceError(str(exc)) from exc
        return spec

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict; exact inverse of :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimulationPayload":
        if not isinstance(payload, dict):
            raise ServiceError(f"payload must be an object, got {type(payload).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ServiceError(
                f"unknown payload keys {sorted(unknown)}; expected {sorted(known)}"
            )
        if "spec" not in payload:
            raise ServiceError("payload is missing required key 'spec'")
        return cls(**payload)

    # -- identity ----------------------------------------------------------

    def identity(self) -> Dict[str, Any]:
        """Everything that determines the numbers (no tenant, no label)."""
        data = self.to_dict()
        data.pop("tenant")
        data.pop("label")
        return data

    def identity_key(self) -> str:
        """Stable digest of :meth:`identity` (dedup / warm-hit lookups)."""
        text = json.dumps(self.identity(), sort_keys=True)
        return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()


@dataclass
class SimulationOutput:
    """One finished job, as returned by ``GET /v1/jobs/{id}``.

    ``metrics`` flattens each estimate to its reportable triple —
    ``{"mean": ..., "half_width": ..., "n": ...}`` — because raw sample
    lists are an implementation detail the wire contract must not pin.
    ``executed`` / ``cache_hits`` expose the warm-hit guarantee: a
    repeat of a cached experiment reports ``executed == 0``.
    """

    job: str
    status: str
    label: str = ""
    metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)
    replications: int = 0
    executed: int = 0
    cache_hits: int = 0
    degraded: bool = False
    failures: int = 0
    error: Optional[str] = None
    elapsed: float = 0.0

    @classmethod
    def from_result(
        cls,
        job: str,
        result: ExperimentResult,
        executed: int,
        cache_hits: int,
        elapsed: float,
    ) -> "SimulationOutput":
        return cls(
            job=job,
            status="done",
            label=result.label,
            metrics={
                name: {
                    "mean": estimate.mean,
                    "half_width": estimate.half_width,
                    "n": estimate.n,
                }
                for name, estimate in sorted(result.estimates.items())
            },
            replications=result.replications,
            executed=executed,
            cache_hits=cache_hits,
            degraded=result.degraded,
            failures=len(result.failures),
            error=None,
            elapsed=elapsed,
        )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimulationOutput":
        if not isinstance(payload, dict):
            raise ServiceError(f"output must be an object, got {type(payload).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ServiceError(
                f"unknown output keys {sorted(unknown)}; expected {sorted(known)}"
            )
        for required in ("job", "status"):
            if required not in payload:
                raise ServiceError(f"output is missing required key {required!r}")
        return cls(**payload)
