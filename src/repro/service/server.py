"""The simulation service: an asyncio JSON-over-HTTP job server.

One long-lived process owns a shared :class:`~repro.core.SweepPool`
(paying worker spin-up and compiled-model warm-up once), a persistent
result cache, and a bounded job queue; clients submit experiment
payloads over plain HTTP/1.1 and either poll for the finished table or
stream typed progress records as NDJSON.  Everything is stdlib — the
HTTP layer is a deliberately minimal ``asyncio.start_server`` parser,
not a framework.

Endpoints (all JSON; errors are one-line structured objects
``{"error": "<Type>", "message": "<one line>"}``):

* ``GET  /healthz`` — liveness probe.
* ``GET  /v1/stats`` — queue counts, cache traffic, quota balances,
  pool state.
* ``POST /v1/jobs`` — submit a :class:`SimulationPayload`; 202 with the
  job id, 400 on malformed payloads, 429 (+ ``Retry-After``) when the
  tenant is over quota, 503 when the queue is full or the server is
  draining.
* ``GET  /v1/jobs/{id}`` — the job's status / finished
  :class:`SimulationOutput`.
* ``GET  /v1/jobs/{id}/events`` — NDJSON stream of the job's
  :class:`~repro.observability.trace.TraceRecord` events (the PR-3
  trace schema as wire format), ending when the job reaches a terminal
  state.
* ``POST /v1/jobs/{id}/cancel`` — cooperative cancellation: a queued
  job is dropped immediately, a running one aborts at its next
  progress event.

Jobs execute one at a time on a single worker thread, each as a
one-point :func:`~repro.core.run_interleaved_sweep` borrowing the
shared pool — so results are bit-identical to the serial
``run_experiment`` path, and a warm repeat of a cached experiment
executes zero replications.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..core.sweeps import SweepPool, run_interleaved_sweep
from ..errors import ReproError, ServiceError
from ..observability.trace import (
    JOB_ACCEPTED,
    JOB_DONE,
    JOB_PROGRESS,
    JOB_START,
    to_wire,
)
from ..resilience.executor import ResilienceConfig
from ..resilience.result_cache import shared_cache
from .queue import Job, JobQueue, QueueFull
from .quotas import QuotaManager
from .schemas import SimulationPayload, SimulationOutput

#: How often pollers (worker idle loop, event streamers) re-check, s.
_POLL_INTERVAL = 0.02

#: Request parsing caps — far above any legitimate payload.
_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _JobCancelled(Exception):
    """Raised from the progress callback to abort a cancelled job."""


@dataclass
class ServiceConfig:
    """Server knobs (all have service-grade defaults).

    Attributes:
        host / port: bind address; ``port=0`` lets the OS pick (the
            bound port is readable as ``server.port`` after start).
        jobs: sweep-pool worker processes; 1 without a timeout runs
            replications on the worker thread itself (zero children).
        queue_limit: max queued-or-running jobs before submits get 503.
        quota_rate: per-tenant admitted jobs per second (``None``
            disables quotas).
        quota_burst: per-tenant token-bucket capacity.
        cache_dir: persistent result-cache directory (``None`` disables
            warm hits).
        timeout: per-replication wall-clock budget; forces process
            workers.
    """

    host: str = "127.0.0.1"
    port: int = 0
    jobs: int = 1
    queue_limit: int = 64
    quota_rate: Optional[float] = None
    quota_burst: float = 10.0
    cache_dir: Optional[str] = None
    timeout: Optional[float] = None

    def validate(self) -> None:
        if self.jobs < 1:
            raise ServiceError(f"jobs must be >= 1, got {self.jobs}")
        if self.queue_limit < 1:
            raise ServiceError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.quota_rate is not None and self.quota_rate < 0:
            raise ServiceError(f"quota_rate must be >= 0, got {self.quota_rate}")
        if self.quota_burst <= 0:
            raise ServiceError(f"quota_burst must be > 0, got {self.quota_burst}")
        if self.timeout is not None and self.timeout <= 0:
            raise ServiceError(f"timeout must be > 0, got {self.timeout}")


class SimulationServer:
    """The long-lived job server; one instance per process.

    Example (in-process, as the tests use it)::

        server = SimulationServer(ServiceConfig())
        await server.start()
        ...  # talk to it on 127.0.0.1:server.port
        await server.shutdown()
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.config.validate()
        self.queue = JobQueue(self.config.queue_limit)
        self.quotas = QuotaManager(self.config.quota_rate, self.config.quota_burst)
        self.pool = SweepPool(jobs=self.config.jobs, timeout=self.config.timeout)
        self.cache = (
            shared_cache(self.config.cache_dir) if self.config.cache_dir else None
        )
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker_task: Optional[asyncio.Task] = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-job"
        )
        self._wake = asyncio.Event()
        self._closing = False
        self._running: Optional[Job] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the job worker."""
        if self._server is not None:
            raise ServiceError("server already started")
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._worker_task = asyncio.create_task(self._worker())

    async def shutdown(self) -> None:
        """Drain and stop: finish accepted jobs, leave zero children.

        New submissions are refused with 503 the moment this is called;
        already-accepted jobs (running *and* queued — their 202 was a
        promise) run to completion, then the worker thread, the pool
        workers, and the listening socket are all torn down.  Idempotent.
        """
        self._closing = True
        self._wake.set()
        if self._worker_task is not None:
            await self._worker_task
            self._worker_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=True)
        self.pool.close()

    async def serve_forever(self) -> None:
        """Block until cancelled; then shut down gracefully."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.shutdown()

    # -- the job worker ----------------------------------------------------

    async def _worker(self) -> None:
        """Run queued jobs one at a time on the executor thread."""
        loop = asyncio.get_running_loop()
        while True:
            job = self.queue.next_runnable()
            if job is None:
                if self._closing:
                    return
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(), _POLL_INTERVAL * 5)
                except asyncio.TimeoutError:
                    pass
                continue
            self._running = job
            try:
                await loop.run_in_executor(self._executor, self._run_job, job)
            finally:
                self._running = None

    def _run_job(self, job: Job) -> None:
        """Execute one job (worker thread; never raises)."""
        job.status = "running"
        job.emit(JOB_START, job=job.id)
        started = time.monotonic()
        try:
            payload = job.payload
            spec = payload.validate()
            resilience = ResilienceConfig(
                jobs=self.config.jobs,
                timeout=self.config.timeout,
                engine=payload.engine,
                cache_dir=self.config.cache_dir,
            )

            def progress(event: Dict[str, Any]) -> None:
                if job.cancel.is_set():
                    raise _JobCancelled()
                job.emit(
                    JOB_PROGRESS,
                    job=job.id,
                    event=event["event"],
                    point=event.get("point"),
                    replication=event.get("replication"),
                    ok=event.get("ok"),
                )

            outcome = run_interleaved_sweep(
                [({}, spec)],
                label=payload.label,
                min_replications=payload.min_replications,
                max_replications=payload.max_replications,
                confidence=payload.confidence,
                target_half_width=payload.target_half_width,
                root_seed=payload.root_seed,
                extra_probes=payload.extra_probes,
                resilience=resilience,
                pool=self.pool,
                progress=progress,
            )
            output = SimulationOutput.from_result(
                job.id,
                outcome.results[0],
                executed=outcome.stats.executed,
                cache_hits=outcome.stats.cache_hits,
                elapsed=time.monotonic() - started,
            )
            job.finish("done", output)
        except _JobCancelled:
            job.finish("cancelled", error="cancelled by client")
        except ReproError as exc:
            job.finish("failed", error=f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # noqa: BLE001 — a job must never kill the worker
            job.finish("failed", error=f"{type(exc).__name__}: {exc}")
        finally:
            output = job.output
            job.emit(
                JOB_DONE,
                job=job.id,
                status=job.status,
                replications=output.replications if output else 0,
                executed=output.executed if output else 0,
                cache_hits=output.cache_hits if output else 0,
            )

    # -- HTTP --------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                await self._respond_error(writer, 400, "malformed HTTP request")
                return
            method, path, body = request
            await self._route(writer, method, path, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return None
        if len(head) > _MAX_HEADER_BYTES:
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            return None
        method, target = parts[0].upper(), parts[1]
        length = 0
        for line in lines[1:]:
            if line.lower().startswith("content-length:"):
                try:
                    length = int(line.split(":", 1)[1].strip())
                except ValueError:
                    return None
        if length < 0 or length > _MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return method, target.split("?", 1)[0], body

    async def _route(
        self, writer: asyncio.StreamWriter, method: str, path: str, body: bytes
    ) -> None:
        if path == "/healthz" and method == "GET":
            await self._respond(writer, 200, {"ok": True})
        elif path == "/v1/stats" and method == "GET":
            await self._respond(writer, 200, self.stats())
        elif path == "/v1/jobs" and method == "POST":
            await self._submit(writer, body)
        elif path.startswith("/v1/jobs/") and path.endswith("/events"):
            if method != "GET":
                await self._respond_error(writer, 405, f"{method} not allowed here")
                return
            await self._stream_events(writer, path[len("/v1/jobs/") : -len("/events")])
        elif path.startswith("/v1/jobs/") and path.endswith("/cancel"):
            if method != "POST":
                await self._respond_error(writer, 405, f"{method} not allowed here")
                return
            await self._cancel(writer, path[len("/v1/jobs/") : -len("/cancel")])
        elif path.startswith("/v1/jobs/") and method == "GET":
            await self._describe(writer, path[len("/v1/jobs/") :])
        else:
            await self._respond_error(writer, 404, f"no route for {method} {path}")

    async def _submit(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        if self._closing:
            await self._respond_error(writer, 503, "server is shutting down")
            return
        try:
            raw = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            await self._respond_error(writer, 400, f"body is not JSON: {exc}")
            return
        try:
            payload = SimulationPayload.from_dict(raw)
            payload.validate()
        except ServiceError as exc:
            await self._respond_error(writer, 400, str(exc))
            return
        retry_after = self.quotas.admit(payload.tenant)
        if retry_after is not None:
            await self._respond_error(
                writer,
                429,
                f"tenant {payload.tenant!r} is over quota",
                headers={
                    "Retry-After": (
                        f"{retry_after:.3f}"
                        if retry_after != float("inf")
                        else "3600"
                    )
                },
            )
            return
        try:
            job = self.queue.submit(payload)
        except QueueFull as exc:
            await self._respond_error(writer, 503, str(exc))
            return
        job.emit(JOB_ACCEPTED, job=job.id, tenant=payload.tenant)
        self._wake.set()
        await self._respond(writer, 202, {"job": job.id, "status": job.status})

    async def _describe(self, writer: asyncio.StreamWriter, job_id: str) -> None:
        try:
            job = self.queue.get(job_id)
        except ServiceError as exc:
            await self._respond_error(writer, 404, str(exc))
            return
        await self._respond(writer, 200, job.describe())

    async def _cancel(self, writer: asyncio.StreamWriter, job_id: str) -> None:
        try:
            job = self.queue.get(job_id)
        except ServiceError as exc:
            await self._respond_error(writer, 404, str(exc))
            return
        was_live = job.request_cancel()
        await self._respond(
            writer, 200, {"job": job.id, "status": job.status, "cancelled": was_live}
        )

    async def _stream_events(self, writer: asyncio.StreamWriter, job_id: str) -> None:
        try:
            job = self.queue.get(job_id)
        except ServiceError as exc:
            await self._respond_error(writer, 404, str(exc))
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        cursor = 0
        while True:
            records = job.events(since=cursor)
            cursor += len(records)
            for record in records:
                writer.write(to_wire(record).encode("utf-8") + b"\n")
            await writer.drain()
            if job.done and not job.events(since=cursor):
                return
            await asyncio.sleep(_POLL_INTERVAL)

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The ``/v1/stats`` body (also handy for in-process asserts)."""
        return {
            "jobs": self.queue.counts(),
            "cache": self.cache.stats() if self.cache is not None else None,
            "quotas": self.quotas.snapshot(),
            "pool": {
                "jobs": self.pool.jobs,
                "timeout": self.pool.timeout,
                "live_children": len(self.pool.live_children()),
            },
            "closing": self._closing,
        }

    # -- response plumbing -------------------------------------------------

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload)
        await writer.drain()

    async def _respond_error(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        message: str,
        error: str = "ServiceError",
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        """One-line structured error: ``{"error": type, "message": line}``."""
        await self._respond(
            writer,
            status,
            {"error": error, "message": " ".join(str(message).split())},
            headers=headers,
        )
