"""Reproducible random-number streams for stochastic activities.

Mobius (and sound DES practice generally) gives each stochastic element
its own random stream so that changing one activity's distribution does
not perturb the sample path of every other activity — a property known as
*common random numbers*, which dramatically reduces variance when
comparing schedulers on "the same" workload.

:class:`StreamFactory` derives independent, stable streams from a root
seed plus a string key (usually the activity's fully qualified name) plus
a replication index.  The derivation hashes the key, so adding a new
activity to a model does not renumber existing streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, key: str, replication: int = 0) -> int:
    """Derive a stable 64-bit seed from (root seed, key, replication).

    Uses BLAKE2b over the three components, so the mapping is documented,
    portable, and independent of Python's hash randomization.
    """
    digest = hashlib.blake2b(
        f"{root_seed}:{key}:{replication}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class StreamFactory:
    """Hands out named :class:`random.Random` streams for one replication.

    Streams are memoized: asking for the same key twice returns the same
    generator object, so one activity keeps a single stream for the whole
    run.

    Example:
        >>> factory = StreamFactory(root_seed=42, replication=0)
        >>> a = factory.stream("vm0.workload")
        >>> b = factory.stream("vm1.workload")
        >>> a is factory.stream("vm0.workload")
        True
        >>> a is b
        False
    """

    def __init__(self, root_seed: int = 0, replication: int = 0) -> None:
        self.root_seed = int(root_seed)
        self.replication = int(replication)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, key: str) -> random.Random:
        """Return the (memoized) stream for ``key``."""
        existing = self._streams.get(key)
        if existing is not None:
            return existing
        rng = random.Random(derive_seed(self.root_seed, key, self.replication))
        self._streams[key] = rng
        return rng

    def reseed(self, root_seed: int, replication: int) -> None:
        """Re-arm every memoized stream for another replication, in place.

        ``rng.seed(n)`` puts a ``random.Random`` in exactly the state of a
        fresh ``random.Random(n)``, so reseeding the existing objects is
        indistinguishable from building a new factory — except that object
        identity survives.  That identity matters for model reuse: builder
        closures capture their stream objects at construction time, and a
        fresh factory would hand the simulator *different* objects for the
        same keys, silently splitting what should be one interleaved
        stream into two.
        """
        self.root_seed = int(root_seed)
        self.replication = int(replication)
        for key, rng in self._streams.items():
            rng.seed(derive_seed(self.root_seed, key, self.replication))

    def for_replication(self, replication: int) -> "StreamFactory":
        """A sibling factory with the same root seed but another replication.

        Replications must be statistically independent, yet a fixed
        (root_seed, key) pair should map to the same family of streams so
        experiments are reproducible end to end.
        """
        return StreamFactory(self.root_seed, replication)

    def keys(self) -> list:
        """Names of all streams created so far (for diagnostics)."""
        return sorted(self._streams)
