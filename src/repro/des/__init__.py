"""Discrete-event simulation kernel.

The lowest layer of the framework: an event queue with cancellation, a
monotonic simulation clock, reproducible per-activity random streams, and
a catalogue of sampling distributions.  The SAN engine
(:mod:`repro.san`) is built entirely on these primitives.
"""

from .clock import SimulationClock
from .distributions import (
    Deterministic,
    Discretized,
    Distribution,
    Empirical,
    Erlang,
    Exponential,
    Geometric,
    LogNormal,
    MarkingDependentExponential,
    Normal,
    Uniform,
    UniformInt,
    from_spec,
)
from .event_queue import Event, EventQueue
from .random_streams import StreamFactory, derive_seed

__all__ = [
    "SimulationClock",
    "Event",
    "EventQueue",
    "StreamFactory",
    "derive_seed",
    "Distribution",
    "Deterministic",
    "Uniform",
    "UniformInt",
    "Exponential",
    "Geometric",
    "MarkingDependentExponential",
    "Normal",
    "LogNormal",
    "Erlang",
    "Empirical",
    "Discretized",
    "from_spec",
]
