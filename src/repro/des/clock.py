"""Simulation clock.

A thin object around the current simulation time.  It exists as a class
(rather than a float threaded through call sites) so that gates, reward
variables, and user scheduling functions can all observe a single,
consistent notion of "now", and so tests can assert monotonicity.
"""

from __future__ import annotations

from ..errors import SimulationError


class SimulationClock:
    """Monotonically advancing simulation time.

    Example:
        >>> clock = SimulationClock()
        >>> clock.now
        0.0
        >>> clock.advance_to(3.5)
        >>> clock.now
        3.5
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time``.

        Raises:
            SimulationError: if ``time`` is earlier than the current time.
                Equal time is allowed (instantaneous activities complete in
                zero simulated time).
        """
        if time < self._now:
            raise SimulationError(
                f"clock cannot run backwards: now={self._now}, requested={time}"
            )
        self._now = time

    def reset(self, start: float = 0.0) -> None:
        """Rewind the clock; only legal between simulation runs."""
        self._now = float(start)

    def __repr__(self) -> str:
        return f"SimulationClock(now={self._now})"
