"""A discrete-event queue with O(log n) insert/pop and O(1) cancellation.

The queue is the beating heart of the SAN simulator: every scheduled
activity completion is an :class:`Event`.  SAN semantics require that an
activity scheduled to complete can later be *aborted* (when its enabling
condition is invalidated by another activity's completion), so the queue
supports cheap cancellation via tombstoning — a cancelled event stays in
the heap but is skipped on pop.

Ties are broken deterministically: events at equal time pop in
(priority, insertion-order) order, which makes whole simulations
reproducible for a fixed seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional


@dataclass(order=True)
class Event:
    """A scheduled occurrence.

    Attributes:
        time: simulation time at which the event fires.
        priority: lower values fire first among same-time events.
        sequence: insertion counter; the final tie-breaker.
        payload: opaque object handed back to the caller on pop.
        cancelled: tombstone flag set by :meth:`EventQueue.cancel`.
    """

    time: float
    priority: int
    sequence: int
    payload: Any = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventQueue:
    """Priority queue of :class:`Event` objects keyed by (time, priority).

    Example:
        >>> q = EventQueue()
        >>> e = q.schedule(5.0, "hello")
        >>> q.pop().payload
        'hello'
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._sequence = 0
        self._live = 0
        self._scheduled_total = 0
        self._cancelled_total = 0
        self._popped_total = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def schedule(self, time: float, payload: Any, priority: int = 0) -> Event:
        """Insert an event and return a handle usable with :meth:`cancel`."""
        if time != time:  # NaN guard: a NaN time would corrupt heap order.
            raise ValueError("event time must not be NaN")
        event = Event(time=time, priority=priority, sequence=self._sequence, payload=payload)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        self._scheduled_total += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event.

        Cancelling twice is a no-op; cancelling an already-popped (or
        cleared) event is also a no-op — the live count is decremented
        exactly once per event lifetime.
        """
        if not event.cancelled:
            event.cancelled = True
            if self._contains(event):
                self._live -= 1
                self._cancelled_total += 1

    def _contains(self, event: Event) -> bool:
        # An event that left the queue (popped, or dropped by clear) is
        # no longer counted as live.  We mark such events by setting
        # their sequence negative, which no live event ever has.
        return event.sequence >= 0

    def peek(self) -> Optional[Event]:
        """Return the next live event without removing it, or ``None``."""
        self._drop_tombstones()
        return self._heap[0] if self._heap else None

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises:
            IndexError: if the queue holds no live events.
        """
        self._drop_tombstones()
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        event = heapq.heappop(self._heap)
        self._live -= 1
        self._popped_total += 1
        event.sequence = -1 - event.sequence  # mark as popped (see _contains)
        return event

    def _drop_tombstones(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def clear(self) -> None:
        """Remove every event, live or cancelled.

        Dropped events are marked as no longer queued, so a stale handle
        passed to :meth:`cancel` afterwards cannot corrupt the live
        count of events scheduled after the clear.
        """
        for event in self._heap:
            if event.sequence >= 0:
                event.sequence = -1 - event.sequence
        self._heap.clear()
        self._live = 0

    def next_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        head = self.peek()
        return head.time if head is not None else None

    def stats(self) -> Dict[str, int]:
        """Lifetime counters (survive :meth:`clear`) plus the live count."""
        return {
            "events_scheduled": self._scheduled_total,
            "events_cancelled": self._cancelled_total,
            "events_popped": self._popped_total,
            "events_live": self._live,
        }

    def iter_live(self) -> Iterator[Event]:
        """Iterate over live events in heap (not chronological) order.

        Intended for debugging and tests only.
        """
        return (e for e in self._heap if not e.cancelled)
