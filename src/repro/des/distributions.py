"""Sampling distributions for activity delays and workload parameters.

The paper allows "any distribution and rate" for workload generation and
timed-activity delays.  This module provides the catalogue Mobius offers
for timed activities, each as a small object with:

* ``sample(rng)``   — draw one value using the supplied stream;
* ``mean()``        — analytic mean (used by tests and sanity checks);
* a readable ``repr`` so experiment configs are self-describing.

Two adapters matter for this framework specifically:

* :class:`Discretized` rounds a continuous draw up to a positive integer —
  the virtualization model runs in integral clock ticks, so load durations
  must be whole time units ≥ 1.
* :class:`Empirical` replays observed values, which supports
  trace-driven workloads (see :mod:`repro.workloads.traces`).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from random import Random
from typing import Sequence

from ..errors import ConfigurationError


class Distribution(ABC):
    """A sampling distribution over the reals."""

    @abstractmethod
    def sample(self, rng: Random) -> float:
        """Draw one value using ``rng``."""

    @abstractmethod
    def mean(self) -> float:
        """Analytic mean of the distribution."""

    def sample_many(self, rng: Random, n: int) -> list:
        """Draw ``n`` values (convenience for tests and warm-up studies)."""
        return [self.sample(rng) for _ in range(n)]


class Deterministic(Distribution):
    """Always returns the same value.

    The hypervisor ``Clock`` activity uses ``Deterministic(1)`` — it fires
    exactly every time unit, as in the paper.
    """

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ConfigurationError(f"Deterministic value must be >= 0, got {value}")
        self.value = float(value)

    def sample(self, rng: Random) -> float:
        return self.value

    def mean(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Deterministic({self.value})"


class Uniform(Distribution):
    """Continuous uniform on ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if high < low:
            raise ConfigurationError(f"Uniform needs low <= high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: Random) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return f"Uniform({self.low}, {self.high})"


class UniformInt(Distribution):
    """Discrete uniform on the integers ``{low, ..., high}`` inclusive.

    The default workload-duration distribution in this framework: the
    paper's experiments draw integral load durations.
    """

    def __init__(self, low: int, high: int) -> None:
        if high < low:
            raise ConfigurationError(f"UniformInt needs low <= high, got [{low}, {high}]")
        self.low = int(low)
        self.high = int(high)

    def sample(self, rng: Random) -> float:
        return float(rng.randint(self.low, self.high))

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return f"UniformInt({self.low}, {self.high})"


class Exponential(Distribution):
    """Exponential with the given ``rate`` (mean ``1/rate``).

    The canonical SAN timed-activity distribution (memoryless firing).
    """

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ConfigurationError(f"Exponential rate must be > 0, got {rate}")
        self.rate = float(rate)

    def sample(self, rng: Random) -> float:
        return rng.expovariate(self.rate)

    def mean(self) -> float:
        return 1.0 / self.rate

    def __repr__(self) -> str:
        return f"Exponential(rate={self.rate})"


class Geometric(Distribution):
    """Geometric on {1, 2, ...} with success probability ``p``.

    The discrete analogue of the exponential; handy for integral load
    durations with a long tail.
    """

    def __init__(self, p: float) -> None:
        if not 0 < p <= 1:
            raise ConfigurationError(f"Geometric p must be in (0, 1], got {p}")
        self.p = float(p)

    def sample(self, rng: Random) -> float:
        if self.p == 1.0:
            return 1.0
        # Inverse-CDF: ceil(log(U) / log(1-p)) is geometric on {1, 2, ...}.
        u = rng.random()
        while u == 0.0:  # avoid log(0); probability ~0 but be exact
            u = rng.random()
        return float(math.ceil(math.log(u) / math.log(1.0 - self.p)))

    def mean(self) -> float:
        return 1.0 / self.p

    def __repr__(self) -> str:
        return f"Geometric(p={self.p})"


class Normal(Distribution):
    """Normal(mu, sigma), truncated at zero on sampling.

    Truncation keeps delays non-negative; tests should choose mu >> sigma
    when the analytic mean matters.
    """

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma < 0:
            raise ConfigurationError(f"Normal sigma must be >= 0, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def sample(self, rng: Random) -> float:
        return max(0.0, rng.gauss(self.mu, self.sigma))

    def mean(self) -> float:
        return self.mu

    def __repr__(self) -> str:
        return f"Normal(mu={self.mu}, sigma={self.sigma})"


class LogNormal(Distribution):
    """Log-normal with underlying normal parameters (mu, sigma)."""

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma < 0:
            raise ConfigurationError(f"LogNormal sigma must be >= 0, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def sample(self, rng: Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)

    def __repr__(self) -> str:
        return f"LogNormal(mu={self.mu}, sigma={self.sigma})"


class Erlang(Distribution):
    """Erlang-k: sum of ``k`` exponentials each with the given ``rate``."""

    def __init__(self, k: int, rate: float) -> None:
        if k < 1:
            raise ConfigurationError(f"Erlang k must be >= 1, got {k}")
        if rate <= 0:
            raise ConfigurationError(f"Erlang rate must be > 0, got {rate}")
        self.k = int(k)
        self.rate = float(rate)

    def sample(self, rng: Random) -> float:
        return sum(rng.expovariate(self.rate) for _ in range(self.k))

    def mean(self) -> float:
        return self.k / self.rate

    def __repr__(self) -> str:
        return f"Erlang(k={self.k}, rate={self.rate})"


class MarkingDependentExponential(Distribution):
    """Exponential whose rate is evaluated at sampling time.

    Mobius allows activity rates to be *marking dependent* — e.g. a
    service rate proportional to the number of busy servers.  The rate
    callable is a zero-argument closure over places, like gate code::

        MarkingDependentExponential(lambda: mu * min(servers, queue.tokens))

    ``mean()`` reports ``1/rate()`` at the *current* marking (the
    instantaneous mean), which is what tests and sanity checks want.

    The CTMC solver supports these too: it evaluates the rate in each
    explored state.
    """

    def __init__(self, rate_fn) -> None:
        if not callable(rate_fn):
            raise ConfigurationError(
                "MarkingDependentExponential needs a callable rate"
            )
        self.rate_fn = rate_fn

    @property
    def rate(self) -> float:
        """The rate in the current marking (must be > 0 when sampled)."""
        value = float(self.rate_fn())
        if value <= 0:
            raise ConfigurationError(
                f"marking-dependent rate must be > 0 when enabled, got {value}"
            )
        return value

    def sample(self, rng: Random) -> float:
        return rng.expovariate(self.rate)

    def mean(self) -> float:
        return 1.0 / self.rate

    def __repr__(self) -> str:
        return "MarkingDependentExponential(<rate_fn>)"


class Empirical(Distribution):
    """Samples uniformly from a fixed sequence of observed values.

    Supports trace-driven workloads: record the load durations from one
    run (or a real trace) and replay their empirical distribution.
    """

    def __init__(self, values: Sequence[float]) -> None:
        if not values:
            raise ConfigurationError("Empirical needs at least one value")
        self.values = [float(v) for v in values]

    def sample(self, rng: Random) -> float:
        return rng.choice(self.values)

    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    def __repr__(self) -> str:
        return f"Empirical(n={len(self.values)})"


class Discretized(Distribution):
    """Wraps any distribution, rounding samples up to an integer >= ``floor``.

    Load durations in the virtualization model are whole clock ticks and
    must be at least 1 (a zero-length workload would complete without ever
    occupying a VCPU).
    """

    def __init__(self, inner: Distribution, floor: int = 1) -> None:
        if floor < 0:
            raise ConfigurationError(f"Discretized floor must be >= 0, got {floor}")
        self.inner = inner
        self.floor = int(floor)

    def sample(self, rng: Random) -> float:
        return float(max(self.floor, math.ceil(self.inner.sample(rng))))

    def mean(self) -> float:
        # The exact mean of ceil(X) clipped below is distribution-specific;
        # report the inner mean as the documented approximation.
        return max(float(self.floor), self.inner.mean())

    def __repr__(self) -> str:
        return f"Discretized({self.inner!r}, floor={self.floor})"


_DISTRIBUTIONS = {
    "deterministic": Deterministic,
    "uniform": Uniform,
    "uniform_int": UniformInt,
    "exponential": Exponential,
    "geometric": Geometric,
    "normal": Normal,
    "lognormal": LogNormal,
    "erlang": Erlang,
}


def from_spec(spec) -> Distribution:
    """Build a distribution from a declarative spec.

    Accepts either an existing :class:`Distribution` (returned as-is) or a
    dict like ``{"kind": "uniform_int", "low": 5, "high": 15}``.  This is
    what lets :mod:`repro.core.config` express workloads as plain data.

    Raises:
        ConfigurationError: unknown kind or bad parameters.
    """
    if isinstance(spec, Distribution):
        return spec
    if not isinstance(spec, dict):
        raise ConfigurationError(
            f"distribution spec must be a Distribution or dict, got {type(spec).__name__}"
        )
    params = dict(spec)
    kind = params.pop("kind", None)
    if kind not in _DISTRIBUTIONS:
        raise ConfigurationError(
            f"unknown distribution kind {kind!r}; valid kinds: {sorted(_DISTRIBUTIONS)}"
        )
    try:
        return _DISTRIBUTIONS[kind](**params)
    except TypeError as exc:
        raise ConfigurationError(f"bad parameters for {kind!r}: {exc}") from exc
