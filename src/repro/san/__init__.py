"""Stochastic Activity Network engine (the Mobius stand-in).

Implements the SAN formalism of Sanders & Meyer — places, extended
places, timed and instantaneous activities with cases, input/output
gates, Join/Replicate composition — plus a discrete-event simulator and
reward variables, which together replace the closed-source Mobius tool
the paper used.
"""

from .activities import Activity, Case, InstantaneousActivity, TimedActivity
from .analysis import ReachabilityAnalyzer
from .compiled import (
    ENGINES,
    BatchCompiledSANSimulator,
    CompiledSANSimulator,
    build_simulator,
    place_matrix,
    resolve_engine,
    run_lanes,
)
from .composed import ComposedModel, SharedVariable, join, replicate
from .ctmc import CTMCSolver
from .dot import save_dot, to_dot
from .gates import InputGate, OutputGate
from .model import ModelBase, SANModel
from .places import ExtendedPlace, Marking, Place, PlaceLike, share
from .reward import ImpulseReward, RateReward, RatioRateReward, RewardVariable
from .simulator import SANSimulator
from .state import MarkingTrace

__all__ = [
    "Activity",
    "Case",
    "InstantaneousActivity",
    "TimedActivity",
    "ComposedModel",
    "SharedVariable",
    "join",
    "replicate",
    "CTMCSolver",
    "ReachabilityAnalyzer",
    "to_dot",
    "save_dot",
    "InputGate",
    "OutputGate",
    "ModelBase",
    "SANModel",
    "ExtendedPlace",
    "Marking",
    "Place",
    "PlaceLike",
    "share",
    "ImpulseReward",
    "RateReward",
    "RatioRateReward",
    "RewardVariable",
    "SANSimulator",
    "CompiledSANSimulator",
    "BatchCompiledSANSimulator",
    "ENGINES",
    "build_simulator",
    "place_matrix",
    "resolve_engine",
    "run_lanes",
    "MarkingTrace",
]
