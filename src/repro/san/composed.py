"""Composed SAN models: the Join and Replicate operations.

Mobius builds large models from small ones with two operators:

* **Join** — place several sub-models side by side and *share* chosen
  state variables between them.  The paper's Table 1 ("join places in
  Virtual Machine model") and Table 2 ("join places in Virtual System
  model") are exactly the shared-variable declarations of two Joins.
* **Replicate** — stamp out N copies of a sub-model, sharing chosen
  variables across all replicas.

:func:`join` takes independently constructed sub-models plus a list of
:class:`SharedVariable` declarations; member places are unified onto a
single storage cell (see :func:`repro.san.places.share`), so gates built
against any member observe and mutate the same marking.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ModelError
from .activities import Activity
from .model import ModelBase, SANModel
from .places import PlaceLike, share


class SharedVariable:
    """Declares one join place: a shared name plus its member places.

    Args:
        name: the shared variable's name in the composed model's
            namespace (e.g. ``"Blocked"``).
        members: ``(submodel_name, place_path)`` pairs; ``place_path`` is
            a dot-separated path valid inside that sub-model (so nested
            composed models can be joined, as the paper's Table 2 does
            with ``VCPU_Scheduler->VCPU1->Schedule_In``).
    """

    def __init__(self, name: str, members: Sequence[Tuple[str, str]]) -> None:
        if not name:
            raise ModelError("a shared variable needs a non-empty name")
        if not members:
            raise ModelError(f"shared variable {name!r} needs at least one member")
        self.name = name
        self.members = [(str(sub), str(path)) for sub, path in members]

    def __repr__(self) -> str:
        members = ", ".join(f"{sub}->{path}" for sub, path in self.members)
        return f"SharedVariable({self.name!r}: {members})"


class ComposedModel(ModelBase):
    """The result of a Join (or Replicate): behaves like one big model.

    Place names are qualified ``<submodel>.<path>``; each shared variable
    is *additionally* exposed under its bare shared name, pointing at the
    unified place.  Activities keep their sub-model-qualified names so
    their random streams stay distinct.
    """

    def __init__(
        self,
        name: str,
        submodels: Dict[str, ModelBase],
        shared: Sequence[SharedVariable],
    ) -> None:
        if not name:
            raise ModelError("a composed model needs a non-empty name")
        self.name = name
        self.submodels = dict(submodels)
        self.shared = list(shared)
        self._places: Dict[str, PlaceLike] = {}
        self._activities: List[Activity] = []
        self._build()

    def _build(self) -> None:
        # 1. Qualified namespace for every sub-model place.
        for sub_name, sub in self.submodels.items():
            if "." in sub_name:
                raise ModelError(
                    f"composed model {self.name!r}: submodel name {sub_name!r} "
                    "must not contain '.'"
                )
            for path, place in sub.places().items():
                self._places[f"{sub_name}.{path}"] = place

        # 2. Unify each shared variable's members onto one cell and expose
        #    the shared name.
        for var in self.shared:
            members = []
            for sub_name, path in var.members:
                if sub_name not in self.submodels:
                    raise ModelError(
                        f"composed model {self.name!r}: shared variable "
                        f"{var.name!r} references unknown submodel {sub_name!r}"
                    )
                members.append(self.submodels[sub_name].place(path))
            if var.name in self._places and self._places[var.name] not in members:
                raise ModelError(
                    f"composed model {self.name!r}: shared name {var.name!r} "
                    "collides with an existing place name"
                )
            if len(members) > 1:
                share(members)
            self._places[var.name] = members[0]

        # 3. Flatten activities, prefixing qualified names once.
        for sub_name, sub in self.submodels.items():
            composed_into = getattr(sub, "_composed_into", None)
            if composed_into is not None:
                raise ModelError(
                    f"model {sub.name!r} is already part of composed model "
                    f"{composed_into!r}; build a fresh instance instead"
                )
            for activity in sub.activities():
                # An activity's qualified name already starts with its own
                # model's name; re-prefix the sub-model key only when the
                # caller registered the model under a different one.
                if activity.qualified_name.split(".", 1)[0] == sub_name:
                    activity.qualified_name = f"{self.name}.{activity.qualified_name}"
                else:
                    activity.qualified_name = (
                        f"{self.name}.{sub_name}.{activity.qualified_name}"
                    )
                self._activities.append(activity)
            sub._composed_into = self.name
        # A composed model can itself be joined once more (nested joins).
        self._composed_into: Optional[str] = None

    # -- ModelBase --------------------------------------------------------

    def places(self) -> Dict[str, PlaceLike]:
        return dict(self._places)

    def activities(self) -> List[Activity]:
        return list(self._activities)

    # -- introspection ----------------------------------------------------

    def join_place_table(self) -> List[Dict[str, str]]:
        """The composed model's join places, as rows like the paper's tables.

        Each row has a ``state_variable`` (the shared name) and
        ``submodel_variables`` (the ``sub->path`` members), matching the
        layout of Table 1 / Table 2 in the paper.
        """
        rows = []
        for var in self.shared:
            rows.append(
                {
                    "state_variable": var.name,
                    "submodel_variables": [f"{sub}->{path}" for sub, path in var.members],
                }
            )
        return rows

    def __repr__(self) -> str:
        return (
            f"ComposedModel({self.name!r}, submodels={sorted(self.submodels)}, "
            f"shared={len(self.shared)})"
        )


def join(
    name: str,
    submodels: Dict[str, ModelBase],
    shared: Sequence[SharedVariable] = (),
) -> ComposedModel:
    """Compose sub-models, sharing the declared variables (Mobius Join)."""
    return ComposedModel(name, submodels, shared)


def replicate(
    name: str,
    builder: Callable[[int], ModelBase],
    count: int,
    shared_names: Sequence[str] = (),
) -> ComposedModel:
    """Stamp out ``count`` copies of a sub-model (Mobius Replicate).

    Args:
        name: composed model name.
        builder: called with the replica index (0-based); must return a
            fresh model with a unique name each time (e.g.
            ``f"worker{index}"``).
        count: number of replicas (>= 1).
        shared_names: place paths shared across *all* replicas (the
            Replicate operator's "shared state variables").
    """
    if count < 1:
        raise ModelError(f"replicate {name!r}: count must be >= 1, got {count}")
    replicas: Dict[str, ModelBase] = {}
    for index in range(count):
        model = builder(index)
        if model.name in replicas:
            raise ModelError(
                f"replicate {name!r}: builder produced duplicate name {model.name!r}"
            )
        replicas[model.name] = model
    shared = [
        SharedVariable(path, [(sub_name, path) for sub_name in replicas])
        for path in shared_names
    ]
    return ComposedModel(name, replicas, shared)
