"""SAN input and output gates.

Gates are where SANs go beyond plain Petri nets:

* an **input gate** attaches to an activity a *predicate* (the activity is
  enabled only while every attached input gate's predicate holds) and an
  *input function* executed when the activity completes — typically
  removing tokens;
* an **output gate** attaches a *function* executed after the input
  functions — typically depositing tokens or updating extended places.

In this implementation, gate predicates and functions are zero-argument
Python callables closing over the :class:`~repro.san.places.Place`
objects they touch.  That mirrors how Mobius gate code bodies reference
shared state variables directly.

**Read sets.**  The incremental enablement engine only re-evaluates a
predicate when a place it reads has changed.  A gate's read set is
either *declared* up front (``reads=[place, ...]``) or *observed* on
each evaluation via the tracking hooks in :mod:`repro.san.places`.
Observation is sound for predicates that are deterministic, pure
functions of place state accessed through place accessors — which every
gate in this repository is.  A predicate that depends on anything else
(module globals, object attributes, wall-clock) must be constructed
with ``volatile=True`` so the engine falls back to re-evaluating it
after every completion, exactly like the full-rescan engine.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..errors import ModelError, SimulationError

Predicate = Callable[[], bool]
GateFunction = Callable[[], None]

# Process-global predicate-evaluation counter.  Benchmarks snapshot it
# before/after a run to attribute evaluations to one simulator; it is
# not thread-safe (simulations are single-threaded per process).
_EVALUATIONS = 0


def evaluation_count() -> int:
    """Total input-gate predicate evaluations in this process."""
    return _EVALUATIONS


def _noop() -> None:
    return None


class InputGate:
    """Predicate + input function guarding an activity.

    Args:
        name: gate name (diagnostics only; must be non-empty).
        predicate: zero-argument callable; the attached activity is enabled
            only while this returns a truthy value.
        function: executed when the activity completes, before any output
            gate.  Defaults to a no-op.
        reads: optional declared read set — the places whose markings the
            predicate depends on.  The incremental engine trusts this
            declaration instead of (in addition to) run-time observation;
            an incomplete declaration on a gate whose reads cannot be
            observed breaks incremental re-evaluation, so declare every
            place the predicate can touch.
        volatile: the predicate depends on state outside the declared or
            observable places; the incremental engine re-evaluates it
            after every completion (the conservative full-rescan
            behaviour, per gate).
    """

    def __init__(
        self,
        name: str,
        predicate: Predicate,
        function: Optional[GateFunction] = None,
        reads: Optional[Sequence] = None,
        volatile: bool = False,
    ) -> None:
        if not name:
            raise ModelError("an input gate needs a non-empty name")
        if not callable(predicate):
            raise ModelError(f"input gate {name!r}: predicate must be callable")
        self.name = name
        self._predicate = predicate
        self._function = function if function is not None else _noop
        self.declared_reads: List = list(reads) if reads else []
        for place in self.declared_reads:
            if not hasattr(place, "_cell"):
                raise ModelError(
                    f"input gate {name!r}: reads must list Place/ExtendedPlace "
                    f"objects, got {type(place).__name__}"
                )
        self.volatile = bool(volatile)

    def declared_read_cells(self) -> List:
        """Storage cells of the declared read set, resolved lazily.

        Resolution must be lazy because Join redirects place cells
        *after* gates are constructed.
        """
        return [place._cell for place in self.declared_reads]

    def holds(self) -> bool:
        """Evaluate the predicate, wrapping model bugs in SimulationError."""
        global _EVALUATIONS
        _EVALUATIONS += 1
        try:
            return bool(self._predicate())
        except Exception as exc:  # surface the gate name in the traceback
            raise SimulationError(f"input gate {self.name!r} predicate raised: {exc}") from exc

    def fire(self) -> None:
        """Run the input function."""
        try:
            self._function()
        except SimulationError:
            raise
        except Exception as exc:
            raise SimulationError(f"input gate {self.name!r} function raised: {exc}") from exc

    def __repr__(self) -> str:
        return f"InputGate({self.name!r})"


class OutputGate:
    """State-update function run after an activity completes.

    Output gates attached to one activity case run in their attachment
    order — the framework relies on this for the deterministic per-tick
    sequencing documented in DESIGN.md §5.
    """

    def __init__(self, name: str, function: GateFunction) -> None:
        if not name:
            raise ModelError("an output gate needs a non-empty name")
        if not callable(function):
            raise ModelError(f"output gate {name!r}: function must be callable")
        self.name = name
        self._function = function

    def fire(self) -> None:
        """Run the output function."""
        try:
            self._function()
        except SimulationError:
            raise
        except Exception as exc:
            raise SimulationError(f"output gate {self.name!r} function raised: {exc}") from exc

    def __repr__(self) -> str:
        return f"OutputGate({self.name!r})"
