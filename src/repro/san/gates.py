"""SAN input and output gates.

Gates are where SANs go beyond plain Petri nets:

* an **input gate** attaches to an activity a *predicate* (the activity is
  enabled only while every attached input gate's predicate holds) and an
  *input function* executed when the activity completes — typically
  removing tokens;
* an **output gate** attaches a *function* executed after the input
  functions — typically depositing tokens or updating extended places.

In this implementation, gate predicates and functions are zero-argument
Python callables closing over the :class:`~repro.san.places.Place`
objects they touch.  That mirrors how Mobius gate code bodies reference
shared state variables directly, and it keeps the simulator oblivious to
*what* a gate reads or writes — it simply re-evaluates enabling after
every completion.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import ModelError, SimulationError

Predicate = Callable[[], bool]
GateFunction = Callable[[], None]


def _noop() -> None:
    return None


class InputGate:
    """Predicate + input function guarding an activity.

    Args:
        name: gate name (diagnostics only; must be non-empty).
        predicate: zero-argument callable; the attached activity is enabled
            only while this returns a truthy value.
        function: executed when the activity completes, before any output
            gate.  Defaults to a no-op.
    """

    def __init__(
        self,
        name: str,
        predicate: Predicate,
        function: Optional[GateFunction] = None,
    ) -> None:
        if not name:
            raise ModelError("an input gate needs a non-empty name")
        if not callable(predicate):
            raise ModelError(f"input gate {name!r}: predicate must be callable")
        self.name = name
        self._predicate = predicate
        self._function = function if function is not None else _noop

    def holds(self) -> bool:
        """Evaluate the predicate, wrapping model bugs in SimulationError."""
        try:
            return bool(self._predicate())
        except Exception as exc:  # surface the gate name in the traceback
            raise SimulationError(f"input gate {self.name!r} predicate raised: {exc}") from exc

    def fire(self) -> None:
        """Run the input function."""
        try:
            self._function()
        except SimulationError:
            raise
        except Exception as exc:
            raise SimulationError(f"input gate {self.name!r} function raised: {exc}") from exc

    def __repr__(self) -> str:
        return f"InputGate({self.name!r})"


class OutputGate:
    """State-update function run after an activity completes.

    Output gates attached to one activity case run in their attachment
    order — the framework relies on this for the deterministic per-tick
    sequencing documented in DESIGN.md §5.
    """

    def __init__(self, name: str, function: GateFunction) -> None:
        if not name:
            raise ModelError("an output gate needs a non-empty name")
        if not callable(function):
            raise ModelError(f"output gate {name!r}: function must be callable")
        self.name = name
        self._function = function

    def fire(self) -> None:
        """Run the output function."""
        try:
            self._function()
        except SimulationError:
            raise
        except Exception as exc:
            raise SimulationError(f"output gate {self.name!r} function raised: {exc}") from exc

    def __repr__(self) -> str:
        return f"OutputGate({self.name!r})"
