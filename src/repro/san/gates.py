"""SAN input and output gates.

Gates are where SANs go beyond plain Petri nets:

* an **input gate** attaches to an activity a *predicate* (the activity is
  enabled only while every attached input gate's predicate holds) and an
  *input function* executed when the activity completes — typically
  removing tokens;
* an **output gate** attaches a *function* executed after the input
  functions — typically depositing tokens or updating extended places.

Gate predicates and functions come in two forms:

* **closures** — zero-argument Python callables closing over the
  :class:`~repro.san.places.Place` objects they touch, mirroring how
  Mobius gate code bodies reference shared state variables directly;
* **expressions** — declarative IR from :mod:`repro.san.exprs`, passed
  as ``expr=`` (predicate) / ``effect=`` (function).  The framework
  compiles an expression to a specialized scalar evaluator here, and
  the engines additionally derive read/write sets from it, pin
  constant predicates, and (in the batch engine) compile vectorized
  lane kernels.  Closures remain a fully supported fallback and the
  two forms mix freely, even on one activity.

**Read sets.**  The incremental enablement engine only re-evaluates a
predicate when a place it reads has changed.  A gate's read set is
either *derived* from its expression, *declared* up front
(``reads=[place, ...]``), or *observed* on each evaluation via the
tracking hooks in :mod:`repro.san.places`.  Observation is sound for
predicates that are deterministic, pure functions of place state
accessed through place accessors — which every gate in this repository
is.  A predicate that depends on anything else (module globals, object
attributes, wall-clock) must be constructed with ``volatile=True`` so
the engine falls back to re-evaluating it after every completion,
exactly like the full-rescan engine.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import ModelError, SimulationError
from . import exprs as _exprs

Predicate = Callable[[], bool]
GateFunction = Callable[[], None]

# Process-global predicate-evaluation counter.  Simulators capture
# before/after deltas around their run entry points to maintain the
# per-simulator counters surfaced through ``stats()``; it is not
# thread-safe (simulations are single-threaded per process).
_EVALUATIONS = 0


def evaluation_count() -> int:
    """Total input-gate predicate evaluations in this process.

    .. deprecated::
        This is the process-global aggregate kept for older benchmarks.
        Prefer the per-simulator ``gate_evaluations`` property /
        ``stats()["gate_evaluations"]``, which attribute evaluations to
        the simulator that performed them even when several simulators
        interleave (batch lanes, sweep pools).
    """
    return _EVALUATIONS


def count_evaluations(n: int = 1) -> None:
    """Account ``n`` predicate evaluations performed outside ``holds()``.

    The compiled engine's fused IR conjunctions and the batch engine's
    vector kernels evaluate gates without calling ``holds()``; they
    report those evaluations here so the global aggregate and the
    per-simulator delta counters stay comparable across engines.
    """
    global _EVALUATIONS
    _EVALUATIONS += n


def _noop() -> None:
    return None


class InputGate:
    """Predicate + input function guarding an activity.

    Args:
        name: gate name (diagnostics only; must be non-empty).
        predicate: zero-argument callable; the attached activity is enabled
            only while this returns a truthy value.  Mutually exclusive
            with ``expr``.
        function: executed when the activity completes, before any output
            gate.  Defaults to a no-op.  Mutually exclusive with
            ``effect``.
        reads: optional declared read set — the places whose markings the
            predicate depends on.  The incremental engine trusts this
            declaration instead of (in addition to) run-time observation;
            an incomplete declaration on a gate whose reads cannot be
            observed breaks incremental re-evaluation, so declare every
            place the predicate can touch.  Unnecessary with ``expr``
            (the read set is derived).
        volatile: the predicate depends on state outside the declared or
            observable places; the incremental engine re-evaluates it
            after every completion (the conservative full-rescan
            behaviour, per gate).
        expr: declarative predicate expression (:mod:`repro.san.exprs`);
            compiled to a specialized evaluator, with the read set
            derived structurally.
        effect: declarative effect tuple replacing ``function``.
    """

    def __init__(
        self,
        name: str,
        predicate: Optional[Predicate] = None,
        function: Optional[GateFunction] = None,
        reads: Optional[Sequence] = None,
        volatile: bool = False,
        *,
        expr: Optional[_exprs.Expr] = None,
        effect: Optional[Sequence[_exprs.Effect]] = None,
    ) -> None:
        if not name:
            raise ModelError("an input gate needs a non-empty name")
        if expr is not None:
            if predicate is not None:
                raise ModelError(
                    f"input gate {name!r}: pass either predicate or expr, not both"
                )
            if not isinstance(expr, _exprs.Expr):
                raise ModelError(
                    f"input gate {name!r}: expr must be an Expr node, got "
                    f"{type(expr).__name__}"
                )
            if volatile:
                raise ModelError(
                    f"input gate {name!r}: an expression gate cannot be volatile "
                    "(its reads are fully derived)"
                )
            predicate = _exprs.compile_scalar_predicate(expr)
            if reads is None:
                reads = _exprs.expr_places(expr)
        elif not callable(predicate):
            raise ModelError(f"input gate {name!r}: predicate must be callable")
        if effect is not None:
            if function is not None:
                raise ModelError(
                    f"input gate {name!r}: pass either function or effect, not both"
                )
            effect = _exprs.effects(*effect)
            function = _exprs.compile_scalar_effects(effect)
        self.name = name
        self.expr = expr
        self.effect: Optional[Tuple[_exprs.Effect, ...]] = effect
        #: Fixed verdict of a constant predicate (``TRUE``/``FALSE``
        #: expressions); engines pin it instead of re-evaluating, which
        #: also keeps empty-read-set constants off the volatile path.
        self.constant_verdict: Optional[bool] = (
            _exprs.constant_verdict(expr) if expr is not None else None
        )
        self._predicate = predicate
        self._function = function if function is not None else _noop
        self.declared_reads: List = list(reads) if reads else []
        for place in self.declared_reads:
            if not hasattr(place, "_cell"):
                raise ModelError(
                    f"input gate {name!r}: reads must list Place/ExtendedPlace "
                    f"objects, got {type(place).__name__}"
                )
        self.volatile = bool(volatile)

    def declared_read_cells(self) -> List:
        """Storage cells of the declared read set, resolved lazily.

        Resolution must be lazy because Join redirects place cells
        *after* gates are constructed.
        """
        return [place._cell for place in self.declared_reads]

    def holds(self) -> bool:
        """Evaluate the predicate, wrapping model bugs in SimulationError."""
        global _EVALUATIONS
        _EVALUATIONS += 1
        try:
            return bool(self._predicate())
        except Exception as exc:  # surface the gate name in the traceback
            raise SimulationError(f"input gate {self.name!r} predicate raised: {exc}") from exc

    def fire(self) -> None:
        """Run the input function."""
        try:
            self._function()
        except SimulationError:
            raise
        except Exception as exc:
            raise SimulationError(f"input gate {self.name!r} function raised: {exc}") from exc

    def __repr__(self) -> str:
        return f"InputGate({self.name!r})"


class OutputGate:
    """State-update function run after an activity completes.

    Output gates attached to one activity case run in their attachment
    order — the framework relies on this for the deterministic per-tick
    sequencing documented in DESIGN.md §5.  Accepts either a closure
    ``function`` or a declarative ``effect=`` tuple (compiled to an
    equivalent function; the IR additionally gives the batch engine a
    lane-vectorized form).
    """

    def __init__(
        self,
        name: str,
        function: Optional[GateFunction] = None,
        *,
        effect: Optional[Sequence[_exprs.Effect]] = None,
    ) -> None:
        if not name:
            raise ModelError("an output gate needs a non-empty name")
        if effect is not None:
            if function is not None:
                raise ModelError(
                    f"output gate {name!r}: pass either function or effect, not both"
                )
            effect = _exprs.effects(*effect)
            function = _exprs.compile_scalar_effects(effect)
        elif not callable(function):
            raise ModelError(f"output gate {name!r}: function must be callable")
        self.name = name
        self.effect: Optional[Tuple[_exprs.Effect, ...]] = (
            tuple(effect) if effect is not None else None
        )
        self._function = function

    def fire(self) -> None:
        """Run the output function."""
        try:
            self._function()
        except SimulationError:
            raise
        except Exception as exc:
            raise SimulationError(f"output gate {self.name!r} function raised: {exc}") from exc

    def __repr__(self) -> str:
        return f"OutputGate({self.name!r})"
