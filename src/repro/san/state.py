"""State observation helpers: marking traces and the enablement cache.

A :class:`MarkingTrace` samples the marking of selected places at fixed
intervals by piggy-backing on a probe: the caller invokes
:meth:`MarkingTrace.record` whenever it wants a sample (the
virtualization framework wires this to the hypervisor clock tick).
Traces stay lightweight — they snapshot only the places they were asked
to watch.

An :class:`EnablementCache` is the simulator-side half of incremental
enablement: it remembers, per input gate, the last predicate verdict
together with the set of storage cells that evaluation read, and an
inverted watcher index from cells to dependent gates.  The simulator
feeds it the cells written by each completion; ``flush()`` then marks
only the gates whose watched cells changed as stale, and ``enabled()``
re-evaluates stale gates lazily as they are queried.  Gates whose read
set cannot be established (``volatile``, or an evaluation that
observably read no place at all) fall back to re-evaluation at every
query after a flush — the conservative full-rescan behaviour, scoped
to just those gates.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Set

from . import gates as _gates
from . import places as _places
from .activities import Activity
from .gates import InputGate
from .model import ModelBase


class _GateRecord:
    """Cached verdict of one input gate (shared gates share a record)."""

    __slots__ = (
        "gate", "holds", "stale", "cells", "declared", "volatile",
        "constant", "dependents",
    )

    def __init__(self, gate: InputGate) -> None:
        self.gate = gate
        self.holds = False
        self.stale = True  # must re-evaluate before the verdict can be trusted
        self.cells: Set[Any] = set()  # cells the last evaluation read
        self.declared = frozenset(gate.declared_read_cells())
        self.volatile = gate.volatile
        # Fixed verdict of a constant expression gate (TRUE/FALSE); a
        # pinned record never demotes to volatile — previously a
        # `lambda: True` gate observably read nothing and fell onto the
        # conservative re-evaluate-every-flush path forever.
        self.constant = getattr(gate, "constant_verdict", None)
        self.dependents: List[_ActivityState] = []  # states sharing this gate


class _ActivityState:
    """Cached enablement of one activity, over its gate records."""

    __slots__ = ("activity", "enabled", "stale", "records")

    def __init__(self, activity: Activity, records: List[_GateRecord]) -> None:
        self.activity = activity
        self.enabled = False
        # An activity with no input gates is never enabled (the
        # Activity.enabled contract) — its state is permanently fresh.
        self.stale = bool(records)
        self.records = records


class EnablementCache:
    """Place-level invalidation of cached gate verdicts and enablement.

    The owning simulator routes every completion's writes into
    :attr:`dirty` (via :func:`repro.san.places.set_dirty_sink`) and
    calls :meth:`flush` before reading :meth:`enabled`.  Out-of-band
    writes (anything mutating places while the simulator is not
    executing) are the simulator's responsibility to detect — it
    compares :func:`repro.san.places.write_epoch` across its public
    calls and calls :meth:`invalidate`, which forces the next flush to
    mark everything stale.

    Two-level laziness keeps both evaluation count and query cost low:

    * **gate level** — each distinct gate has one cached verdict plus
      the set of cells its last evaluation read; a flush marks only the
      gates watching a dirty cell as stale, and a stale gate re-runs
      its predicate only when some query actually reaches it.  The
      activity scan stops at the first non-holding gate exactly like
      ``Activity.enabled``, so the engine's gate-evaluation count is
      bounded above by the rescan engine's for the same query sequence
      (and is lower still when gates are shared between activities).
    * **activity level** — each activity caches the conjunction; a
      flush marks an activity stale only when one of its gate records
      went stale, so the common query (nothing changed) is a single
      flag test instead of a walk over gate records.

    Soundness argument: a gate predicate that is a deterministic, pure
    function of place markings reads a fixed sequence of cells along
    the control path its evaluation takes.  If none of the cells read
    by the *last* evaluation changed, the predicate re-executes the
    same path and returns the same value — so the cached verdict
    stands.  Predicates that break the purity assumption must be
    flagged ``volatile``, which pins them to the re-evaluate-on-every-
    flush path.  Declared read sets are resolved to storage cells when
    the cache is built, which must happen after Join/Replicate
    composition (cell sharing rewires place cells) — the simulator
    constructor satisfies this by construction.
    """

    def __init__(self, activities: Sequence[Activity]) -> None:
        records: Dict[int, _GateRecord] = {}
        self._states: Dict[Activity, _ActivityState] = {}
        for activity in activities:
            gate_records = []
            for gate in activity.input_gates:
                record = records.get(id(gate))
                if record is None:
                    record = _GateRecord(gate)
                    records[id(gate)] = record
                gate_records.append(record)
            state = _ActivityState(activity, gate_records)
            for record in gate_records:
                record.dependents.append(state)
            self._states[activity] = state
        self._records = list(records.values())
        self._watchers: Dict[Any, Set[_GateRecord]] = {}
        self._volatile: List[_GateRecord] = [
            record for record in self._records if record.volatile
        ]
        self._rebuild_volatile_marks()
        self._valid = False
        self._discard: Set[Any] = set()
        self._scratch: Set[Any] = set()
        self.dirty: Set[Any] = set()
        self.refreshes = 0
        self.full_rescans = 0

    def invalidate(self) -> None:
        """Drop every cached verdict; the next flush marks all stale."""
        self._valid = False

    def _rebuild_volatile_marks(self) -> None:
        """Flatten the volatile re-stale walk into one list of flag holders.

        ``flush()`` runs once per settle iteration, so the nested
        record -> dependents walk it used to do per call is hot-loop
        work; the records and their dependent activity states all just
        need ``stale = True``, so they are collected (deduplicated)
        once here and re-collected only when a gate is demoted to
        volatile — which can happen at most once per gate.
        """
        marks: List[Any] = []
        seen: Set[int] = set()
        for record in self._volatile:
            if id(record) not in seen:
                seen.add(id(record))
                marks.append(record)
            for state in record.dependents:
                if id(state) not in seen:
                    seen.add(id(state))
                    marks.append(state)
        self._volatile_marks = marks

    def states_for(self, activities: Sequence[Activity]) -> List[Any]:
        """Per-activity state views for hot loops.

        The simulator prefetches these so its per-event scans can test
        ``state.stale``/``state.enabled`` directly instead of paying a
        dict lookup and function call per activity per event.  The
        state objects are live views — valid under the same
        flush-before-read contract as :meth:`enabled`; ``state.activity``
        links back to the owning activity.
        """
        return [self._states[activity] for activity in activities]

    def enabled(self, activity: Activity) -> bool:
        """Enabling state, recomputed lazily when marked stale by a flush.

        Only valid after a :meth:`flush` — staleness is derived from the
        dirty-cell set there, so querying with unflushed writes pending
        returns stale answers.
        """
        state = self._states[activity]
        if not state.stale:
            return state.enabled
        return self.compute(state)

    def compute(self, state: _ActivityState) -> bool:
        """Recompute a (stale) state's enablement from its gate records."""
        enabled = True
        for record in state.records:
            if record.stale:
                self._refresh(record)
            if not record.holds:
                # Records after the first non-holding gate stay stale
                # (mirroring the rescan engine's short-circuit); a later
                # flush re-marks this activity if any of them matters.
                enabled = False
                break
        state.enabled = enabled
        state.stale = False
        return enabled

    def flush(self) -> None:
        """Mark the gates (and activities) whose watched cells changed.

        Evaluation itself is deferred to :meth:`enabled` — callers that
        short-circuit (the instantaneous settle scan stops at the first
        enabled activity; the gate scan stops at the first non-holding
        gate) never pay for gates they don't look at.
        """
        if not self._valid:
            self.dirty.clear()
            for record in self._records:
                record.stale = True
                for state in record.dependents:
                    state.stale = True
            self._valid = True
            self.full_rescans += 1
            return
        dirty = self.dirty
        if dirty:
            watchers = self._watchers
            for cell in dirty:
                dependents = watchers.get(cell)
                if dependents:
                    for record in dependents:
                        record.stale = True
                        for state in record.dependents:
                            state.stale = True
            dirty.clear()
        # Volatile gates get the conservative treatment: their verdicts
        # may depend on state we cannot watch, so mirror the rescan
        # engine and re-evaluate them whenever queried after any
        # synchronisation point.  The flattened mark list covers the
        # records and their dependent activity states in one pass.
        for holder in self._volatile_marks:
            holder.stale = True

    def _refresh(self, record: _GateRecord) -> None:
        # Hot path: the read sink is swapped by direct module-attribute
        # assignment (equivalent to places.set_read_sink, minus two
        # function calls per refresh).
        self.refreshes += 1
        record.stale = False
        if record.constant is not None:
            # Pinned verdict: no evaluation, no read sink, no demotion.
            record.holds = record.constant
            _gates.count_evaluations(1)
            return
        if record.volatile:
            previous = _places._read_sink
            _places._read_sink = self._discard
            try:
                record.holds = record.gate.holds()
            finally:
                _places._read_sink = previous
            return
        reads = self._scratch
        reads.clear()
        previous = _places._read_sink
        _places._read_sink = reads
        try:
            holds = record.gate.holds()
        finally:
            _places._read_sink = previous
        record.holds = holds
        if record.declared:
            reads |= record.declared
        if not reads:
            # The evaluation read no place and nothing was declared: the
            # read set cannot be established.  Never guess — demote the
            # gate to the always-re-evaluate path.
            record.volatile = True
            self._volatile.append(record)
            self._rebuild_volatile_marks()
            return
        if reads != record.cells:
            watchers = self._watchers
            for cell in reads - record.cells:
                watchers.setdefault(cell, set()).add(record)
            # Stale watcher edges (cells read by an earlier control
            # path) are left in place: they can only cause a spurious
            # re-evaluation, never a missed one.
            record.cells = set(reads)

    def stats(self) -> Dict[str, int]:
        """Counters for benchmarking: refreshes and full rescans."""
        return {
            "enablement_refreshes": self.refreshes,
            "full_rescans": self.full_rescans,
            "watched_cells": len(self._watchers),
            "volatile_gates": len(self._volatile),
        }


class MarkingTrace:
    """Time series of selected place markings.

    Example:
        >>> trace = MarkingTrace(model, ["Workload", "Blocked"])
        >>> trace.record(0.0)
        >>> trace.rows()  # doctest: +SKIP
        [{'time': 0.0, 'Workload': 0, 'Blocked': 0}]
    """

    def __init__(self, model: ModelBase, watch: Sequence[str]) -> None:
        table = model.places()
        self._watched = {name: table[name] for name in watch}  # KeyError = typo, fail fast
        self._rows: List[Dict[str, Any]] = []

    def record(self, time: float) -> None:
        """Snapshot the watched places at the given time."""
        row: Dict[str, Any] = {"time": time}
        for name, place in self._watched.items():
            row[name] = place.snapshot()
        self._rows.append(row)

    def rows(self) -> List[Dict[str, Any]]:
        """All recorded samples, oldest first."""
        return list(self._rows)

    def series(self, name: str) -> List[Any]:
        """The time series of one watched place."""
        if name not in self._watched:
            raise KeyError(f"place {name!r} is not watched by this trace")
        return [row[name] for row in self._rows]

    def times(self) -> List[float]:
        """Sample times, oldest first."""
        return [row["time"] for row in self._rows]

    def clear(self) -> None:
        self._rows.clear()

    def __len__(self) -> int:
        return len(self._rows)
