"""State observation helpers: marking traces for debugging and tests.

A :class:`MarkingTrace` samples the marking of selected places at fixed
intervals by piggy-backing on a probe: the caller invokes
:meth:`MarkingTrace.record` whenever it wants a sample (the
virtualization framework wires this to the hypervisor clock tick).
Traces stay lightweight — they snapshot only the places they were asked
to watch.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from .model import ModelBase


class MarkingTrace:
    """Time series of selected place markings.

    Example:
        >>> trace = MarkingTrace(model, ["Workload", "Blocked"])
        >>> trace.record(0.0)
        >>> trace.rows()  # doctest: +SKIP
        [{'time': 0.0, 'Workload': 0, 'Blocked': 0}]
    """

    def __init__(self, model: ModelBase, watch: Sequence[str]) -> None:
        table = model.places()
        self._watched = {name: table[name] for name in watch}  # KeyError = typo, fail fast
        self._rows: List[Dict[str, Any]] = []

    def record(self, time: float) -> None:
        """Snapshot the watched places at the given time."""
        row: Dict[str, Any] = {"time": time}
        for name, place in self._watched.items():
            row[name] = place.snapshot()
        self._rows.append(row)

    def rows(self) -> List[Dict[str, Any]]:
        """All recorded samples, oldest first."""
        return list(self._rows)

    def series(self, name: str) -> List[Any]:
        """The time series of one watched place."""
        if name not in self._watched:
            raise KeyError(f"place {name!r} is not watched by this trace")
        return [row[name] for row in self._rows]

    def times(self) -> List[float]:
        """Sample times, oldest first."""
        return [row["time"] for row in self._rows]

    def clear(self) -> None:
        self._rows.clear()

    def __len__(self) -> int:
        return len(self._rows)
