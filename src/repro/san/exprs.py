"""Declarative gate/reward expression IR.

Gate predicates and reward rates in this framework have historically
been opaque zero-argument Python closures.  Closures are maximally
expressive but *opaque*: the engines cannot see which places they read
(hence run-time read-set observation), cannot specialize them (every
evaluation pays attribute lookups and the read-sink protocol), and
cannot vectorize them over the replication axis (which is why the PR 7
batch engine only reached parity with the serial compiled engine).

This module adds a small typed expression IR that model code builds
fluently::

    ig("Sched_armed", expr=tokens(sched_tick) > 0)
    og("Consume", effect=effects(remove(sched_tick), add(timestamp)))

and the framework compiles three ways:

* **scalar** (:func:`compile_scalar_predicate` and friends) — generated
  Python source specialized to the places the expression touches.
  Token reads go straight through ``place._cell.tokens`` — no property
  dispatch, no read-sink bookkeeping — which is sound precisely because
  the read set is *derived* from the IR (:func:`expr_places`), so the
  engines no longer need run-time observation for IR gates.  Cell
  resolution stays lazy (the generated code holds the *place* and
  dereferences ``_cell`` per call) so Join/``share()`` redirection
  after gate construction keeps working.
* **vector** (:func:`compile_vector_predicate` / effects) — generated
  numpy source over a shared ``(R, n_places)`` int64 token matrix, so
  one ufunc pass evaluates a gate for all R batch lanes at once.  Only
  token-place expressions vectorize (:func:`vectorizable`); extended
  places hold arbitrary Python values and stay on the scalar path.
* **closure fallback** — everything that has no IR form (the RCS skew
  logic, health/maintenance dict juggling) remains an ordinary closure;
  :class:`~repro.san.gates.InputGate` accepts either and engines mix
  the two freely.

Bit-identity contract: generated scalar code performs the *same Python
arithmetic* the equivalent hand-written closure would (``True * 1`` is
``1``, ``x / n`` is float true division, ``in`` on a frozenset matches
``in`` on a tuple for hashable members), and the vector kernels perform
the same IEEE operations elementwise over int64 columns — so results
are exactly ``==`` across all compilation strategies, not merely close.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy

from ..errors import ModelError, SimulationError

__all__ = [
    "Expr",
    "TokensOf",
    "ExtField",
    "Const",
    "Compare",
    "InSet",
    "And",
    "Or",
    "Not",
    "ToInt",
    "ToFloat",
    "Arith",
    "BoolConst",
    "TRUE",
    "FALSE",
    "Effect",
    "AddTokens",
    "RemoveTokens",
    "SetTokens",
    "tokens",
    "field",
    "const",
    "isin",
    "count",
    "indicator",
    "land",
    "lor",
    "lnot",
    "add",
    "remove",
    "set_tokens",
    "effects",
    "conjunction",
    "expr_places",
    "effect_read_places",
    "effect_write_places",
    "vectorizable",
    "vectorizable_effects",
    "signature",
    "effects_signature",
    "compile_scalar_predicate",
    "compile_scalar_rate",
    "compile_scalar_effects",
    "compile_vector_predicate",
    "compile_vector_rate",
    "compile_vector_effects",
]

_COMPARE_OPS = ("<", "<=", ">", ">=", "==", "!=")
_ARITH_OPS = ("+", "-", "*", "/")

#: Constant leaf types that may be embedded verbatim in generated source.
_LITERAL_TYPES = (bool, int, float, str, type(None))


def _is_place(obj: Any) -> bool:
    return hasattr(obj, "_cell") and hasattr(obj, "name")


def _as_expr(value: Any) -> "Expr":
    if isinstance(value, Expr):
        return value
    if isinstance(value, _LITERAL_TYPES):
        return Const(value)
    raise ModelError(
        f"cannot use {type(value).__name__} in a gate expression; wrap "
        "places with tokens()/field() and other values with const()"
    )


class Expr:
    """Base expression node.

    Comparison and arithmetic operators build bigger expressions, so
    model code reads like the closure it replaces:
    ``tokens(p) > 0``, ``(tokens(a) + tokens(b)) / 2``.  Boolean
    connectives use ``&``, ``|`` and ``~`` (Python's ``and``/``or``
    cannot be overloaded).  Because ``==`` builds a node, Expr objects
    are identity-hashed and must not be used as dict/set keys expecting
    value semantics.
    """

    __slots__ = ()
    __hash__ = object.__hash__

    # -- comparisons -> bool exprs ---------------------------------------
    def __lt__(self, other: Any) -> "Compare":
        return Compare("<", self, _as_expr(other))

    def __le__(self, other: Any) -> "Compare":
        return Compare("<=", self, _as_expr(other))

    def __gt__(self, other: Any) -> "Compare":
        return Compare(">", self, _as_expr(other))

    def __ge__(self, other: Any) -> "Compare":
        return Compare(">=", self, _as_expr(other))

    def __eq__(self, other: Any) -> "Compare":  # type: ignore[override]
        return Compare("==", self, _as_expr(other))

    def __ne__(self, other: Any) -> "Compare":  # type: ignore[override]
        return Compare("!=", self, _as_expr(other))

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other: Any) -> "Arith":
        return Arith("+", self, _as_expr(other))

    def __radd__(self, other: Any) -> "Arith":
        return Arith("+", _as_expr(other), self)

    def __sub__(self, other: Any) -> "Arith":
        return Arith("-", self, _as_expr(other))

    def __mul__(self, other: Any) -> "Arith":
        return Arith("*", self, _as_expr(other))

    def __truediv__(self, other: Any) -> "Arith":
        return Arith("/", self, _as_expr(other))

    # -- boolean connectives ---------------------------------------------
    def __and__(self, other: Any) -> "And":
        return And((self, _as_expr(other)))

    def __or__(self, other: Any) -> "Or":
        return Or((self, _as_expr(other)))

    def __invert__(self) -> "Not":
        return Not(self)


class TokensOf(Expr):
    """The integer marking of a token place."""

    __slots__ = ("place",)

    def __init__(self, place: Any) -> None:
        if not _is_place(place):
            raise ModelError(
                f"tokens() needs a Place, got {type(place).__name__}"
            )
        self.place = place


class ExtField(Expr):
    """A field read from an extended place's structured value.

    ``path`` is a tuple of subscripts applied in order, e.g.
    ``field(pcpus, 0, "state")`` reads ``pcpus.value[0]["state"]``.
    An empty path reads the whole value.
    """

    __slots__ = ("place", "path")

    def __init__(self, place: Any, path: Tuple[Any, ...]) -> None:
        if not _is_place(place):
            raise ModelError(
                f"field() needs an ExtendedPlace, got {type(place).__name__}"
            )
        for key in path:
            if not isinstance(key, (int, str)):
                raise ModelError(
                    f"field() path components must be int or str, got "
                    f"{type(key).__name__}"
                )
        self.place = place
        self.path = tuple(path)


class Const(Expr):
    """A literal constant (int, float, str, bool, or None)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        if not isinstance(value, _LITERAL_TYPES):
            raise ModelError(
                f"const() supports int/float/str/bool/None literals, got "
                f"{type(value).__name__}"
            )
        self.value = value


class BoolConst(Expr):
    """The constant predicates ``TRUE`` and ``FALSE``.

    A gate whose whole expression is a :class:`BoolConst` exposes a
    ``constant_verdict`` the engines pin instead of re-evaluating —
    the fix for ``lambda: True`` gates being demoted to the volatile
    re-evaluate-every-flush path (their observed read set is empty).
    """

    __slots__ = ("value",)

    def __init__(self, value: bool) -> None:
        self.value = bool(value)


TRUE = BoolConst(True)
FALSE = BoolConst(False)


class Compare(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _COMPARE_OPS:
            raise ModelError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right


class InSet(Expr):
    """Membership of an expression's value in a fixed literal set."""

    __slots__ = ("operand", "values")

    def __init__(self, operand: Expr, values: Sequence[Any]) -> None:
        members = frozenset(values)
        if not members:
            raise ModelError("isin() needs a non-empty set of values")
        for member in members:
            if not isinstance(member, _LITERAL_TYPES):
                raise ModelError(
                    f"isin() members must be literals, got {type(member).__name__}"
                )
        self.operand = operand
        self.values = members


class And(Expr):
    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[Expr]) -> None:
        flat: List[Expr] = []
        for part in parts:
            if isinstance(part, And):
                flat.extend(part.parts)
            else:
                flat.append(_as_expr(part))
        if not flat:
            raise ModelError("and-expression needs at least one operand")
        self.parts = tuple(flat)


class Or(Expr):
    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[Expr]) -> None:
        flat: List[Expr] = []
        for part in parts:
            if isinstance(part, Or):
                flat.extend(part.parts)
            else:
                flat.append(_as_expr(part))
        if not flat:
            raise ModelError("or-expression needs at least one operand")
        self.parts = tuple(flat)


class Not(Expr):
    __slots__ = ("operand",)

    def __init__(self, operand: Expr) -> None:
        self.operand = _as_expr(operand)


class ToInt(Expr):
    """A boolean as 0/1 — for counting: ``count(tokens(p) > 0)``."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr) -> None:
        self.operand = _as_expr(operand)


class ToFloat(Expr):
    """A boolean as 0.0/1.0 — the classic indicator-rate reward."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr) -> None:
        self.operand = _as_expr(operand)


class Arith(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _ARITH_OPS:
            raise ModelError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right


# -- effects -------------------------------------------------------------


class Effect:
    """Base class of token effects (the IR of gate functions)."""

    __slots__ = ()


class AddTokens(Effect):
    __slots__ = ("place", "n")

    def __init__(self, place: Any, n: int = 1) -> None:
        if not _is_place(place):
            raise ModelError(f"add() needs a Place, got {type(place).__name__}")
        if not isinstance(n, int) or n < 0:
            raise ModelError(f"add() count must be an int >= 0, got {n!r}")
        self.place = place
        self.n = n


class RemoveTokens(Effect):
    __slots__ = ("place", "n")

    def __init__(self, place: Any, n: int = 1) -> None:
        if not _is_place(place):
            raise ModelError(f"remove() needs a Place, got {type(place).__name__}")
        if not isinstance(n, int) or n < 0:
            raise ModelError(f"remove() count must be an int >= 0, got {n!r}")
        self.place = place
        self.n = n


class SetTokens(Effect):
    """Set a place's marking to a constant or an expression's value."""

    __slots__ = ("place", "value")

    def __init__(self, place: Any, value: Union[int, Expr]) -> None:
        if not _is_place(place):
            raise ModelError(
                f"set_tokens() needs a Place, got {type(place).__name__}"
            )
        if isinstance(value, int) and not isinstance(value, bool):
            if value < 0:
                raise ModelError(
                    f"set_tokens() constant must be >= 0, got {value}"
                )
            value = Const(value)
        elif not isinstance(value, Expr):
            raise ModelError(
                "set_tokens() value must be an int or an expression, got "
                f"{type(value).__name__}"
            )
        self.place = place
        self.value = value


# -- fluent builders ------------------------------------------------------


def tokens(place: Any) -> TokensOf:
    """The marking of ``place`` as an integer expression."""
    return TokensOf(place)


def field(place: Any, *path: Any) -> ExtField:
    """A subscript chain into an extended place's value."""
    return ExtField(place, tuple(path))


def const(value: Any) -> Const:
    """An explicit literal (usually implied by operator overloads)."""
    return Const(value)


def isin(operand: Expr, values: Sequence[Any]) -> InSet:
    """Membership test: ``isin(field(slot, "status"), VCPUStatus.ACTIVE)``."""
    return InSet(_as_expr(operand), values)


def count(operand: Expr) -> ToInt:
    """A boolean as 0/1, for summing indicators."""
    return ToInt(operand)


def indicator(operand: Expr) -> ToFloat:
    """A boolean as 0.0/1.0, the indicator rate-reward shape."""
    return ToFloat(operand)


def land(*parts: Expr) -> Expr:
    """Conjunction of one or more boolean expressions."""
    return parts[0] if len(parts) == 1 else And(parts)


def lor(*parts: Expr) -> Expr:
    """Disjunction of one or more boolean expressions."""
    return parts[0] if len(parts) == 1 else Or(parts)


def lnot(operand: Expr) -> Not:
    """Negation."""
    return Not(operand)


def add(place: Any, n: int = 1) -> AddTokens:
    """Deposit ``n`` tokens on completion."""
    return AddTokens(place, n)


def remove(place: Any, n: int = 1) -> RemoveTokens:
    """Withdraw ``n`` tokens on completion (raises if negative)."""
    return RemoveTokens(place, n)


def set_tokens(place: Any, value: Union[int, Expr]) -> SetTokens:
    """Set a place's marking on completion."""
    return SetTokens(place, value)


def effects(*items: Effect) -> Tuple[Effect, ...]:
    """An ordered effect list (executed in the given order)."""
    for item in items:
        if not isinstance(item, Effect):
            raise ModelError(
                f"effects() entries must be Effect nodes, got "
                f"{type(item).__name__}"
            )
    return tuple(items)


def conjunction(exprs: Sequence[Expr]) -> Expr:
    """The fused AND of several gate expressions (engine helper)."""
    parts = [e for e in exprs]
    if not parts:
        raise ModelError("conjunction() needs at least one expression")
    return parts[0] if len(parts) == 1 else And(parts)


# -- structural queries ---------------------------------------------------


def _walk(expr: Expr):
    yield expr
    if isinstance(expr, (Compare, Arith)):
        yield from _walk(expr.left)
        yield from _walk(expr.right)
    elif isinstance(expr, (And, Or)):
        for part in expr.parts:
            yield from _walk(part)
    elif isinstance(expr, (Not, ToInt, ToFloat)):
        yield from _walk(expr.operand)
    elif isinstance(expr, InSet):
        yield from _walk(expr.operand)


def expr_places(expr: Expr) -> List[Any]:
    """Places an expression reads, in first-occurrence order."""
    seen: List[Any] = []
    for node in _walk(expr):
        if isinstance(node, (TokensOf, ExtField)) and node.place not in seen:
            seen.append(node.place)
    return seen


def effect_read_places(items: Sequence[Effect]) -> List[Any]:
    """Places an effect list reads (set_tokens value expressions)."""
    seen: List[Any] = []
    for item in items:
        if isinstance(item, SetTokens):
            for place in expr_places(item.value):
                if place not in seen:
                    seen.append(place)
    return seen


def effect_write_places(items: Sequence[Effect]) -> List[Any]:
    """Places an effect list writes, in first-occurrence order."""
    seen: List[Any] = []
    for item in items:
        if item.place not in seen:
            seen.append(item.place)
    return seen


def is_boolean(expr: Expr) -> bool:
    """True when the node is boolean-valued (usable as a predicate)."""
    return isinstance(expr, (Compare, InSet, And, Or, Not, BoolConst))


def constant_verdict(expr: Expr) -> Optional[bool]:
    """The fixed verdict of a constant predicate, else None."""
    if isinstance(expr, BoolConst):
        return expr.value
    return None


def vectorizable(expr: Expr) -> bool:
    """True when every read is a token place and every leaf numeric.

    Extended-place fields hold arbitrary Python objects, and string
    comparisons/membership have no int64-column form — those stay on
    the scalar path.
    """
    for node in _walk(expr):
        if isinstance(node, ExtField):
            return False
        if isinstance(node, (Const,)) and not isinstance(
            node.value, (bool, int, float)
        ):
            return False
        if isinstance(node, InSet):
            return False
    return True


def vectorizable_effects(items: Sequence[Effect]) -> bool:
    """True when every effect has an int64-matrix form.

    ``set_tokens`` vectorizes only with a constant value — expression
    values would need per-lane evaluation ordering guarantees the
    kernel does not promise.
    """
    for item in items:
        if isinstance(item, SetTokens) and not (
            isinstance(item.value, Const)
            and isinstance(item.value.value, int)
            and not isinstance(item.value.value, bool)
        ):
            return False
    return True


# -- canonical signatures --------------------------------------------------
#
# The batch driver validates that every lane's model carries the *same*
# IR before sharing compiled kernels built from lane 0's expression
# objects.  Signatures are name-based (places are identified by name),
# so structurally identical models built by the same builder compare
# equal while any divergence — different constants, different operand
# order — is caught.


def signature(expr: Expr) -> str:
    """A canonical structural string for cross-lane validation."""
    if isinstance(expr, TokensOf):
        return f"tok({expr.place.name})"
    if isinstance(expr, ExtField):
        return f"fld({expr.place.name},{expr.path!r})"
    if isinstance(expr, Const):
        return f"c({expr.value!r})"
    if isinstance(expr, BoolConst):
        return f"b({expr.value})"
    if isinstance(expr, Compare):
        return f"({signature(expr.left)}{expr.op}{signature(expr.right)})"
    if isinstance(expr, InSet):
        members = ",".join(sorted(repr(v) for v in expr.values))
        return f"in({signature(expr.operand)},[{members}])"
    if isinstance(expr, And):
        return "&".join(signature(p) for p in expr.parts).join("()")
    if isinstance(expr, Or):
        return "|".join(signature(p) for p in expr.parts).join("()")
    if isinstance(expr, Not):
        return f"!({signature(expr.operand)})"
    if isinstance(expr, ToInt):
        return f"int({signature(expr.operand)})"
    if isinstance(expr, ToFloat):
        return f"flt({signature(expr.operand)})"
    if isinstance(expr, Arith):
        return f"({signature(expr.left)}{expr.op}{signature(expr.right)})"
    raise ModelError(f"unknown expression node {type(expr).__name__}")


def effects_signature(items: Sequence[Effect]) -> str:
    parts = []
    for item in items:
        if isinstance(item, AddTokens):
            parts.append(f"add({item.place.name},{item.n})")
        elif isinstance(item, RemoveTokens):
            parts.append(f"rem({item.place.name},{item.n})")
        elif isinstance(item, SetTokens):
            parts.append(f"set({item.place.name},{signature(item.value)})")
        else:
            raise ModelError(f"unknown effect node {type(item).__name__}")
    return ";".join(parts)


# -- column-abstracted shapes ----------------------------------------------
#
# Replicated model fragments (``Finish_0`` .. ``Finish_7``) differ only
# in *which* place each token read/write touches — operators, operand
# order, and constants are identical.  A shape signature abstracts the
# place out of :func:`signature`, so two expressions with equal shapes
# can share one *family* kernel that evaluates every member at once by
# indexing the token matrix with per-occurrence column arrays.


def shape_signature(expr: Expr) -> str:
    """:func:`signature` with every place leaf abstracted to ``@``."""
    if isinstance(expr, TokensOf):
        return "tok(@)"
    if isinstance(expr, ExtField):
        return f"fld(@,{expr.path!r})"
    if isinstance(expr, Const):
        return f"c({expr.value!r})"
    if isinstance(expr, BoolConst):
        return f"b({expr.value})"
    if isinstance(expr, Compare):
        return f"({shape_signature(expr.left)}{expr.op}{shape_signature(expr.right)})"
    if isinstance(expr, InSet):
        members = ",".join(sorted(repr(v) for v in expr.values))
        return f"in({shape_signature(expr.operand)},[{members}])"
    if isinstance(expr, And):
        return "&".join(shape_signature(p) for p in expr.parts).join("()")
    if isinstance(expr, Or):
        return "|".join(shape_signature(p) for p in expr.parts).join("()")
    if isinstance(expr, Not):
        return f"!({shape_signature(expr.operand)})"
    if isinstance(expr, ToInt):
        return f"int({shape_signature(expr.operand)})"
    if isinstance(expr, ToFloat):
        return f"flt({shape_signature(expr.operand)})"
    if isinstance(expr, Arith):
        return f"({shape_signature(expr.left)}{expr.op}{shape_signature(expr.right)})"
    raise ModelError(f"unknown expression node {type(expr).__name__}")


def effects_shape_signature(items: Sequence[Effect]) -> str:
    """:func:`effects_signature` with place names abstracted to ``@``."""
    parts = []
    for item in items:
        if isinstance(item, AddTokens):
            parts.append(f"add(@,{item.n})")
        elif isinstance(item, RemoveTokens):
            parts.append(f"rem(@,{item.n})")
        elif isinstance(item, SetTokens):
            parts.append(f"set(@,{shape_signature(item.value)})")
        else:
            raise ModelError(f"unknown effect node {type(item).__name__}")
    return ";".join(parts)


def expr_leaf_cols(expr: Expr, colmap: Dict[int, int]) -> List[int]:
    """Matrix columns of every ``TokensOf`` *occurrence*, in walk order.

    Unlike :func:`expr_places` this does not deduplicate: the family
    emitter binds one column array per leaf occurrence, and members may
    legitimately read the same place at several occurrences.
    """
    return [
        _col(node.place, colmap)
        for node in _walk(expr)
        if isinstance(node, TokensOf)
    ]


def effect_leaf_cols(items: Sequence[Effect], colmap: Dict[int, int]) -> List[int]:
    """Matrix column of each effect item's target place, in order."""
    return [_col(item.place, colmap) for item in items]


# -- scalar compilation ----------------------------------------------------


class _Ctx:
    """Codegen environment: binds live objects to generated names.

    The generated source never names a builtin directly, but the env
    still carries the real builtins: numpy's reduction methods resolve
    ``__import__`` through the calling frame's builtins, so an empty
    dict would break the vector kernels at run time.
    """

    def __init__(self) -> None:
        self.env: Dict[str, Any] = {"__builtins__": __builtins__}
        self._n = 0
        self._place_names: Dict[int, str] = {}

    def bind(self, prefix: str, obj: Any) -> str:
        name = f"{prefix}{self._n}"
        self._n += 1
        self.env[name] = obj
        return name

    def bind_place(self, place: Any) -> str:
        # One name per place object keeps generated source short.
        name = self._place_names.get(id(place))
        if name is None:
            name = self.bind("p", place)
            self._place_names[id(place)] = name
        return name


def _emit_scalar(expr: Expr, ctx: _Ctx) -> str:
    if isinstance(expr, TokensOf):
        return f"{ctx.bind_place(expr.place)}._cell.tokens"
    if isinstance(expr, ExtField):
        chain = "".join(f"[{key!r}]" for key in expr.path)
        return f"{ctx.bind_place(expr.place)}._cell.value{chain}"
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, BoolConst):
        return "True" if expr.value else "False"
    if isinstance(expr, Compare):
        left = _emit_scalar(expr.left, ctx)
        right = _emit_scalar(expr.right, ctx)
        return f"(({left}) {expr.op} ({right}))"
    if isinstance(expr, InSet):
        operand = _emit_scalar(expr.operand, ctx)
        return f"(({operand}) in {ctx.bind('s', expr.values)})"
    if isinstance(expr, And):
        return "(" + " and ".join(
            f"({_emit_scalar(p, ctx)})" for p in expr.parts
        ) + ")"
    if isinstance(expr, Or):
        return "(" + " or ".join(
            f"({_emit_scalar(p, ctx)})" for p in expr.parts
        ) + ")"
    if isinstance(expr, Not):
        return f"(not ({_emit_scalar(expr.operand, ctx)}))"
    if isinstance(expr, ToInt):
        # bool * 1 is exactly the int the closure idiom sums.
        return f"(({_emit_scalar(expr.operand, ctx)}) * 1)"
    if isinstance(expr, ToFloat):
        # bool * 1.0 is exactly 1.0/0.0 — the indicator-rate idiom.
        return f"(({_emit_scalar(expr.operand, ctx)}) * 1.0)"
    if isinstance(expr, Arith):
        left = _emit_scalar(expr.left, ctx)
        right = _emit_scalar(expr.right, ctx)
        return f"(({left}) {expr.op} ({right}))"
    raise ModelError(f"unknown expression node {type(expr).__name__}")


def _compile_function(src: str, env: Dict[str, Any], name: str) -> Callable:
    code = compile(src, "<san-expr-ir>", "exec")
    exec(code, env)
    return env[name]


def compile_scalar_predicate(expr: Expr) -> Callable[[], bool]:
    """A zero-argument specialized evaluator of a boolean expression."""
    if not is_boolean(expr):
        raise ModelError(
            "a gate predicate expression must be boolean-valued "
            f"(got {type(expr).__name__}); compare or wrap it"
        )
    ctx = _Ctx()
    body = _emit_scalar(expr, ctx)
    src = f"def _pred():\n    return {body}\n"
    return _compile_function(src, ctx.env, "_pred")


def compile_scalar_rate(expr: Expr) -> Callable[[], float]:
    """A zero-argument specialized evaluator of a numeric expression."""
    if is_boolean(expr):
        raise ModelError(
            "a rate expression must be numeric; wrap booleans with "
            "indicator() or count()"
        )
    ctx = _Ctx()
    body = _emit_scalar(expr, ctx)
    src = f"def _rate():\n    return {body}\n"
    return _compile_function(src, ctx.env, "_rate")


def compile_scalar_effects(items: Sequence[Effect]) -> Callable[[], None]:
    """A zero-argument effect function using the public place API.

    Effects must go through the place accessors (``add``/``remove``/
    the ``tokens`` setter) so the engines' dirty-tracking sinks see
    every write — unlike predicate reads, which bypass the sink because
    the write set is statically derived.
    """
    ctx = _Ctx()
    lines: List[str] = []
    for item in items:
        name = ctx.bind_place(item.place)
        if isinstance(item, AddTokens):
            lines.append(f"{name}.add({item.n})")
        elif isinstance(item, RemoveTokens):
            lines.append(f"{name}.remove({item.n})")
        elif isinstance(item, SetTokens):
            lines.append(f"{name}.tokens = {_emit_scalar(item.value, ctx)}")
        else:
            raise ModelError(f"unknown effect node {type(item).__name__}")
    body = "".join(f"    {line}\n" for line in lines) or "    pass\n"
    src = f"def _fx():\n{body}"
    return _compile_function(src, ctx.env, "_fx")


# -- vector compilation ----------------------------------------------------
#
# ``colmap`` maps ``id(cell)`` -> column index into the shared
# ``(R, n_places)`` int64 token matrix.  It is keyed by *cell* (not
# place) because Join redirects several places onto one cell and the
# matrix must hold one authoritative column per storage location.
# Kernels are compiled per model *shape* (lane 0) and shared across
# lanes after signature validation.


def _col(place: Any, colmap: Dict[int, int]) -> int:
    try:
        return colmap[id(place._cell)]
    except KeyError:
        raise ModelError(
            f"place {place.name!r} is missing from the batch column layout"
        ) from None


def _emit_vector(expr: Expr, colmap: Dict[int, int], ctx: _Ctx) -> str:
    if isinstance(expr, TokensOf):
        return f"M[:, {_col(expr.place, colmap)}]"
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, BoolConst):
        return "True" if expr.value else "False"
    if isinstance(expr, Compare):
        left = _emit_vector(expr.left, colmap, ctx)
        right = _emit_vector(expr.right, colmap, ctx)
        return f"(({left}) {expr.op} ({right}))"
    if isinstance(expr, And):
        return "(" + " & ".join(
            f"({_emit_vector(p, colmap, ctx)})" for p in expr.parts
        ) + ")"
    if isinstance(expr, Or):
        return "(" + " | ".join(
            f"({_emit_vector(p, colmap, ctx)})" for p in expr.parts
        ) + ")"
    if isinstance(expr, Not):
        return f"(~({_emit_vector(expr.operand, colmap, ctx)}))"
    if isinstance(expr, ToInt):
        return f"(({_emit_vector(expr.operand, colmap, ctx)}) * 1)"
    if isinstance(expr, ToFloat):
        return f"(({_emit_vector(expr.operand, colmap, ctx)}) * 1.0)"
    if isinstance(expr, Arith):
        if expr.op == "+":
            fused = _emit_count_sum(expr, colmap, ctx)
            if fused is not None:
                return fused
        left = _emit_vector(expr.left, colmap, ctx)
        right = _emit_vector(expr.right, colmap, ctx)
        return f"(({left}) {expr.op} ({right}))"
    raise ModelError(
        f"expression node {type(expr).__name__} has no vector form"
    )


def _flatten_add(expr: Expr, terms: List[Expr]) -> None:
    if isinstance(expr, Arith) and expr.op == "+":
        _flatten_add(expr.left, terms)
        _flatten_add(expr.right, terms)
    else:
        terms.append(expr)


def _emit_count_sum(
    expr: Expr, colmap: Dict[int, int], ctx: _Ctx
) -> Optional[str]:
    """Fuse ``count(a) + count(b) + ...`` over same-shape predicates.

    The reward idiom ``sum of indicators over replicated places`` is a
    left-nested integer Add chain; when every term is ``ToInt`` of a
    structurally identical predicate (same shape, different columns),
    the whole chain evaluates as one family kernel — a column-array
    gather per leaf, one elementwise pass, one integer row reduction.
    Integer addition is exact, so the reduction is bit-identical to the
    nested adds regardless of association order.
    """
    terms: List[Expr] = []
    _flatten_add(expr, terms)
    if len(terms) < 3 or not all(isinstance(t, ToInt) for t in terms):
        return None
    shapes = {shape_signature(t.operand) for t in terms}
    if len(shapes) != 1:
        return None
    member_cols = [expr_leaf_cols(t.operand, colmap) for t in terms]
    body = _emit_family(terms[0].operand, _family_col_names(member_cols, ctx))
    return f"((({body}) * 1).sum(axis=1))"


def compile_vector_predicate(
    expr: Expr, colmap: Dict[int, int]
) -> Callable[[Any], Any]:
    """``fn(M) -> (R,) bool`` evaluating the gate for every lane at once."""
    if not is_boolean(expr):
        raise ModelError("a vector predicate must be boolean-valued")
    ctx = _Ctx()
    body = _emit_vector(expr, colmap, ctx)
    src = f"def _vpred(M):\n    return {body}\n"
    return _compile_function(src, ctx.env, "_vpred")


def compile_vector_rate(
    expr: Expr, colmap: Dict[int, int]
) -> Callable[[Any], Any]:
    """``fn(M) -> (R,) float64`` — one reward rate for every lane."""
    if is_boolean(expr):
        raise ModelError("a vector rate must be numeric; use indicator()")
    ctx = _Ctx()
    body = _emit_vector(expr, colmap, ctx)
    src = f"def _vrate(M):\n    return {body}\n"
    return _compile_function(src, ctx.env, "_vrate")


def compile_vector_effects(
    items: Sequence[Effect], colmap: Dict[int, int]
) -> Callable[[Any, Any], None]:
    """``fn(M, rows)`` applying the effect list to the given lane rows.

    Mirrors the scalar semantics exactly, including the negative-
    marking guard ``Place.remove`` enforces.
    """
    ctx = _Ctx()
    ctx.env["_negative"] = _raise_negative
    lines: List[str] = []
    for item in items:
        col = _col(item.place, colmap)
        pname = repr(item.place.name)
        if isinstance(item, AddTokens):
            if item.n:
                lines.append(f"M[rows, {col}] += {item.n}")
        elif isinstance(item, RemoveTokens):
            if item.n:
                lines.append(f"_c = M[rows, {col}] - {item.n}")
                lines.append(f"if (_c < 0).any(): _negative({pname})")
                lines.append(f"M[rows, {col}] = _c")
        elif isinstance(item, SetTokens):
            value = item.value
            if not isinstance(value, Const) or not isinstance(value.value, int):
                raise ModelError(
                    f"set_tokens on {item.place.name!r} has no vector form "
                    "(non-constant value)"
                )
            lines.append(f"M[rows, {col}] = {value.value}")
        else:
            raise ModelError(f"unknown effect node {type(item).__name__}")
    body = "".join(f"    {line}\n" for line in lines) or "    pass\n"
    src = f"def _vfx(M, rows):\n{body}"
    return _compile_function(src, ctx.env, "_vfx")


# -- family compilation ----------------------------------------------------
#
# A *family* is a run of activities whose gate and effect shapes are
# identical (``Dispatch_0`` .. ``Dispatch_{G-1}``).  One family kernel
# replaces the member-by-member calls the batch driver would otherwise
# make: the predicate evaluates every (lane, member) pair through
# column-array gathers, and the effect kernel scatters one fused
# ``M[rows, cols[js]]`` update per effect item across all fired pairs.
# Scatters never alias within an item — each lane fires at most one
# activity per round or settle pass, so the (row, column) index pairs
# are unique — which keeps the item-by-item apply order identical to
# the serial engines'.


def _family_col_names(
    member_cols: Sequence[Sequence[int]], ctx: _Ctx
) -> List[str]:
    """Bind one column array per leaf occurrence; return their names."""
    n_occ = len(member_cols[0])
    return [
        ctx.bind(
            "C",
            numpy.array([mc[i] for mc in member_cols], dtype=numpy.intp),
        )
        for i in range(n_occ)
    ]


def _emit_family(expr: Expr, col_names: Sequence[str]) -> str:
    """Emit the template over ``(R, m)`` per-occurrence column gathers."""
    names = iter(col_names)

    def emit(node: Expr) -> str:
        if isinstance(node, TokensOf):
            return f"M[:, {next(names)}]"
        if isinstance(node, Const):
            return repr(node.value)
        if isinstance(node, BoolConst):
            return "True" if node.value else "False"
        if isinstance(node, Compare):
            return f"(({emit(node.left)}) {node.op} ({emit(node.right)}))"
        if isinstance(node, And):
            return "(" + " & ".join(f"({emit(p)})" for p in node.parts) + ")"
        if isinstance(node, Or):
            return "(" + " | ".join(f"({emit(p)})" for p in node.parts) + ")"
        if isinstance(node, Not):
            return f"(~({emit(node.operand)}))"
        if isinstance(node, ToInt):
            return f"(({emit(node.operand)}) * 1)"
        if isinstance(node, ToFloat):
            return f"(({emit(node.operand)}) * 1.0)"
        if isinstance(node, Arith):
            return f"(({emit(node.left)}) {node.op} ({emit(node.right)}))"
        raise ModelError(
            f"expression node {type(node).__name__} has no family form"
        )

    return emit(expr)


def compile_family_predicate(
    template: Expr, member_cols: Sequence[Sequence[int]]
) -> Callable[[Any], Any]:
    """``fn(M) -> (R, m) bool`` — one gate shape over m member columns.

    ``member_cols`` lists, per family member, the matrix column of each
    ``TokensOf`` occurrence of ``template`` in walk order (the order
    :func:`expr_leaf_cols` returns).
    """
    if not is_boolean(template):
        raise ModelError("a family predicate must be boolean-valued")
    ctx = _Ctx()
    body = _emit_family(template, _family_col_names(member_cols, ctx))
    src = f"def _vfpred(M):\n    return {body}\n"
    return _compile_function(src, ctx.env, "_vfpred")


def compile_family_effects(
    template: Sequence[Effect],
    member_cols: Sequence[Sequence[int]],
    member_names: Sequence[Sequence[str]],
) -> Callable[[Any, Any, Any], None]:
    """``fn(M, rows, js)`` applying the template to fired (lane, member) pairs.

    ``rows`` and ``js`` are parallel index arrays: lane row and family
    member index of each firing.  ``member_cols``/``member_names`` give,
    per member, the column and place name of each effect item.
    """
    ctx = _Ctx()
    ctx.env["_negfam"] = _raise_negative_family
    lines: List[str] = []
    for i, item in enumerate(template):
        col_name = ctx.bind(
            "E",
            numpy.array([mc[i] for mc in member_cols], dtype=numpy.intp),
        )
        if isinstance(item, AddTokens):
            if item.n:
                lines.append(f"M[rows, {col_name}[js]] += {item.n}")
        elif isinstance(item, RemoveTokens):
            if item.n:
                names = ctx.bind("N", [mn[i] for mn in member_names])
                lines.append(f"_e = {col_name}[js]")
                lines.append(f"_c = M[rows, _e] - {item.n}")
                lines.append(f"if (_c < 0).any(): _negfam({names}, js, _c)")
                lines.append("M[rows, _e] = _c")
        elif isinstance(item, SetTokens):
            value = item.value
            if not isinstance(value, Const) or not isinstance(value.value, int):
                raise ModelError(
                    f"set_tokens on {item.place.name!r} has no vector form "
                    "(non-constant value)"
                )
            lines.append(f"M[rows, {col_name}[js]] = {value.value}")
        else:
            raise ModelError(f"unknown effect node {type(item).__name__}")
    body = "".join(f"    {line}\n" for line in lines) or "    pass\n"
    src = f"def _vffx(M, rows, js):\n{body}"
    return _compile_function(src, ctx.env, "_vffx")


def _raise_negative(place_name: str) -> None:
    raise SimulationError(
        f"place {place_name!r}: marking would go negative (batch lane)"
    )


def _raise_negative_family(names: Sequence[str], js: Any, counts: Any) -> None:
    for i, count in enumerate(counts.tolist()):
        if count < 0:
            _raise_negative(names[int(js[i])])
