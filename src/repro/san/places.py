"""SAN places: the state variables of a Stochastic Activity Network.

A *place* holds a natural number of tokens (Sanders & Meyer's formal
definition).  Mobius additionally supports *extended places* whose
"token" is a structured value — the paper leans on these heavily: a
``VCPU_slot`` place carries ``remaining_load``, ``sync_point``, and
``status`` fields rather than a bare count.

**Sharing.**  Mobius's Join operation equates state variables of
independently constructed sub-models (the paper's Tables 1 and 2 list
exactly these "join places").  Gates in this implementation close over
place objects, so joining cannot swap the objects themselves; instead,
every place stores its marking in an internal *cell*, and
:func:`share` redirects several places onto one common cell.  After
sharing, a token deposited through any member is visible through all —
precisely Mobius's shared-variable semantics.
"""

from __future__ import annotations

import copy
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Sequence, Set, Union

from ..errors import ModelError, SimulationError


class _TokenCell:
    """Shared storage for a natural-number marking."""

    __slots__ = ("tokens",)

    def __init__(self, tokens: int) -> None:
        self.tokens = tokens


class _ValueCell:
    """Shared storage for an extended place's structured value."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value


# -- dependency tracking -------------------------------------------------
#
# The incremental enablement engine (see ``repro.san.simulator``) needs to
# know which storage cells a gate predicate *reads* and which cells a
# completion *writes*.  Tracking happens at the cell level because Join
# redirects several places onto one cell: a write through any member must
# invalidate gates watching any other member.
#
# Two module-level sinks drive it:
#
# * ``_read_sink`` — while installed, cell reads are recorded into it and
#   reads of an extended place's mutable value are treated as pure (the
#   engine installs it around gate predicates and reward functions, which
#   are required to be side-effect-free observers of the marking).
# * ``_dirty_sink`` — while installed, written cells are recorded into it
#   (the engine installs it around activity completions).
#
# Every write additionally bumps ``_WRITE_EPOCH``, a process-global
# counter; a simulator compares it against the value it saw at the end of
# its last public call to detect out-of-band mutations (tests poking at
# places, model resets, a second simulator) and conservatively drops its
# whole enablement cache when they happened.
#
# Because an :class:`ExtendedPlace` hands out a *mutable* value through
# its getter, a ``.value`` read outside any read sink is conservatively
# counted as a potential write — gate functions mutate slot dicts in
# place through exactly that path, and guessing would break semantics.

_WRITE_EPOCH = 0
_read_sink: Optional[Set[Any]] = None
_dirty_sink: Optional[Set[Any]] = None


def write_epoch() -> int:
    """The process-global write counter (monotonic; engine plumbing)."""
    return _WRITE_EPOCH


def set_read_sink(sink: Optional[Set[Any]]) -> Optional[Set[Any]]:
    """Install a read sink; returns the previous one (engine plumbing).

    Callers must restore the previous sink in a ``finally`` block.
    """
    global _read_sink
    previous = _read_sink
    _read_sink = sink
    return previous


def set_dirty_sink(sink: Optional[Set[Any]]) -> Optional[Set[Any]]:
    """Install a write sink; returns the previous one (engine plumbing)."""
    global _dirty_sink
    previous = _dirty_sink
    _dirty_sink = sink
    return previous


@contextmanager
def tracking_reads(sink: Set[Any]) -> Iterator[Set[Any]]:
    """Record every cell read inside the block into ``sink``.

    Inside the block, reads of extended-place values are treated as pure
    observations (they do not conservatively dirty the cell), so only
    wrap code that genuinely does not mutate the marking.
    """
    previous = set_read_sink(sink)
    try:
        yield sink
    finally:
        set_read_sink(previous)


@contextmanager
def capturing_writes(sink: Set[Any]) -> Iterator[Set[Any]]:
    """Record every cell written inside the block into ``sink``."""
    previous = set_dirty_sink(sink)
    try:
        yield sink
    finally:
        set_dirty_sink(previous)


def _mark_written(cell: Any) -> None:
    global _WRITE_EPOCH
    _WRITE_EPOCH += 1
    if _dirty_sink is not None:
        _dirty_sink.add(cell)


class Place:
    """A place holding a natural number of tokens.

    Attributes:
        name: the place's name within its atomic model.
        initial: marking restored by :meth:`reset`.
    """

    def __init__(self, name: str, initial: int = 0) -> None:
        if not name:
            raise ModelError("a place needs a non-empty name")
        if initial < 0:
            raise ModelError(f"place {name!r}: initial marking must be >= 0, got {initial}")
        self.name = name
        self.initial = int(initial)
        self._cell = _TokenCell(int(initial))

    @property
    def tokens(self) -> int:
        if _read_sink is not None:
            _read_sink.add(self._cell)
        return self._cell.tokens

    @tokens.setter
    def tokens(self, value: int) -> None:
        if value < 0:
            raise SimulationError(
                f"place {self.name!r}: marking would go negative ({value})"
            )
        self._cell.tokens = int(value)
        _mark_written(self._cell)

    def add(self, n: int = 1) -> None:
        """Deposit ``n`` tokens."""
        self.tokens = self._cell.tokens + n

    def remove(self, n: int = 1) -> None:
        """Withdraw ``n`` tokens; raises if the marking would go negative."""
        self.tokens = self._cell.tokens - n

    def is_empty(self) -> bool:
        if _read_sink is not None:
            _read_sink.add(self._cell)
        return self._cell.tokens == 0

    def reset(self) -> None:
        """Restore the initial marking (between replications)."""
        self._cell.tokens = self.initial
        _mark_written(self._cell)

    def snapshot(self) -> int:
        """An immutable copy of the marking, for traces and rewards."""
        if _read_sink is not None:
            _read_sink.add(self._cell)
        return self._cell.tokens

    def shares_cell_with(self, other: "Place") -> bool:
        """True if this place and ``other`` have been joined."""
        return self._cell is other._cell

    def __repr__(self) -> str:
        return f"Place({self.name!r}, tokens={self._cell.tokens})"


class ExtendedPlace:
    """A place whose marking is a structured value (Mobius extended place).

    The value can be any object; the model decides its shape.  The initial
    value is deep-copied on reset so that mutations during one replication
    never leak into the next.

    Example:
        >>> slot = ExtendedPlace("VCPU_slot", {"remaining_load": 0, "status": "INACTIVE"})
        >>> slot.value["status"] = "READY"
        >>> slot.reset()
        >>> slot.value["status"]
        'INACTIVE'
    """

    def __init__(self, name: str, initial: Any) -> None:
        if not name:
            raise ModelError("a place needs a non-empty name")
        self.name = name
        self.initial = initial
        self._cell = _ValueCell(copy.deepcopy(initial))

    @property
    def value(self) -> Any:
        # The getter hands out a mutable reference.  Under a read sink
        # (gate predicates, rewards) it is a pure observation; anywhere
        # else the caller may mutate the value in place, so the read is
        # conservatively counted as a potential write.
        if _read_sink is not None:
            _read_sink.add(self._cell)
        else:
            _mark_written(self._cell)
        return self._cell.value

    @value.setter
    def value(self, new_value: Any) -> None:
        self._cell.value = new_value
        _mark_written(self._cell)

    def reset(self) -> None:
        """Restore a deep copy of the initial value."""
        self._cell.value = copy.deepcopy(self.initial)
        _mark_written(self._cell)

    def snapshot(self) -> Any:
        """A deep copy of the current value, for traces and rewards."""
        if _read_sink is not None:
            _read_sink.add(self._cell)
        return copy.deepcopy(self._cell.value)

    def shares_cell_with(self, other: "ExtendedPlace") -> bool:
        """True if this place and ``other`` have been joined."""
        return self._cell is other._cell

    def __repr__(self) -> str:
        return f"ExtendedPlace({self.name!r}, value={self._cell.value!r})"


PlaceLike = Union[Place, ExtendedPlace]


def share(places: Sequence[PlaceLike]) -> None:
    """Join several places onto one common storage cell.

    All members must be the same kind (all :class:`Place` or all
    :class:`ExtendedPlace`) and declare equal initial markings — joining
    a place initialised to 3 tokens with one initialised to 0 would make
    "reset" ambiguous, which Mobius likewise rejects.

    After sharing, the first member's *current* marking wins.

    Raises:
        ModelError: on mixed kinds, mismatched initials, or < 2 members.
    """
    if len(places) < 2:
        raise ModelError("share() needs at least two places")
    first = places[0]
    for other in places[1:]:
        if type(other) is not type(first):
            raise ModelError(
                f"cannot share {first.name!r} ({type(first).__name__}) with "
                f"{other.name!r} ({type(other).__name__}): kinds differ"
            )
        if other.initial != first.initial:
            raise ModelError(
                f"cannot share {first.name!r} with {other.name!r}: "
                f"initial markings differ ({first.initial!r} vs {other.initial!r})"
            )
        other._cell = first._cell
    # Joining rewires storage out from under any existing enablement
    # cache; bump the epoch so attached simulators notice.
    _mark_written(first._cell)


class Marking:
    """A read-only view over a set of places, keyed by qualified name.

    Reward variables and tests use this to observe state without holding
    references into the model's internals.
    """

    def __init__(self, places: Dict[str, PlaceLike]) -> None:
        self._places = dict(places)

    def __getitem__(self, name: str):
        # A Marking is an observation API: reads through it never count
        # as potential writes (mutating a value obtained here is
        # undefined behaviour — use the place object itself to mutate).
        place = self._places[name]
        if _read_sink is not None:
            _read_sink.add(place._cell)
        return (
            place._cell.tokens
            if isinstance(place, Place)
            else place._cell.value
        )

    def get(self, name: str, default: Optional[Any] = None):
        if name not in self._places:
            return default
        return self[name]

    def __contains__(self, name: str) -> bool:
        return name in self._places

    def names(self) -> list:
        return sorted(self._places)

    def snapshot(self) -> Dict[str, Any]:
        """Deep-copied dict of every place's marking."""
        return {name: place.snapshot() for name, place in self._places.items()}
