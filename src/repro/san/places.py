"""SAN places: the state variables of a Stochastic Activity Network.

A *place* holds a natural number of tokens (Sanders & Meyer's formal
definition).  Mobius additionally supports *extended places* whose
"token" is a structured value — the paper leans on these heavily: a
``VCPU_slot`` place carries ``remaining_load``, ``sync_point``, and
``status`` fields rather than a bare count.

**Sharing.**  Mobius's Join operation equates state variables of
independently constructed sub-models (the paper's Tables 1 and 2 list
exactly these "join places").  Gates in this implementation close over
place objects, so joining cannot swap the objects themselves; instead,
every place stores its marking in an internal *cell*, and
:func:`share` redirects several places onto one common cell.  After
sharing, a token deposited through any member is visible through all —
precisely Mobius's shared-variable semantics.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Optional, Sequence, Union

from ..errors import ModelError, SimulationError


class _TokenCell:
    """Shared storage for a natural-number marking."""

    __slots__ = ("tokens",)

    def __init__(self, tokens: int) -> None:
        self.tokens = tokens


class _ValueCell:
    """Shared storage for an extended place's structured value."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value


class Place:
    """A place holding a natural number of tokens.

    Attributes:
        name: the place's name within its atomic model.
        initial: marking restored by :meth:`reset`.
    """

    def __init__(self, name: str, initial: int = 0) -> None:
        if not name:
            raise ModelError("a place needs a non-empty name")
        if initial < 0:
            raise ModelError(f"place {name!r}: initial marking must be >= 0, got {initial}")
        self.name = name
        self.initial = int(initial)
        self._cell = _TokenCell(int(initial))

    @property
    def tokens(self) -> int:
        return self._cell.tokens

    @tokens.setter
    def tokens(self, value: int) -> None:
        if value < 0:
            raise SimulationError(
                f"place {self.name!r}: marking would go negative ({value})"
            )
        self._cell.tokens = int(value)

    def add(self, n: int = 1) -> None:
        """Deposit ``n`` tokens."""
        self.tokens = self._cell.tokens + n

    def remove(self, n: int = 1) -> None:
        """Withdraw ``n`` tokens; raises if the marking would go negative."""
        self.tokens = self._cell.tokens - n

    def is_empty(self) -> bool:
        return self._cell.tokens == 0

    def reset(self) -> None:
        """Restore the initial marking (between replications)."""
        self._cell.tokens = self.initial

    def snapshot(self) -> int:
        """An immutable copy of the marking, for traces and rewards."""
        return self._cell.tokens

    def shares_cell_with(self, other: "Place") -> bool:
        """True if this place and ``other`` have been joined."""
        return self._cell is other._cell

    def __repr__(self) -> str:
        return f"Place({self.name!r}, tokens={self._cell.tokens})"


class ExtendedPlace:
    """A place whose marking is a structured value (Mobius extended place).

    The value can be any object; the model decides its shape.  The initial
    value is deep-copied on reset so that mutations during one replication
    never leak into the next.

    Example:
        >>> slot = ExtendedPlace("VCPU_slot", {"remaining_load": 0, "status": "INACTIVE"})
        >>> slot.value["status"] = "READY"
        >>> slot.reset()
        >>> slot.value["status"]
        'INACTIVE'
    """

    def __init__(self, name: str, initial: Any) -> None:
        if not name:
            raise ModelError("a place needs a non-empty name")
        self.name = name
        self.initial = initial
        self._cell = _ValueCell(copy.deepcopy(initial))

    @property
    def value(self) -> Any:
        return self._cell.value

    @value.setter
    def value(self, new_value: Any) -> None:
        self._cell.value = new_value

    def reset(self) -> None:
        """Restore a deep copy of the initial value."""
        self._cell.value = copy.deepcopy(self.initial)

    def snapshot(self) -> Any:
        """A deep copy of the current value, for traces and rewards."""
        return copy.deepcopy(self._cell.value)

    def shares_cell_with(self, other: "ExtendedPlace") -> bool:
        """True if this place and ``other`` have been joined."""
        return self._cell is other._cell

    def __repr__(self) -> str:
        return f"ExtendedPlace({self.name!r}, value={self._cell.value!r})"


PlaceLike = Union[Place, ExtendedPlace]


def share(places: Sequence[PlaceLike]) -> None:
    """Join several places onto one common storage cell.

    All members must be the same kind (all :class:`Place` or all
    :class:`ExtendedPlace`) and declare equal initial markings — joining
    a place initialised to 3 tokens with one initialised to 0 would make
    "reset" ambiguous, which Mobius likewise rejects.

    After sharing, the first member's *current* marking wins.

    Raises:
        ModelError: on mixed kinds, mismatched initials, or < 2 members.
    """
    if len(places) < 2:
        raise ModelError("share() needs at least two places")
    first = places[0]
    for other in places[1:]:
        if type(other) is not type(first):
            raise ModelError(
                f"cannot share {first.name!r} ({type(first).__name__}) with "
                f"{other.name!r} ({type(other).__name__}): kinds differ"
            )
        if other.initial != first.initial:
            raise ModelError(
                f"cannot share {first.name!r} with {other.name!r}: "
                f"initial markings differ ({first.initial!r} vs {other.initial!r})"
            )
        other._cell = first._cell


class Marking:
    """A read-only view over a set of places, keyed by qualified name.

    Reward variables and tests use this to observe state without holding
    references into the model's internals.
    """

    def __init__(self, places: Dict[str, PlaceLike]) -> None:
        self._places = dict(places)

    def __getitem__(self, name: str):
        place = self._places[name]
        return place.tokens if isinstance(place, Place) else place.value

    def get(self, name: str, default: Optional[Any] = None):
        if name not in self._places:
            return default
        return self[name]

    def __contains__(self, name: str) -> bool:
        return name in self._places

    def names(self) -> list:
        return sorted(self._places)

    def snapshot(self) -> Dict[str, Any]:
        """Deep-copied dict of every place's marking."""
        return {name: place.snapshot() for name, place in self._places.items()}
