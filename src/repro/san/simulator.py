"""The SAN discrete-event simulator (the Mobius simulation engine stand-in).

Execution policy, following Mobius's simulator over Sanders & Meyer
semantics:

1. **Settle instantaneous activities.**  While any instantaneous
   activity is enabled, complete the highest-priority one (ties broken
   by registration order) in zero simulated time.  A chain longer than
   ``max_instantaneous_chain`` aborts the run — it almost certainly
   means a model whose zero-time activities re-enable each other
   forever.
2. **(Re)schedule timed activities.**  Every enabled timed activity
   without a pending completion samples a delay from its own random
   stream and schedules a completion event.  Every pending activity
   that has become disabled is *aborted* (its event cancelled); if it
   re-enables later it samples a fresh delay.
3. **Advance.**  Pop the earliest event; first let every rate reward
   integrate over the elapsed interval (the state is stable between
   events by construction), advance the clock, then complete the
   activity (input-gate functions, case selection, output gates) and
   feed impulse rewards.  Repeat from step 1.

Determinism: for a fixed root seed and replication index, runs are
bit-for-bit reproducible — streams are keyed by activity qualified
name, the event queue breaks ties by insertion order, and instantaneous
settling follows a fixed priority order.

Two interchangeable enablement engines implement the policy:

* **incremental** (the default) — cached enablement with place-level
  invalidation.  Each completion's writes are captured (see
  :mod:`repro.san.places`); only activities whose watched cells changed
  are re-evaluated, via :class:`repro.san.state.EnablementCache`.
  Activities whose read sets cannot be established are conservatively
  re-evaluated at every synchronisation point, and out-of-band marking
  mutations (detected through the global write epoch) drop the whole
  cache — so results are bit-for-bit identical to the rescan engine.
* **rescan** (``incremental=False``) — the original engine: every
  input-gate predicate of every activity is re-evaluated after every
  completion.  Kept as the semantic reference; the differential
  property suite in ``tests/property`` holds the two engines to
  identical metrics, completions, and random-stream consumption.

Both engines issue schedule/cancel operations in activity registration
order, so event-queue insertion sequences — and therefore simultaneous-
event tie-breaks — are identical.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from time import perf_counter

from ..des.clock import SimulationClock
from ..des.event_queue import Event, EventQueue
from ..des.random_streams import StreamFactory
from ..errors import SimulationError
from ..observability import profile as _profile
from ..observability import trace as _trace
from . import gates as _gates
from . import places as _places
from .activities import Activity, InstantaneousActivity, TimedActivity
from .model import ModelBase
from .reward import ImpulseReward, RateReward, RewardVariable
from .state import EnablementCache


class SANSimulator:
    """Runs one replication of a SAN model.

    Args:
        model: the (atomic or composed) model to simulate.
        streams: replication random streams (default: seed 0, rep 0).
        max_instantaneous_chain: livelock guard for zero-time chains.
        incremental: use the incremental enablement engine (default).
            Pass False to force the full-rescan reference engine, e.g.
            for differential testing or for models whose gate predicates
            violate the purity contract and cannot be marked volatile.

    Example:
        >>> sim = SANSimulator(model, StreamFactory(root_seed=1, replication=0))
        >>> sim.add_reward(my_rate_reward)
        >>> sim.run(until=10_000)
        >>> my_rate_reward.time_average()  # doctest: +SKIP
    """

    def __init__(
        self,
        model: ModelBase,
        streams: Optional[StreamFactory] = None,
        max_instantaneous_chain: int = 100_000,
        incremental: bool = True,
    ) -> None:
        self.model = model
        self.streams = streams if streams is not None else StreamFactory()
        self.clock = SimulationClock()
        self.max_instantaneous_chain = int(max_instantaneous_chain)

        activities = model.activities()
        self._timed: List[TimedActivity] = [
            a for a in activities if isinstance(a, TimedActivity)
        ]
        instantaneous = [a for a in activities if isinstance(a, InstantaneousActivity)]
        # Stable order: priority first, then registration order.
        self._instantaneous: List[InstantaneousActivity] = sorted(
            instantaneous, key=lambda a: a.priority
        )
        self._queue = EventQueue()
        self._pending: Dict[str, Event] = {}  # qualified name -> event
        self._rate_rewards: List[RateReward] = []
        self._impulse_rewards: List[ImpulseReward] = []
        self._completions = 0
        self._started = False
        self._cache: Optional[EnablementCache] = (
            EnablementCache(activities) if incremental else None
        )
        # Prefetched per-activity state views for the per-event hot loops.
        if self._cache is not None:
            self._inst_states = self._cache.states_for(self._instantaneous)
            self._timed_states = self._cache.states_for(self._timed)
        else:
            self._inst_states = []
            self._timed_states = []
        # Write-epoch watermark for out-of-band mutation detection; the
        # cache starts invalid, so any initial value is safe.
        self._synced_epoch = -1
        # Per-simulator gate-evaluation counter: public entry points
        # capture the process-global counter delta around their body,
        # so attribution stays exact even when simulators interleave
        # (batch lanes, sweep pools).
        self._own_gate_evaluations = 0
        self._reward_reads: set = set()  # discard sink for reward reads
        self._rngs: Dict[Activity, Any] = {}  # per-activity stream cache
        self._cell_names: Optional[Dict[int, str]] = None  # trace write names
        # Tick accounting for the compiled engine's clock fast-forward;
        # always present so stats() has a uniform shape across engines.
        self.ticks_fired = 0
        self.ticks_fast_forwarded = 0
        self._bind_streams()

    # -- configuration ----------------------------------------------------

    def add_reward(self, reward: RewardVariable) -> RewardVariable:
        """Attach a reward variable; returns it for fluent use."""
        if isinstance(reward, RateReward):
            self._rate_rewards.append(reward)
        elif isinstance(reward, ImpulseReward):
            self._impulse_rewards.append(reward)
        else:
            raise SimulationError(
                f"unsupported reward type {type(reward).__name__} for {reward.name!r}"
            )
        return reward

    @property
    def completions(self) -> int:
        """Total activity completions so far (timed + instantaneous)."""
        return self._completions

    @property
    def engine(self) -> str:
        """Which enablement engine runs this simulator."""
        return "incremental" if self._cache is not None else "rescan"

    @property
    def gate_evaluations(self) -> int:
        """Input-gate predicate evaluations attributable to this simulator.

        Maintained per simulator by capturing the process-global
        counter delta around each public entry point (``step``,
        ``run``, ``run_to_quiescence``, and the batch lane hooks), so
        the attribution is exact even when several simulators
        interleave in one process.
        """
        return self._own_gate_evaluations

    def stats(self) -> Dict[str, Any]:
        """Machine-readable engine counters for benchmarks and tests."""
        stats: Dict[str, Any] = {
            "engine": self.engine,
            "completions": self._completions,
            "gate_evaluations": self.gate_evaluations,
            "ticks_fired": self.ticks_fired,
            "ticks_fast_forwarded": self.ticks_fast_forwarded,
        }
        stats.update(self._queue.stats())
        if self._cache is not None:
            stats.update(self._cache.stats())
        return stats

    # -- lifecycle ----------------------------------------------------------

    def reset(self, streams: Optional[StreamFactory] = None) -> None:
        """Restore initial markings, clear events and rewards for a new run."""
        self.model.reset()
        self.clock.reset()
        self._queue.clear()
        self._pending.clear()
        self._completions = 0
        self._started = False
        if streams is not None:
            self.streams = streams
        self._bind_streams()
        self.ticks_fired = 0
        self.ticks_fast_forwarded = 0
        for reward in self._rate_rewards:
            reward.reset()
        for reward in self._impulse_rewards:
            reward.reset()
        if self._cache is not None:
            self._cache.invalidate()
        self._own_gate_evaluations = 0

    # -- core engine --------------------------------------------------------

    def _bind_streams(self) -> None:
        """Resolve every activity's random stream up front.

        Hot-loop hoist (found with the PR 3 profiler): the per-firing
        ``_rng_for`` dict probe and the per-reschedule stream lookups
        are paid once here instead of once per event.  Stream creation
        is a pure function of the activity's qualified name, so eager
        resolution draws nothing and changes no sample path.  The
        reschedule loops then walk prebuilt rows carrying the stream.
        """
        streams = self.streams
        self._rngs = {
            activity: streams.stream(activity.qualified_name)
            for activity in self._timed + self._instantaneous
        }
        self._timed_rows: List[tuple] = [
            (activity, activity.qualified_name, self._rngs[activity])
            for activity in self._timed
        ]
        self._timed_state_rows: List[tuple] = [
            (state, row[0], row[1], row[2])
            for state, row in zip(self._timed_states, self._timed_rows)
        ]

    def _rng_for(self, activity: Activity):
        rng = self._rngs.get(activity)
        if rng is None:
            rng = self.streams.stream(activity.qualified_name)
            self._rngs[activity] = rng
        return rng

    def _complete(self, activity: Activity) -> None:
        """Run one completion, capturing its writes for the cache.

        Sink swaps here and in the reward paths use direct module-
        attribute assignment — the function-call form costs measurably
        at this frequency.
        """
        tracer = _trace._ACTIVE
        if tracer is not None:
            self._complete_traced(activity, tracer)
            return
        if self._cache is not None:
            previous = _places._dirty_sink
            _places._dirty_sink = self._cache.dirty
            try:
                activity.complete(self._rngs[activity])
            finally:
                _places._dirty_sink = previous
        else:
            activity.complete(self._rngs[activity])
        self._completions += 1
        self._notify_impulse(activity)

    def _complete_traced(self, activity: Activity, tracer: "_trace.SimTracer") -> None:
        """Traced completion: capture the marking delta in both engines.

        A private write set records the completion's writes whatever
        the engine; the incremental cache is then fed from it, so the
        emitted trace — like the sample path — is engine-independent.
        """
        tracer._now = self.clock.now
        written: set = set()
        previous = _places._dirty_sink
        _places._dirty_sink = written
        try:
            activity.complete(self._rngs[activity])
        finally:
            _places._dirty_sink = previous
        if self._cache is not None:
            self._cache.dirty.update(written)
        tracer.emit(
            _trace.ACTIVITY_FIRE,
            time=self.clock.now,
            activity=activity.qualified_name,
            timed=isinstance(activity, TimedActivity),
            writes=self._write_names(written),
        )
        self._completions += 1
        self._notify_impulse(activity)

    def _write_names(self, written: set) -> List[str]:
        """Canonical place names for a set of written cells.

        Joined places share one cell; the lexicographically first
        qualified name is the canonical alias, keeping traces stable
        across engines and join orders.
        """
        if self._cell_names is None:
            names: Dict[int, str] = {}
            for qualified, place in self.model.places().items():
                key = id(place._cell)
                current = names.get(key)
                if current is None or qualified < current:
                    names[key] = qualified
            self._cell_names = names
        names = self._cell_names
        return sorted(names[key] for key in map(id, written) if key in names)

    def _chain_error(self, activity: Activity) -> SimulationError:
        return SimulationError(
            f"instantaneous chain exceeded {self.max_instantaneous_chain} "
            f"completions at t={self.clock.now}; last activity was "
            f"{activity.qualified_name!r} — the model likely livelocks"
        )

    def _settle_instantaneous(self) -> None:
        """Complete enabled instantaneous activities until quiescence."""
        if self._cache is not None:
            self._settle_incremental()
        else:
            self._settle_rescan()

    def _settle_rescan(self) -> None:
        chain = 0
        while True:
            fired = False
            for activity in self._instantaneous:
                if activity.enabled():
                    self._complete(activity)
                    fired = True
                    chain += 1
                    if chain > self.max_instantaneous_chain:
                        raise self._chain_error(activity)
                    break  # restart the priority scan after any state change
            if not fired:
                return

    def _settle_incremental(self) -> None:
        cache = self._cache
        states = self._inst_states
        chain = 0
        while True:
            cache.flush()
            fired = None
            for state in states:
                if cache.compute(state) if state.stale else state.enabled:
                    fired = state.activity
                    break
            if fired is None:
                return
            self._complete(fired)
            chain += 1
            if chain > self.max_instantaneous_chain:
                raise self._chain_error(fired)

    def _reschedule_timed(self) -> None:
        """Abort disabled pending activities; schedule newly enabled ones.

        Activities with ``reactivation=True`` additionally resample
        while they stay enabled, so marking-dependent rates track the
        marking (Mobius reactivation semantics).  Both variants walk
        ``self._timed`` in registration order, so the schedule/cancel
        operation sequence — and hence event tie-breaking — is engine-
        independent.
        """
        if self._cache is not None:
            self._reschedule_incremental()
        else:
            self._reschedule_rescan()

    def _reschedule_rescan(self) -> None:
        tracer = _trace._ACTIVE
        for activity, key, rng in self._timed_rows:
            pending = self._pending.get(key)
            enabled = activity.enabled()
            if pending is not None and not enabled:
                self._queue.cancel(pending)
                del self._pending[key]
                if tracer is not None:
                    tracer.emit(_trace.ENGINE_CANCEL, time=self.clock.now,
                                activity=key)
            elif pending is not None and activity.reactivation:
                self._queue.cancel(pending)
                delay = activity.sample_delay(rng)
                self._pending[key] = self._queue.schedule(
                    self.clock.now + delay, activity
                )
                if tracer is not None:
                    tracer.emit(_trace.ENGINE_SCHEDULE, time=self.clock.now,
                                activity=key, at=self.clock.now + delay)
            elif pending is None and enabled:
                delay = activity.sample_delay(rng)
                event = self._queue.schedule(self.clock.now + delay, activity)
                self._pending[key] = event
                if tracer is not None:
                    tracer.emit(_trace.ENGINE_SCHEDULE, time=self.clock.now,
                                activity=key, at=self.clock.now + delay)

    def _reschedule_incremental(self) -> None:
        cache = self._cache
        cache.flush()
        pending_map = self._pending
        tracer = _trace._ACTIVE
        for state, activity, key, rng in self._timed_state_rows:
            pending = pending_map.get(key)
            enabled = cache.compute(state) if state.stale else state.enabled
            if pending is not None and not enabled:
                self._queue.cancel(pending)
                del pending_map[key]
                if tracer is not None:
                    tracer.emit(_trace.ENGINE_CANCEL, time=self.clock.now,
                                activity=key)
            elif pending is not None and activity.reactivation:
                self._queue.cancel(pending)
                delay = activity.sample_delay(rng)
                pending_map[key] = self._queue.schedule(
                    self.clock.now + delay, activity
                )
                if tracer is not None:
                    tracer.emit(_trace.ENGINE_SCHEDULE, time=self.clock.now,
                                activity=key, at=self.clock.now + delay)
            elif pending is None and enabled:
                delay = activity.sample_delay(rng)
                event = self._queue.schedule(self.clock.now + delay, activity)
                pending_map[key] = event
                if tracer is not None:
                    tracer.emit(_trace.ENGINE_SCHEDULE, time=self.clock.now,
                                activity=key, at=self.clock.now + delay)

    def _advance_rewards(self, until: float) -> None:
        now = self.clock.now
        if until > now and self._rate_rewards:
            # Rate functions are pure observers of the marking; run them
            # under a read sink so their extended-place reads are not
            # conservatively counted as writes.
            previous = _places._read_sink
            _places._read_sink = self._reward_reads
            try:
                for reward in self._rate_rewards:
                    reward.observe(now, until)
            finally:
                _places._read_sink = previous

    def _notify_impulse(self, activity: Activity) -> None:
        if self._impulse_rewards:
            now = self.clock.now
            previous = _places._read_sink
            _places._read_sink = self._reward_reads
            try:
                for reward in self._impulse_rewards:
                    reward.on_completion(activity.qualified_name, now)
            finally:
                _places._read_sink = previous

    def _ensure_started(self) -> None:
        if not self._started:
            self._settle_instantaneous()
            self._reschedule_timed()
            self._started = True

    # -- out-of-band mutation boundary ---------------------------------------

    def _sync_in(self) -> None:
        """Entering a public call: drop the cache if places changed outside."""
        if self._cache is not None and _places.write_epoch() != self._synced_epoch:
            self._cache.invalidate()

    def _sync_out(self) -> None:
        """Leaving a public call: record the epoch our cache reflects."""
        if self._cache is not None:
            self._synced_epoch = _places.write_epoch()

    # -- stepping -------------------------------------------------------------

    def _step(self) -> bool:
        profiler = _profile._ACTIVE
        if profiler is not None:
            return self._step_profiled(profiler)
        self._ensure_started()
        head = self._queue.peek()
        if head is None:
            return False
        event = self._queue.pop()
        activity: TimedActivity = event.payload
        del self._pending[activity.qualified_name]
        self._advance_rewards(event.time)
        self.clock.advance_to(event.time)
        self._complete(activity)
        self._settle_instantaneous()
        self._reschedule_timed()
        return True

    def _step_profiled(self, profiler: "_profile.SimProfiler") -> bool:
        """The `_step` body with per-phase wall-clock attribution."""
        self._ensure_started()
        head = self._queue.peek()
        if head is None:
            return False
        event = self._queue.pop()
        activity: TimedActivity = event.payload
        del self._pending[activity.qualified_name]
        t0 = perf_counter()
        self._advance_rewards(event.time)
        t1 = perf_counter()
        self.clock.advance_to(event.time)
        self._complete(activity)
        t2 = perf_counter()
        self._settle_instantaneous()
        t3 = perf_counter()
        self._reschedule_timed()
        t4 = perf_counter()
        profiler.add_time("engine.rewards", t1 - t0)
        profiler.add_time("engine.completion", t2 - t1)
        profiler.add_time("engine.settle", t3 - t2)
        profiler.add_time("engine.reschedule", t4 - t3)
        profiler.count("engine.events")
        return True

    def step(self) -> bool:
        """Process the next timed completion.

        Returns:
            True if an event was processed; False if no event is pending
            (the simulation is quiescent).
        """
        self._sync_in()
        base = _gates._EVALUATIONS
        try:
            return self._step()
        finally:
            self._own_gate_evaluations += _gates._EVALUATIONS - base
            self._sync_out()

    def run(self, until: float) -> None:
        """Run until simulated time ``until``.

        Events at exactly ``until`` are *not* processed (the interval is
        half-open), so rate rewards integrate exactly ``until`` time
        units from a zero start.
        """
        if until < self.clock.now:
            raise SimulationError(
                f"cannot run to t={until}: clock is already at {self.clock.now}"
            )
        self._sync_in()
        base = _gates._EVALUATIONS
        try:
            self._ensure_started()
            queue = self._queue
            while True:
                head = queue.peek()
                if head is None or head.time >= until:
                    break
                self._step()
            self._advance_rewards(until)
            self.clock.advance_to(until)
        finally:
            self._own_gate_evaluations += _gates._EVALUATIONS - base
            self._sync_out()

    def run_to_quiescence(self, max_events: int = 10_000_000) -> None:
        """Run until no timed activity is pending (absorbing marking)."""
        self._sync_in()
        base = _gates._EVALUATIONS
        try:
            self._ensure_started()
            for _ in range(max_events):
                if not self._step():
                    return
            raise SimulationError(
                f"no quiescence after {max_events} events at t={self.clock.now}"
            )
        finally:
            self._own_gate_evaluations += _gates._EVALUATIONS - base
            self._sync_out()
