"""The SAN discrete-event simulator (the Mobius simulation engine stand-in).

Execution policy, following Mobius's simulator over Sanders & Meyer
semantics:

1. **Settle instantaneous activities.**  While any instantaneous
   activity is enabled, complete the highest-priority one (ties broken
   by registration order) in zero simulated time.  A chain longer than
   ``max_instantaneous_chain`` aborts the run — it almost certainly
   means a model whose zero-time activities re-enable each other
   forever.
2. **(Re)schedule timed activities.**  Every enabled timed activity
   without a pending completion samples a delay from its own random
   stream and schedules a completion event.  Every pending activity
   that has become disabled is *aborted* (its event cancelled); if it
   re-enables later it samples a fresh delay.
3. **Advance.**  Pop the earliest event; first let every rate reward
   integrate over the elapsed interval (the state is stable between
   events by construction), advance the clock, then complete the
   activity (input-gate functions, case selection, output gates) and
   feed impulse rewards.  Repeat from step 1.

Determinism: for a fixed root seed and replication index, runs are
bit-for-bit reproducible — streams are keyed by activity qualified
name, the event queue breaks ties by insertion order, and instantaneous
settling follows a fixed priority order.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..des.clock import SimulationClock
from ..des.event_queue import Event, EventQueue
from ..des.random_streams import StreamFactory
from ..errors import SimulationError
from .activities import Activity, InstantaneousActivity, TimedActivity
from .model import ModelBase
from .reward import ImpulseReward, RateReward, RewardVariable


class SANSimulator:
    """Runs one replication of a SAN model.

    Example:
        >>> sim = SANSimulator(model, StreamFactory(root_seed=1, replication=0))
        >>> sim.add_reward(my_rate_reward)
        >>> sim.run(until=10_000)
        >>> my_rate_reward.time_average()  # doctest: +SKIP
    """

    def __init__(
        self,
        model: ModelBase,
        streams: Optional[StreamFactory] = None,
        max_instantaneous_chain: int = 100_000,
    ) -> None:
        self.model = model
        self.streams = streams if streams is not None else StreamFactory()
        self.clock = SimulationClock()
        self.max_instantaneous_chain = int(max_instantaneous_chain)

        activities = model.activities()
        self._timed: List[TimedActivity] = [
            a for a in activities if isinstance(a, TimedActivity)
        ]
        instantaneous = [a for a in activities if isinstance(a, InstantaneousActivity)]
        # Stable order: priority first, then registration order.
        self._instantaneous: List[InstantaneousActivity] = sorted(
            instantaneous, key=lambda a: a.priority
        )
        self._queue = EventQueue()
        self._pending: Dict[str, Event] = {}  # qualified name -> event
        self._rate_rewards: List[RateReward] = []
        self._impulse_rewards: List[ImpulseReward] = []
        self._completions = 0
        self._started = False

    # -- configuration ----------------------------------------------------

    def add_reward(self, reward: RewardVariable) -> RewardVariable:
        """Attach a reward variable; returns it for fluent use."""
        if isinstance(reward, RateReward):
            self._rate_rewards.append(reward)
        elif isinstance(reward, ImpulseReward):
            self._impulse_rewards.append(reward)
        else:
            raise SimulationError(
                f"unsupported reward type {type(reward).__name__} for {reward.name!r}"
            )
        return reward

    @property
    def completions(self) -> int:
        """Total activity completions so far (timed + instantaneous)."""
        return self._completions

    # -- lifecycle ----------------------------------------------------------

    def reset(self, streams: Optional[StreamFactory] = None) -> None:
        """Restore initial markings, clear events and rewards for a new run."""
        self.model.reset()
        self.clock.reset()
        self._queue.clear()
        self._pending.clear()
        self._completions = 0
        self._started = False
        if streams is not None:
            self.streams = streams
        for reward in self._rate_rewards:
            reward.reset()
        for reward in self._impulse_rewards:
            reward.reset()

    # -- core engine --------------------------------------------------------

    def _rng_for(self, activity: Activity):
        return self.streams.stream(activity.qualified_name)

    def _settle_instantaneous(self) -> None:
        """Complete enabled instantaneous activities until quiescence."""
        chain = 0
        while True:
            fired = False
            for activity in self._instantaneous:
                if activity.enabled():
                    activity.complete(self._rng_for(activity))
                    self._completions += 1
                    self._notify_impulse(activity)
                    fired = True
                    chain += 1
                    if chain > self.max_instantaneous_chain:
                        raise SimulationError(
                            f"instantaneous chain exceeded {self.max_instantaneous_chain} "
                            f"completions at t={self.clock.now}; last activity was "
                            f"{activity.qualified_name!r} — the model likely livelocks"
                        )
                    break  # restart the priority scan after any state change
            if not fired:
                return

    def _reschedule_timed(self) -> None:
        """Abort disabled pending activities; schedule newly enabled ones.

        Activities with ``reactivation=True`` additionally resample
        while they stay enabled, so marking-dependent rates track the
        marking (Mobius reactivation semantics).
        """
        for activity in self._timed:
            key = activity.qualified_name
            pending = self._pending.get(key)
            enabled = activity.enabled()
            if pending is not None and not enabled:
                self._queue.cancel(pending)
                del self._pending[key]
            elif pending is not None and activity.reactivation:
                self._queue.cancel(pending)
                delay = activity.sample_delay(self._rng_for(activity))
                self._pending[key] = self._queue.schedule(
                    self.clock.now + delay, activity
                )
            elif pending is None and enabled:
                delay = activity.sample_delay(self._rng_for(activity))
                event = self._queue.schedule(self.clock.now + delay, activity)
                self._pending[key] = event

    def _advance_rewards(self, until: float) -> None:
        now = self.clock.now
        if until > now:
            for reward in self._rate_rewards:
                reward.observe(now, until)

    def _notify_impulse(self, activity: Activity) -> None:
        if self._impulse_rewards:
            now = self.clock.now
            for reward in self._impulse_rewards:
                reward.on_completion(activity.qualified_name, now)

    def _ensure_started(self) -> None:
        if not self._started:
            self._settle_instantaneous()
            self._reschedule_timed()
            self._started = True

    def step(self) -> bool:
        """Process the next timed completion.

        Returns:
            True if an event was processed; False if no event is pending
            (the simulation is quiescent).
        """
        self._ensure_started()
        head = self._queue.peek()
        if head is None:
            return False
        event = self._queue.pop()
        activity: TimedActivity = event.payload
        del self._pending[activity.qualified_name]
        self._advance_rewards(event.time)
        self.clock.advance_to(event.time)
        activity.complete(self._rng_for(activity))
        self._completions += 1
        self._notify_impulse(activity)
        self._settle_instantaneous()
        self._reschedule_timed()
        return True

    def run(self, until: float) -> None:
        """Run until simulated time ``until``.

        Events at exactly ``until`` are *not* processed (the interval is
        half-open), so rate rewards integrate exactly ``until`` time
        units from a zero start.
        """
        if until < self.clock.now:
            raise SimulationError(
                f"cannot run to t={until}: clock is already at {self.clock.now}"
            )
        self._ensure_started()
        while True:
            next_time = self._queue.next_time()
            if next_time is None or next_time >= until:
                break
            self.step()
        self._advance_rewards(until)
        self.clock.advance_to(until)

    def run_to_quiescence(self, max_events: int = 10_000_000) -> None:
        """Run until no timed activity is pending (absorbing marking)."""
        self._ensure_started()
        for _ in range(max_events):
            if not self.step():
                return
        raise SimulationError(
            f"no quiescence after {max_events} events at t={self.clock.now}"
        )
