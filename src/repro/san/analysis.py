"""Structural analysis of SAN models: reachability and deadlock detection.

The CTMC solver needs exponential delays to assign *rates*; pure
reachability does not — which timed activity fires merely selects a
successor marking.  :class:`ReachabilityAnalyzer` explores the settled
state space of **any** SAN (bounded by ``max_states``) and answers:

* how many settled markings are reachable;
* which of them are *deadlocks* (no timed activity enabled — the
  simulation would quiesce there);
* whether a user predicate is invariant over all reachable markings.

Useful both as a model-debugging tool (the paper's §V mentions wanting
to debug correctness problems) and in tests: the virtualization model
must never deadlock, and its structural invariants must hold in every
reachable state, not just the simulated trajectory.

Cases on timed activities are followed per-branch (probabilities are
ignored — reachability is qualitative); instantaneous activities must
be single-case, as in the CTMC solver.

**Caveat for gate code with external state.**  Exploration only
snapshots/restores *places*.  Gate functions that close over Python
state outside the marking (e.g. a scheduling algorithm's run queue)
see an arbitrary exploration order of calls, so reachability through
such gates is an approximation — exact for stateless gate code,
and for the virtualization model best used with a trivial scheduler
or a single VCPU.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List

from ..errors import ModelError, SimulationError
from .activities import InstantaneousActivity, TimedActivity
from .ctmc import _NO_RNG, _freeze
from .model import ModelBase
from .places import Place


class ReachabilityAnalyzer:
    """Bounded exploration of a SAN's settled reachable markings.

    Args:
        model: the SAN to analyse.
        max_states: exploration bound (exceeded => :class:`ModelError`).
        ignore_place: optional predicate over qualified place names;
            matching places are *projected out* of the state identity
            (but still tracked in snapshots).  Needed for models with
            unbounded counters — e.g. the virtualization model's
            ``Timestamp`` and ``Num_Generated`` places grow forever, so
            without projection its reachable space is infinite even
            though the *behavioural* state is finite.
    """

    def __init__(
        self,
        model: ModelBase,
        max_states: int = 10_000,
        ignore_place: Callable[[str], bool] = None,
    ) -> None:
        self.model = model
        self.max_states = int(max_states)
        self._ignore = ignore_place if ignore_place is not None else (lambda name: False)
        self._places = model.places()
        self._timed: List[TimedActivity] = []
        self._instantaneous: List[InstantaneousActivity] = []
        for activity in model.activities():
            if isinstance(activity, TimedActivity):
                self._timed.append(activity)
            elif isinstance(activity, InstantaneousActivity):
                if len(activity.cases) != 1:
                    raise ModelError(
                        "reachability analysis cannot handle probabilistic "
                        f"cases on instantaneous activity "
                        f"{activity.qualified_name!r}"
                    )
                self._instantaneous.append(activity)
        self._instantaneous.sort(key=lambda a: a.priority)
        self._snapshots: List[Dict[str, Any]] = []
        self._index: Dict[Hashable, int] = {}
        self._deadlocks: List[int] = []

    # -- plumbing shared with the CTMC solver --------------------------------

    def _snapshot(self) -> Dict[str, Any]:
        return {name: place.snapshot() for name, place in self._places.items()}

    def _key(self, snapshot: Dict[str, Any]) -> Any:
        return _freeze(
            {name: value for name, value in snapshot.items() if not self._ignore(name)}
        )

    def _restore(self, snapshot: Dict[str, Any]) -> None:
        import copy

        for name, place in self._places.items():
            value = snapshot[name]
            if isinstance(place, Place):
                place.tokens = value
            else:
                place.value = copy.deepcopy(value)

    def _settle(self) -> None:
        for _ in range(100_000):
            for activity in self._instantaneous:
                if activity.enabled():
                    activity.complete(_NO_RNG)
                    break
            else:
                return
        raise SimulationError("instantaneous settling did not converge")

    # -- exploration ------------------------------------------------------------

    def explore(self) -> int:
        """Enumerate settled reachable markings; returns the count."""
        self.model.reset()
        self._settle()
        initial = self._snapshot()
        self._index[self._key(initial)] = 0
        self._snapshots = [initial]
        frontier = [initial]

        while frontier:
            snapshot = frontier.pop()
            self._restore(snapshot)
            source = self._index[self._key(self._snapshot())]
            enabled = [a for a in self._timed if a.enabled()]
            if not enabled:
                self._deadlocks.append(source)
                continue
            for activity in enabled:
                for case in activity.cases:
                    self._restore(snapshot)
                    for gate in activity.input_gates:
                        gate.fire()
                    for gate in case.output_gates:
                        gate.fire()
                    self._settle()
                    key = self._key(self._snapshot())
                    if key not in self._index:
                        if len(self._index) >= self.max_states:
                            raise ModelError(
                                f"state space exceeds max_states={self.max_states}"
                            )
                        self._index[key] = len(self._index)
                        successor = self._snapshot()
                        self._snapshots.append(successor)
                        frontier.append(successor)
        self.model.reset()
        return len(self._index)

    @property
    def num_states(self) -> int:
        return len(self._index)

    def deadlocks(self) -> List[Dict[str, Any]]:
        """Snapshots of reachable markings with no enabled timed activity."""
        return [self._snapshots[i] for i in self._deadlocks]

    def has_deadlock(self) -> bool:
        """True if any reachable settled marking quiesces the model."""
        if not self._snapshots:
            raise ModelError("call explore() before has_deadlock()")
        return bool(self._deadlocks)

    def check_invariant(
        self, predicate: Callable[[], bool]
    ) -> List[Dict[str, Any]]:
        """Evaluate a marking predicate in every reachable state.

        ``predicate`` is a zero-argument closure over places (gate
        style).  Returns the snapshots that **violate** it (empty list
        == the predicate is invariant).
        """
        if not self._snapshots:
            raise ModelError("call explore() before check_invariant()")
        violations = []
        for snapshot in self._snapshots:
            self._restore(snapshot)
            if not predicate():
                violations.append(snapshot)
        self.model.reset()
        return violations
