"""Atomic SAN models.

An atomic model is a named bag of places and activities, mirroring one
Mobius "SAN editor" canvas — e.g. the paper's Figures 3–6 are each one
atomic model.  Composed models (:mod:`repro.san.composed`) assemble
atomic models with Join and Replicate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from ..errors import ModelError
from .activities import Activity, InstantaneousActivity, TimedActivity
from .gates import InputGate
from .places import ExtendedPlace, Marking, Place, PlaceLike


class ModelBase:
    """Interface shared by atomic and composed models."""

    name: str

    def places(self) -> Dict[str, PlaceLike]:
        """Mapping of qualified place name to place object."""
        raise NotImplementedError

    def activities(self) -> List[Activity]:
        """All activities, in deterministic registration order."""
        raise NotImplementedError

    def input_gates(self) -> List[InputGate]:
        """Every distinct input gate, in deterministic attachment order."""
        gates: List[InputGate] = []
        seen: set = set()
        for activity in self.activities():
            for gate in activity.input_gates:
                if id(gate) not in seen:
                    seen.add(id(gate))
                    gates.append(gate)
        return gates

    def gate_read_sets(self) -> Dict[str, List[str]]:
        """Declared read sets per input gate, as place names.

        Gates without a declaration report an empty list — their read
        sets are established by the simulator's first-evaluation
        observation instead (or never, for ``volatile`` gates).  Keyed
        by ``<activity qualified name>/<gate name>`` so shared gate
        names across sub-models stay distinguishable.
        """
        report: Dict[str, List[str]] = {}
        for activity in self.activities():
            for gate in activity.input_gates:
                key = f"{activity.qualified_name}/{gate.name}"
                report[key] = [place.name for place in gate.declared_reads]
        return report

    def place(self, path: str) -> PlaceLike:
        """Look up a place by qualified (dot-separated) name.

        Raises:
            ModelError: if no such place exists.
        """
        table = self.places()
        if path not in table:
            raise ModelError(
                f"model {self.name!r} has no place {path!r}; "
                f"known places: {sorted(table)[:20]}"
            )
        return table[path]

    def marking(self) -> Marking:
        """A read-only view of the whole model state."""
        return Marking(self.places())

    def reset(self) -> None:
        """Restore every place's initial marking (between replications)."""
        for place in self.places().values():
            place.reset()


class SANModel(ModelBase):
    """An atomic Stochastic Activity Network.

    Example:
        >>> from repro.san import SANModel, Place, InstantaneousActivity, InputGate, OutputGate
        >>> m = SANModel("demo")
        >>> src = m.add_place(Place("src", initial=1))
        >>> dst = m.add_place(Place("dst"))
        >>> move = InstantaneousActivity(
        ...     "move",
        ...     input_gates=[InputGate("has_token", lambda: src.tokens > 0, src.remove)],
        ...     output_gates=[OutputGate("deposit", dst.add)],
        ... )
        >>> _ = m.add_activity(move)
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ModelError("a model needs a non-empty name")
        if "." in name:
            raise ModelError(f"model name {name!r} must not contain '.' (reserved for qualification)")
        self.name = name
        self._places: Dict[str, PlaceLike] = {}
        self._activities: List[Activity] = []
        # Set by Join/Replicate so a model cannot be composed twice — its
        # activities' qualified names would otherwise be re-prefixed.
        self._composed_into: Optional[str] = None

    # -- construction -----------------------------------------------------

    def add_place(self, place: PlaceLike) -> PlaceLike:
        """Register a place; returns it for fluent use.

        Raises:
            ModelError: on a duplicate place name.
        """
        if place.name in self._places:
            raise ModelError(f"model {self.name!r}: duplicate place {place.name!r}")
        self._places[place.name] = place
        return place

    def add_places(self, places: Iterable[PlaceLike]) -> None:
        """Register several places at once."""
        for place in places:
            self.add_place(place)

    def add_activity(self, activity: Activity) -> Activity:
        """Register an activity; returns it for fluent use.

        The activity's qualified name becomes ``<model>.<activity>``, which
        is also its random-stream key.

        Raises:
            ModelError: on a duplicate activity name.
        """
        if any(a.name == activity.name for a in self._activities):
            raise ModelError(f"model {self.name!r}: duplicate activity {activity.name!r}")
        activity.qualified_name = f"{self.name}.{activity.name}"
        self._activities.append(activity)
        return activity

    # -- ModelBase --------------------------------------------------------

    def places(self) -> Dict[str, PlaceLike]:
        return dict(self._places)

    def activities(self) -> List[Activity]:
        return list(self._activities)

    # -- introspection ----------------------------------------------------

    def timed_activities(self) -> List[TimedActivity]:
        return [a for a in self._activities if isinstance(a, TimedActivity)]

    def instantaneous_activities(self) -> List[InstantaneousActivity]:
        return [a for a in self._activities if isinstance(a, InstantaneousActivity)]

    def __repr__(self) -> str:
        return (
            f"SANModel({self.name!r}, places={len(self._places)}, "
            f"activities={len(self._activities)})"
        )
