"""SAN activities: timed and instantaneous transitions.

An *activity* models a state transition.  Timed activities take a random
(or deterministic) delay to complete; instantaneous activities complete
in zero time the moment they become enabled.  An activity may have
*cases* — a discrete probability distribution over alternative outcomes,
each with its own set of output gates.

Execution policy (matching Mobius's default simulator semantics):

1. When an activity becomes enabled, its delay is sampled and a
   completion event is scheduled (timed) or it joins the zero-delay
   queue (instantaneous).
2. If any state change disables it before completion, the activity is
   *aborted* — the pending completion is cancelled, and a later
   re-enabling samples a fresh delay.
3. On completion: every input gate's input function runs, a case is
   selected by probability, then that case's output gates run in order.
"""

from __future__ import annotations

from random import Random
from typing import List, Optional, Sequence

from ..des.distributions import Distribution
from ..errors import ModelError
from .gates import InputGate, OutputGate


class Case:
    """One probabilistic outcome of an activity.

    Args:
        probability: selection weight; all of an activity's case
            probabilities must sum to 1 (within 1e-9).
        output_gates: gates fired (in order) when this case is chosen.
    """

    def __init__(self, probability: float, output_gates: Sequence[OutputGate]) -> None:
        if probability < 0:
            raise ModelError(f"case probability must be >= 0, got {probability}")
        self.probability = float(probability)
        self.output_gates = list(output_gates)

    def __repr__(self) -> str:
        gates = ", ".join(g.name for g in self.output_gates)
        return f"Case(p={self.probability}, gates=[{gates}])"


class Activity:
    """Common behaviour of timed and instantaneous activities.

    Not instantiated directly — use :class:`TimedActivity` or
    :class:`InstantaneousActivity`.
    """

    def __init__(
        self,
        name: str,
        input_gates: Optional[Sequence[InputGate]] = None,
        output_gates: Optional[Sequence[OutputGate]] = None,
        cases: Optional[Sequence[Case]] = None,
    ) -> None:
        if not name:
            raise ModelError("an activity needs a non-empty name")
        self.name = name
        self.input_gates: List[InputGate] = list(input_gates or [])
        if cases is not None and output_gates:
            raise ModelError(
                f"activity {name!r}: give either cases or output_gates, not both"
            )
        if cases is not None:
            total = sum(c.probability for c in cases)
            if abs(total - 1.0) > 1e-9:
                raise ModelError(
                    f"activity {name!r}: case probabilities sum to {total}, expected 1"
                )
            self.cases: List[Case] = list(cases)
        else:
            self.cases = [Case(1.0, list(output_gates or []))]
        # Qualified name, set when the activity is added to a model and
        # possibly re-qualified by Join/Replicate.  Used as the random
        # stream key so every activity draws from its own stream.
        self.qualified_name = name

    def add_input_gate(self, gate: InputGate) -> None:
        """Attach another input gate (used by model builders)."""
        self.input_gates.append(gate)

    def add_output_gate(self, gate: OutputGate, case: int = 0) -> None:
        """Attach another output gate to the given case, at the end."""
        self.cases[case].output_gates.append(gate)

    def is_volatile(self) -> bool:
        """True when any input gate opted out of read-set tracking.

        The incremental engine re-evaluates volatile activities after
        every completion instead of caching their enablement.
        """
        return any(gate.volatile for gate in self.input_gates)

    def declared_read_cells(self) -> list:
        """Union of storage cells declared by this activity's gates."""
        cells: list = []
        for gate in self.input_gates:
            for cell in gate.declared_read_cells():
                if cell not in cells:
                    cells.append(cell)
        return cells

    def enabled(self) -> bool:
        """True while every attached input gate's predicate holds.

        An activity with no input gates is never enabled — in SAN terms it
        has no enabling condition, and leaving it permanently enabled
        would spin the simulator.  (Mobius requires at least one input arc
        or gate for the same reason.)
        """
        if not self.input_gates:
            return False
        return all(gate.holds() for gate in self.input_gates)

    def select_case(self, rng: Random) -> Case:
        """Draw one case according to the case probabilities."""
        if len(self.cases) == 1:
            return self.cases[0]
        pick = rng.random()
        cumulative = 0.0
        for case in self.cases:
            cumulative += case.probability
            if pick < cumulative:
                return case
        return self.cases[-1]  # guard against floating-point shortfall

    def complete(self, rng: Random) -> Case:
        """Run the completion sequence; returns the chosen case.

        Order per SAN semantics: input-gate functions (attachment order),
        then case selection, then that case's output gates (attachment
        order).
        """
        for gate in self.input_gates:
            gate.fire()
        case = self.select_case(rng)
        for gate in case.output_gates:
            gate.fire()
        return case

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.qualified_name!r})"


class TimedActivity(Activity):
    """An activity whose completion takes a sampled delay.

    Args:
        distribution: delay distribution (any :class:`repro.des.Distribution`).
        reactivation: Mobius's reactivation semantics — when True, a
            *pending* completion is aborted and resampled after every
            other activity's completion, so the delay always reflects
            the current marking.  Required for correctness with
            :class:`~repro.des.MarkingDependentExponential` (a stale
            rate otherwise survives marking changes); statistically
            harmless for a plain exponential (memoryless), and wrong
            for non-memoryless distributions unless that reset is the
            intended semantics.
        Remaining args as for :class:`Activity`.
    """

    def __init__(
        self,
        name: str,
        distribution: Distribution,
        input_gates: Optional[Sequence[InputGate]] = None,
        output_gates: Optional[Sequence[OutputGate]] = None,
        cases: Optional[Sequence[Case]] = None,
        reactivation: bool = False,
    ) -> None:
        super().__init__(name, input_gates, output_gates, cases)
        if not isinstance(distribution, Distribution):
            raise ModelError(
                f"activity {name!r}: distribution must be a Distribution, "
                f"got {type(distribution).__name__}"
            )
        self.distribution = distribution
        self.reactivation = bool(reactivation)

    def sample_delay(self, rng: Random) -> float:
        """Sample the firing delay; must be >= 0."""
        delay = self.distribution.sample(rng)
        if delay < 0:
            raise ModelError(
                f"activity {self.qualified_name!r}: sampled a negative delay {delay}"
            )
        return delay


class InstantaneousActivity(Activity):
    """An activity that completes immediately upon enabling.

    Args:
        priority: among simultaneously enabled instantaneous activities,
            lower values complete first.  The virtualization model uses
            this to pin the per-tick ordering (process loads, then clear
            barriers, then generate/dispatch workloads, then schedule).
    """

    def __init__(
        self,
        name: str,
        priority: int = 0,
        input_gates: Optional[Sequence[InputGate]] = None,
        output_gates: Optional[Sequence[OutputGate]] = None,
        cases: Optional[Sequence[Case]] = None,
    ) -> None:
        super().__init__(name, input_gates, output_gates, cases)
        self.priority = int(priority)
