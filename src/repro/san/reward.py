"""Reward variables: how measurements are defined on a SAN.

Mobius (following Sanders & Meyer's performability framework [6]) defines
measurements as *reward variables*:

* a **rate reward** assigns a value to each state; accumulated over an
  interval of time it yields an integral, and divided by the interval
  length a time average.  The paper's three metrics — VCPU availability,
  PCPU utilization, VCPU utilization — are all time-averaged rate
  rewards over indicator functions of the marking.
* an **impulse reward** assigns a value to each completion of an
  activity; accumulated it yields counts or weighted counts (e.g. the
  number of workloads generated).

Both support a *warm-up* time before which nothing accumulates, for
discarding initial-transient bias.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import ModelError, StatisticsError
from . import exprs as _exprs


class RewardVariable:
    """Base class: a named measurement attached to a simulator."""

    def __init__(self, name: str, warmup: float = 0.0) -> None:
        if not name:
            raise ModelError("a reward variable needs a non-empty name")
        if warmup < 0:
            raise ModelError(f"reward {name!r}: warmup must be >= 0, got {warmup}")
        self.name = name
        self.warmup = float(warmup)

    def reset(self) -> None:
        """Clear accumulated state (between replications)."""
        raise NotImplementedError

    def result(self) -> float:
        """The reward's headline value at the end of a run."""
        raise NotImplementedError


class RateReward(RewardVariable):
    """Accumulates ``rate() * dt`` over simulated time.

    Args:
        name: reward name.
        rate: zero-argument callable returning the instantaneous rate in
            the current marking (closes over places, like gate code).
            Mutually exclusive with ``expr``.
        warmup: simulation time before which nothing accumulates.
        expr: declarative rate expression (:mod:`repro.san.exprs`),
            compiled to a specialized evaluator; additionally gives the
            batch engine a lane-vectorized accumulation kernel.

    The simulator calls :meth:`observe` once per time advance with the
    rate evaluated in the state that held over the interval.
    """

    def __init__(
        self,
        name: str,
        rate: Optional[Callable[[], float]] = None,
        warmup: float = 0.0,
        *,
        expr: Optional["_exprs.Expr"] = None,
    ) -> None:
        super().__init__(name, warmup)
        if expr is not None:
            if rate is not None:
                raise ModelError(
                    f"rate reward {name!r}: pass either rate or expr, not both"
                )
            rate = _exprs.compile_scalar_rate(expr)
        elif not callable(rate):
            raise ModelError(f"rate reward {name!r}: rate must be callable")
        self.expr = expr
        self.rate = rate
        self._integral = 0.0
        self._observed_time = 0.0

    def observe(self, start: float, end: float) -> None:
        """Accumulate over the interval [start, end) in the current state."""
        if end <= self.warmup or end <= start:
            return
        effective_start = max(start, self.warmup)
        dt = end - effective_start
        self._integral += self.rate() * dt
        self._observed_time += dt

    def observe_constant(self, start: float, steps: int) -> None:
        """Accumulate ``steps`` unit intervals over one frozen state.

        Bit-for-bit equivalent to ``steps`` successive
        ``observe(t, t + 1.0)`` calls — same per-interval warm-up
        clipping, same float accumulation order — except the rate
        function is evaluated at most once and its value reused.  The
        caller (the compiled engine's clock fast-forward) must
        guarantee that nothing the rate function reads changes over the
        span, so repeated evaluation would return the identical float.
        """
        value = None
        t = float(start)
        for _ in range(int(steps)):
            end = t + 1.0
            if end > self.warmup:
                if value is None:
                    value = self.rate()
                dt = end - (t if t > self.warmup else self.warmup)
                self._integral += value * dt
                self._observed_time += dt
            t = end

    @property
    def integral(self) -> float:
        """Total accumulated reward (the interval-of-time variable)."""
        return self._integral

    @property
    def observed_time(self) -> float:
        """Length of simulated time observed after warm-up."""
        return self._observed_time

    def time_average(self) -> float:
        """Integral divided by observed time (the paper's utilizations).

        Raises:
            StatisticsError: if no time has been observed.
        """
        if self._observed_time <= 0:
            raise StatisticsError(
                f"rate reward {self.name!r}: no time observed (warmup too long "
                "or the simulation never advanced)"
            )
        return self._integral / self._observed_time

    def result(self) -> float:
        return self.time_average()

    def reset(self) -> None:
        self._integral = 0.0
        self._observed_time = 0.0

    def __repr__(self) -> str:
        return f"RateReward({self.name!r}, integral={self._integral})"


class RatioRateReward(RateReward):
    """The time-average of one rate normalized by another.

    Accumulates two integrals over the same intervals and reports
    ``numerator_integral / denominator_integral``.  The paper's VCPU
    Utilization is this shape: BUSY time divided by ACTIVE (READY or
    BUSY) time — its reward variable "monitors the READY and BUSY
    states" precisely because both integrals are needed.

    ``result()`` returns 0.0 when the denominator never accumulated
    (e.g. a VCPU that was never scheduled at all, as happens to a
    2-VCPU VM under strict co-scheduling with one PCPU).
    """

    def __init__(
        self,
        name: str,
        numerator: Optional[Callable[[], float]] = None,
        denominator: Optional[Callable[[], float]] = None,
        warmup: float = 0.0,
        *,
        num_expr: Optional["_exprs.Expr"] = None,
        den_expr: Optional["_exprs.Expr"] = None,
    ) -> None:
        super().__init__(name, numerator, warmup, expr=num_expr)
        if den_expr is not None:
            if denominator is not None:
                raise ModelError(
                    f"ratio reward {name!r}: pass either denominator or "
                    "den_expr, not both"
                )
            denominator = _exprs.compile_scalar_rate(den_expr)
        elif not callable(denominator):
            raise ModelError(f"ratio reward {name!r}: denominator must be callable")
        self.den_expr = den_expr
        self.denominator = denominator
        self._denominator_integral = 0.0

    def observe(self, start: float, end: float) -> None:
        if end <= self.warmup or end <= start:
            return
        effective_start = max(start, self.warmup)
        dt = end - effective_start
        self._integral += self.rate() * dt
        self._denominator_integral += self.denominator() * dt
        self._observed_time += dt

    def observe_constant(self, start: float, steps: int) -> None:
        """Unit-interval batch accumulation for both integrals.

        Mirrors :meth:`RateReward.observe_constant` with the numerator
        and denominator each evaluated at most once over the span.
        """
        num = den = None
        t = float(start)
        for _ in range(int(steps)):
            end = t + 1.0
            if end > self.warmup:
                if num is None:
                    num = self.rate()
                    den = self.denominator()
                dt = end - (t if t > self.warmup else self.warmup)
                self._integral += num * dt
                self._denominator_integral += den * dt
                self._observed_time += dt
            t = end

    @property
    def denominator_integral(self) -> float:
        """Accumulated denominator time (e.g. total ACTIVE time)."""
        return self._denominator_integral

    def ratio(self) -> float:
        """Numerator integral over denominator integral (0 if empty)."""
        if self._denominator_integral <= 0:
            return 0.0
        return self._integral / self._denominator_integral

    def time_average(self) -> float:
        """Not meaningful for a ratio reward — use :meth:`ratio`.

        The inherited implementation would silently divide the numerator
        integral by *observed time* instead of by the denominator
        integral, reporting a value that looks plausible but measures
        the wrong thing (e.g. BUSY/elapsed instead of BUSY/ACTIVE).

        Raises:
            StatisticsError: always.
        """
        raise StatisticsError(
            f"ratio reward {self.name!r}: time_average() is undefined for a "
            "ratio of two integrals; call ratio() (or result()) instead"
        )

    def result(self) -> float:
        return self.ratio()

    def reset(self) -> None:
        super().reset()
        self._denominator_integral = 0.0

    def __repr__(self) -> str:
        return (
            f"RatioRateReward({self.name!r}, num={self._integral}, "
            f"den={self._denominator_integral})"
        )


class ImpulseReward(RewardVariable):
    """Accumulates a value on each completion of matching activities.

    Args:
        name: reward name.
        activity: qualified-name match.  Either an exact string, or a
            predicate over the qualified name (e.g. ``lambda q:
            q.endswith(".WL_gen")`` to count every VM's generations).
        value: callable returning the impulse per completion (default 1).
        warmup: completions before this time are ignored.
    """

    def __init__(
        self,
        name: str,
        activity,
        value: Optional[Callable[[], float]] = None,
        warmup: float = 0.0,
    ) -> None:
        super().__init__(name, warmup)
        if isinstance(activity, str):
            self._matches = lambda qualified, target=activity: qualified == target
        elif callable(activity):
            self._matches = activity
        else:
            raise ModelError(
                f"impulse reward {name!r}: activity must be a name or predicate"
            )
        self._value = value if value is not None else (lambda: 1.0)
        self._total = 0.0
        self._count = 0

    def on_completion(self, qualified_name: str, time: float) -> None:
        """Called by the simulator after each activity completion."""
        if time < self.warmup:
            return
        if self._matches(qualified_name):
            self._total += self._value()
            self._count += 1

    @property
    def total(self) -> float:
        """Sum of impulses."""
        return self._total

    @property
    def count(self) -> int:
        """Number of matched completions."""
        return self._count

    def result(self) -> float:
        return self._total

    def reset(self) -> None:
        self._total = 0.0
        self._count = 0

    def __repr__(self) -> str:
        return f"ImpulseReward({self.name!r}, total={self._total}, count={self._count})"
