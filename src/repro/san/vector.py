"""Replication-vectorized batch execution over IR gate/reward kernels.

The PR 7 batch engine interleaves R compiled lanes through one shared
calendar, but each lane still steps in pure Python — gate predicates
and reward rates are opaque closures, so the per-lane work is
irreducible and the structure-of-arrays state buys nothing (BENCH_pr7
measured ~1x).  This module is where the expression IR
(:mod:`repro.san.exprs`) cashes that in: when every gate and reward of
every lane carries a *vectorizable* IR form, the whole batch runs off
one ``(R, n_places)`` int64 token matrix, and each Python-level step
advances **all R lanes at once**:

* one fused numpy predicate pass evaluates a gate conjunction for every
  lane (``en[k] = pred_k(M)`` — a handful of ufunc calls instead of R
  interpreted closure evaluations);
* effects apply lane-masked (``M[rows, col] += n``), with the same
  negative-marking guard the scalar ``Place.remove`` enforces;
* rate rewards accumulate per lane with one vector multiply-add per
  event round, replicating the serial float operation order exactly.

Eligibility is decided per batch by :func:`plan_lanes`; anything it
cannot prove vectorizable — a closure gate, an extended-place read,
an impulse reward, a multi-case activity, reactivation sampling, an
active tracer/profiler — falls back to the wave-interleaved driver in
:mod:`repro.san.compiled`, which handles the fully general model.  The
VMM scheduler models always take the fallback (their scheduling
function is irreducibly procedural Python); the IR-covered reference
models in :mod:`repro.san.refmodels` take the vector path.

Bit-identity: the vector loop replays the serial engine's decision
procedure exactly — events in per-lane (time, sequence) order,
instantaneous settling as repeated find-first-enabled-then-restart
passes with predicates evaluated before any same-pass effect, timed
rescheduling in registration order with per-activity per-lane RNG
draws, and reward accumulation in per-lane event order with the same
IEEE operations.  The differential suite holds it to exact ``==``
against all serial engines.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy

from ..des.distributions import Deterministic
from ..errors import SimulationError
from ..observability import profile as _profile
from ..observability import trace as _trace
from . import exprs as _exprs
from . import gates as _gates
from .activities import InstantaneousActivity, TimedActivity
from .places import Place
from .reward import RateReward, RatioRateReward

#: Sequence sentinel larger than any real event sequence number.
_BIG_SEQ = numpy.iinfo(numpy.int64).max


class _VectorPlan:
    """Compiled kernels + static dependency structure for one model shape."""

    __slots__ = (
        "names",            # canonical place names, one per storage cell
        "n_inst",           # instantaneous activity count (settle order)
        "acts",             # lane-0 activity objects, inst first
        "preds",            # per-activity vector predicate or None
        "consts",           # per-activity constant verdict or None
        "effects",          # per-activity vector effect kernel
        "costs",            # per-activity gate count (eval accounting)
        "deps_after_fire",  # per-activity sorted dependent-row indices
        "units",            # (a, b, family pred, family fx) row partitions
        "unit_of_row",      # activity row -> index into units
        "delay_consts",     # per-timed-activity fixed delay or None
        "timed_keys",       # per-timed-activity qualified names
        "rate_fns",         # per-reward vector rate kernels
        "den_fns",          # per-reward denominator kernels or None
        "warmups",          # per-reward warmup times
        "tick_index",       # timed row index of the FF clock, or -1
        "signature",        # structural identity string (lane validation)
    )


def _canonical_cells(lane) -> Tuple[List[str], List[Any]]:
    """Name-sorted token places, one canonical name per storage cell."""
    names: List[str] = []
    cells: List[Any] = []
    seen: Dict[int, bool] = {}
    for name, place in sorted(lane.model.places().items()):
        if not isinstance(place, Place):
            continue
        key = id(place._cell)
        if key in seen:
            continue
        seen[key] = True
        names.append(name)
        cells.append(place._cell)
    return names, cells


def _lane_cells(lane, names: Sequence[str]) -> Optional[List[Any]]:
    """This lane's storage cells for the shared canonical name order."""
    table = lane.model.places()
    cells = []
    for name in names:
        place = table.get(name)
        if place is None or not isinstance(place, Place):
            return None
        cells.append(place._cell)
    if len({id(c) for c in cells}) != len(cells):
        return None  # join structure differs from lane 0's
    return cells


def _activity_rows(lane) -> List[Any]:
    return list(lane._instantaneous) + list(lane._timed)


def _vector_form(activity) -> Optional[Tuple[Any, Tuple[Any, ...], str]]:
    """(conjunction, combined effects, signature) or None if not IR."""
    gates = activity.input_gates
    if not gates:
        return None
    exprs = []
    combined: List[Any] = []
    sig_parts = [activity.qualified_name, type(activity).__name__]
    for gate in gates:
        expr = gate.expr
        if expr is None or not _exprs.vectorizable(expr):
            return None
        if gate.effect is not None:
            if not _exprs.vectorizable_effects(gate.effect):
                return None
            combined.extend(gate.effect)
            sig_parts.append(_exprs.effects_signature(gate.effect))
        elif gate._function is not _gates._noop:
            return None
        exprs.append(expr)
        sig_parts.append(_exprs.signature(expr))
    if len(activity.cases) != 1:
        return None
    case = activity.cases[0]
    for og in case.output_gates:
        if og.effect is None or not _exprs.vectorizable_effects(og.effect):
            return None
        combined.extend(og.effect)
        sig_parts.append(_exprs.effects_signature(og.effect))
    if isinstance(activity, TimedActivity):
        if activity.reactivation:
            return None
        sig_parts.append(type(activity.distribution).__name__)
    return _exprs.conjunction(exprs), tuple(combined), "|".join(sig_parts)


def _reward_form(reward) -> Optional[Tuple[Any, Optional[Any], str]]:
    """(rate expr, denominator expr or None, signature) or None."""
    if not isinstance(reward, RateReward):
        return None
    expr = reward.expr
    if expr is None or not _exprs.vectorizable(expr):
        return None
    sig = f"{reward.name}@{reward.warmup}:{_exprs.signature(expr)}"
    if isinstance(reward, RatioRateReward):
        den = reward.den_expr
        if den is None or not _exprs.vectorizable(den):
            return None
        return expr, den, sig + "/" + _exprs.signature(den)
    return expr, None, sig


def _lane_signature(lane, names: Sequence[str]) -> Optional[str]:
    """Structural identity of a lane's model, or None if not vectorizable."""
    parts: List[str] = [",".join(names)]
    for activity in _activity_rows(lane):
        if not activity.input_gates:
            # Never enabled (the Activity contract); identity only.
            parts.append(f"inert:{activity.qualified_name}")
            continue
        form = _vector_form(activity)
        if form is None:
            return None
        parts.append(form[2])
    for reward in lane._rate_rewards:
        form = _reward_form(reward)
        if form is None:
            return None
        parts.append(form[2])
    return "\n".join(parts)


def plan_lanes(lanes: Sequence[Any]) -> Optional[_VectorPlan]:
    """Build the vector plan when every lane is fully IR, else None.

    Cheap structural screening runs first (any closure gate bails out
    before any kernel compiles), and the result is cached on lane 0's
    model object — replications of one spec share a model *shape*, so
    repeated batch runs pay compilation once.
    """
    if _trace._ACTIVE is not None or _profile._ACTIVE is not None:
        return None
    lane0 = lanes[0]
    for lane in lanes:
        if lane._impulse_rewards:
            return None
    names, cells0 = _canonical_cells(lane0)
    signature = _lane_signature(lane0, names)
    if signature is None:
        return None
    for lane in lanes[1:]:
        if _lane_signature(lane, names) != signature:
            return None
        if _lane_cells(lane, names) is None:
            return None
    cached = getattr(lane0.model, "_vector_plan_cache", None)
    if cached is not None and cached.signature == signature:
        return cached

    colmap = {id(cell): col for col, cell in enumerate(cells0)}
    plan = _VectorPlan()
    plan.names = names
    plan.signature = signature
    plan.n_inst = len(lane0._instantaneous)
    plan.acts = _activity_rows(lane0)
    n_act = len(plan.acts)
    plan.preds = [None] * n_act
    plan.consts: List[Optional[bool]] = [None] * n_act
    plan.effects = [None] * n_act
    plan.costs = [0] * n_act

    read_cols: List[set] = [set() for _ in range(n_act)]
    write_cols: List[set] = [set() for _ in range(n_act)]
    forms: List[Optional[Tuple[Any, Tuple[Any, ...]]]] = [None] * n_act
    for index, activity in enumerate(plan.acts):
        if not activity.input_gates:
            plan.consts[index] = False  # inert: never enabled
            continue
        conjunction, combined, _sig = _vector_form(activity)
        forms[index] = (conjunction, combined)
        plan.costs[index] = len(activity.input_gates)
        verdict = _exprs.constant_verdict(conjunction)
        if isinstance(conjunction, _exprs.And):
            verdicts = [_exprs.constant_verdict(p) for p in conjunction.parts]
            if all(v is not None for v in verdicts):
                verdict = all(verdicts)
        if verdict is not None:
            plan.consts[index] = verdict
        else:
            plan.preds[index] = _exprs.compile_vector_predicate(
                conjunction, colmap
            )
            for place in _exprs.expr_places(conjunction):
                read_cols[index].add(colmap[id(place._cell)])
        plan.effects[index] = _exprs.compile_vector_effects(combined, colmap)
        for place in _exprs.effect_write_places(combined):
            write_cols[index].add(colmap[id(place._cell)])

    # col -> dependent activity rows, folded into a per-firing stale set.
    col_deps: Dict[int, set] = {}
    for index in range(n_act):
        for col in read_cols[index]:
            col_deps.setdefault(col, set()).add(index)
    plan.deps_after_fire = []
    for index in range(n_act):
        stale: set = set()
        for col in write_cols[index]:
            stale |= col_deps.get(col, set())
        plan.deps_after_fire.append(numpy.array(sorted(stale), dtype=numpy.int64))

    # Partition the rows into kernel families: maximal runs of
    # consecutive activities of one kind whose gate and effect *shapes*
    # match (same operators and constants, member-specific columns).
    # Replicated fragments registered contiguously — Finish_0..Finish_G,
    # Quantum_0..Quantum_G — collapse into one family each, so a settle
    # pass or fire round costs a fixed number of numpy calls per family
    # instead of per activity.
    shape_keys: List[Optional[Tuple[bool, str, str]]] = []
    for index in range(n_act):
        if plan.consts[index] is not None:
            shape_keys.append(None)  # const/inert rows stay singletons
            continue
        conjunction, combined = forms[index]
        shape_keys.append((
            index < plan.n_inst,
            _exprs.shape_signature(conjunction),
            _exprs.effects_shape_signature(combined),
        ))
    plan.units = []
    plan.unit_of_row = [0] * n_act
    start = 0
    while start < n_act:
        end = start + 1
        key = shape_keys[start]
        if key is not None:
            while end < n_act and shape_keys[end] == key:
                end += 1
        if end - start >= 2:
            members = range(start, end)
            unit = (
                start,
                end,
                _exprs.compile_family_predicate(
                    forms[start][0],
                    [_exprs.expr_leaf_cols(forms[k][0], colmap) for k in members],
                ),
                _exprs.compile_family_effects(
                    forms[start][1],
                    [_exprs.effect_leaf_cols(forms[k][1], colmap) for k in members],
                    [[item.place.name for item in forms[k][1]] for k in members],
                ),
            )
        else:
            end = start + 1
            unit = (start, end, None, None)
        for k in range(start, end):
            plan.unit_of_row[k] = len(plan.units)
        plan.units.append(unit)
        start = end

    plan.delay_consts = [
        float(a.distribution.value)
        if isinstance(a.distribution, Deterministic)
        else None
        for a in lane0._timed
    ]
    plan.timed_keys = [a.qualified_name for a in lane0._timed]
    plan.rate_fns = []
    plan.den_fns = []
    plan.warmups = []
    for reward in lane0._rate_rewards:
        expr, den, _sig = _reward_form(reward)
        plan.rate_fns.append(_exprs.compile_vector_rate(expr, colmap))
        plan.den_fns.append(
            _exprs.compile_vector_rate(den, colmap) if den is not None else None
        )
        plan.warmups.append(reward.warmup)
    tick = lane0._tick_activity
    plan.tick_index = (
        lane0._timed.index(tick) if tick is not None and tick in lane0._timed else -1
    )
    try:
        lane0.model._vector_plan_cache = plan
    except AttributeError:
        pass  # models with __slots__ simply skip the cache
    return plan


def run_vectorized(
    plan: _VectorPlan, lanes: Sequence[Any], until: float
) -> Dict[str, int]:
    """Advance every lane to ``until`` through the shared token matrix."""
    R = len(lanes)
    n_act = len(plan.acts)
    n_inst = plan.n_inst
    n_timed = n_act - n_inst
    rounds = 0
    lane_steps = 0
    begun: List[Any] = []
    try:
        for lane in lanes:
            lane._begin_lane_run(until)
            begun.append(lane)

        # -- gather ----------------------------------------------------------
        lane_cells = [_lane_cells(lane, plan.names) for lane in lanes]
        M = numpy.empty((R, len(plan.names)), dtype=numpy.int64)
        for r, cells in enumerate(lane_cells):
            row = M[r]
            for col, cell in enumerate(cells):
                row[col] = cell.tokens
        now = numpy.array([lane.clock.now for lane in lanes], dtype=numpy.float64)
        pending_time = numpy.full((n_timed, R), math.inf, dtype=numpy.float64)
        pending_seq = numpy.full((n_timed, R), _BIG_SEQ, dtype=numpy.int64)
        next_seq = numpy.array(
            [lane._queue._sequence for lane in lanes], dtype=numpy.int64
        )
        lane_timed = [lane._timed for lane in lanes]
        lane_rngs = [
            [lane._rngs[activity] for activity in lane._timed] for lane in lanes
        ]
        for r, lane in enumerate(lanes):
            pending = lane._pending
            for j, key in enumerate(plan.timed_keys):
                event = pending.get(key)
                if event is not None:
                    pending_time[j, r] = event.time
                    pending_seq[j, r] = event.sequence

        # Per-lane accumulators mirrored back into the lane objects at exit.
        completions = numpy.zeros(R, dtype=numpy.int64)
        ticks = numpy.zeros(R, dtype=numpy.int64)
        # Gate-evaluation accounting is uniform across lanes (a refresh
        # evaluates a row for every lane at once), so a scalar suffices.
        evals_all = 0
        n_rewards = len(plan.rate_fns)
        integral = numpy.empty((n_rewards, R), dtype=numpy.float64)
        den_integral = numpy.empty((n_rewards, R), dtype=numpy.float64)
        observed = numpy.empty((n_rewards, R), dtype=numpy.float64)
        warmup = numpy.array(plan.warmups, dtype=numpy.float64)
        for r, lane in enumerate(lanes):
            for k, reward in enumerate(lane._rate_rewards):
                integral[k, r] = reward._integral
                observed[k, r] = reward._observed_time
                den_integral[k, r] = (
                    reward._denominator_integral
                    if isinstance(reward, RatioRateReward)
                    else 0.0
                )

        # Row-level enablement cache: en[k] is trusted while stale[k] is
        # clear; a constant row is pinned at plan time and never refreshed.
        # Staleness lives in plain Python lists — the refresh scan touches
        # every row once per settle pass, and list indexing is an order of
        # magnitude cheaper than numpy scalar access at these widths.
        en = numpy.zeros((n_act, R), dtype=bool)
        stale = [True] * n_act
        for index, const in enumerate(plan.consts):
            if const is not None:
                en[index, :] = const
                stale[index] = False
        preds = plan.preds
        costs = plan.costs
        effects = plan.effects
        deps_lists = [[int(d) for d in deps] for deps in plan.deps_after_fire]
        rate_fns = plan.rate_fns
        den_fns = plan.den_fns
        units = plan.units
        unit_of_row = plan.unit_of_row
        units_inst = [u for u in units if u[1] <= n_inst]
        units_timed = [u for u in units if u[0] >= n_inst]
        #: Fixed delay per timed row, NaN marking sampled distributions.
        delay_consts = numpy.array(
            [math.nan if d is None else d for d in plan.delay_consts],
            dtype=numpy.float64,
        )

        def refresh(subset) -> None:
            nonlocal evals_all
            for a, b, fam, _fx in subset:
                if fam is None:
                    if stale[a]:
                        stale[a] = False
                        pred = preds[a]
                        if pred is not None:
                            en[a] = pred(M)
                            # Every lane pays the row's gate count,
                            # matching the serial engines' accounting.
                            evals_all += costs[a]
                else:
                    # One kernel refreshes the whole family; members
                    # whose verdict was already trusted recompute the
                    # same value, and only stale members are charged —
                    # exactly the rows the lazy path would have paid.
                    cost = 0
                    for k in range(a, b):
                        if stale[k]:
                            cost += costs[k]
                            stale[k] = False
                    if cost:
                        en[a:b] = fam(M).T
                        evals_all += cost

        # Rewards sharing a warmup share one dt vector per round.
        by_warmup: Dict[float, List[int]] = {}
        for k in range(n_rewards):
            by_warmup.setdefault(float(warmup[k]), []).append(k)
        warm_groups = sorted(by_warmup.items())

        def advance_rewards(rows, end_r) -> None:
            """Accumulate [now, end) per lane over the pre-event state.

            Full-width arithmetic with a zeroed dt on masked lanes: adding
            ``rate * 0.0`` is the identity on these monotone non-negative
            accumulators, and it avoids the boolean fancy-indexing that
            dominated the first cut of this loop.
            """
            if not n_rewards:
                return
            valid = rows & (end_r > now)
            for w, ks in warm_groups:
                if w <= 0.0:
                    # valid implies end > now >= 0 >= w: no extra mask.
                    cond = valid
                    dtw = numpy.where(cond, end_r - now, 0.0)
                else:
                    cond = valid & (end_r > w)
                    dtw = numpy.where(
                        cond, end_r - numpy.maximum(now, w), 0.0
                    )
                for k in ks:
                    integral[k] += rate_fns[k](M) * dtw
                    den = den_fns[k]
                    if den is not None:
                        den_integral[k] += den(M) * dtw
                    observed[k] += dtw

        max_chain = min(lane.max_instantaneous_chain for lane in lanes)
        en_inst = en[:n_inst]
        en_timed = en[n_inst:]
        #: Index meaning "every lane" — basic slicing beats fancy indexing
        #: for the common all-lanes-fire-together rounds (aligned clocks).
        _ALL = slice(None)

        unit_row = numpy.array(unit_of_row, dtype=numpy.intp)

        def apply_fires(lane_idx, ks) -> None:
            """Apply effects for fired (lane, activity-row) pairs.

            Pairs group by kernel family: one fused scatter per family
            per effect item, instead of one masked apply per distinct
            activity.  Within an item the (row, column) pairs never
            alias — each lane fires at most one activity here — so the
            scatter order matches the serial item-by-item applies (and
            makes the cross-family apply order immaterial: different
            pairs touch different lane rows).
            """
            us = unit_row[ks]
            order = numpy.argsort(us, kind="stable")
            sorted_ks = ks[order]
            sorted_rs = lane_idx[order]
            sorted_us = us[order]
            cuts = numpy.flatnonzero(sorted_us[1:] != sorted_us[:-1]) + 1
            bounds = [0, *cuts.tolist(), int(sorted_us.size)]
            for i in range(len(bounds) - 1):
                lo, hi = bounds[i], bounds[i + 1]
                seg_k = sorted_ks[lo:hi]
                a, _b, _fam, fx = units[int(sorted_us[lo])]
                if fx is None:
                    k = int(seg_k[0])
                    effects[k](
                        M, _ALL if hi - lo == R else sorted_rs[lo:hi]
                    )
                    for d in deps_lists[k]:
                        stale[d] = True
                else:
                    fx(M, sorted_rs[lo:hi], seg_k - a)
                    for k in set(seg_k.tolist()):
                        for d in deps_lists[k]:
                            stale[d] = True

        # -- main loop: one head event per active lane per round -------------
        while True:
            heads = pending_time.min(axis=0) if n_timed else numpy.full(R, math.inf)
            active = heads < until
            act_idx = numpy.flatnonzero(active)
            if act_idx.size == 0:
                break
            rounds += 1
            lane_steps += act_idx.size
            # Fire selection: per lane, the pending event with minimal
            # (time, sequence) — the event-queue tie-break, lane-local.
            seqs = numpy.where(pending_time == heads, pending_seq, _BIG_SEQ)
            j_star = seqs.argmin(axis=0)
            # Rewards integrate over [now, head) in the pre-event state,
            # then the clock advances — exactly the serial _step order.
            advance_rewards(active, heads)
            now = numpy.where(active, heads, now)
            fired_j = j_star[act_idx]
            pending_time[fired_j, act_idx] = math.inf
            pending_seq[fired_j, act_idx] = _BIG_SEQ
            if act_idx.size == R:
                completions += 1
            else:
                completions[act_idx] += 1
            if plan.tick_index >= 0:
                tick_rows = act_idx[fired_j == plan.tick_index]
                if tick_rows.size:
                    ticks[tick_rows] += 1
            apply_fires(act_idx, fired_j + n_inst)

            # Settle: repeated find-first-enabled passes.  All predicate
            # evaluation for a pass happens before any of its effects
            # (each lane fires exactly one activity per pass), exactly
            # like the serial scan-restart loop.
            seeking = active.copy()
            chain = 0
            while n_inst:
                refresh(units_inst)
                sub = en_inst & seeking
                seeking &= sub.any(axis=0)
                seek_idx = numpy.flatnonzero(seeking)
                if seek_idx.size == 0:
                    break
                chain += 1
                if chain > max_chain:
                    raise SimulationError(
                        f"instantaneous chain exceeded {max_chain} "
                        f"completions in the vectorized batch at "
                        f"t={float(now[seeking].max())} — the model likely "
                        "livelocks"
                    )
                first = sub.argmax(axis=0)
                if seek_idx.size == R:
                    completions += 1
                else:
                    completions[seek_idx] += 1
                apply_fires(seek_idx, first[seek_idx])

            # Reschedule timed activities in registration order: cancel
            # newly disabled pending events, sample newly enabled ones
            # from each lane's own per-activity stream.  Both masks come
            # from the same pre-cancel pending snapshot, and j-major
            # nonzero order reproduces the serial per-lane registration
            # order for sequence assignment.
            refresh(units_timed)
            pend = pending_time != math.inf
            cancel = numpy.nonzero((pend & ~en_timed) & active)
            if cancel[0].size:
                pending_time[cancel] = math.inf
                pending_seq[cancel] = _BIG_SEQ
            sched_j, sched_r = numpy.nonzero((en_timed & ~pend) & active)
            n_sched = sched_j.size
            if n_sched:
                # Sequence numbers: nonzero yields pairs j-major, i.e.
                # per lane in registration order, so each lane's new
                # events take consecutive numbers from its own counter
                # — the serial assignment, computed as a grouped rank.
                order = numpy.argsort(sched_r, kind="stable")
                sr = sched_r[order]
                positions = numpy.arange(n_sched)
                group_start = numpy.empty(n_sched, dtype=numpy.int64)
                group_start[0] = 0
                group_start[1:] = numpy.where(sr[1:] != sr[:-1], positions[1:], 0)
                numpy.maximum.accumulate(group_start, out=group_start)
                ranks = numpy.empty(n_sched, dtype=numpy.int64)
                ranks[order] = positions - group_start
                pending_seq[sched_j, sched_r] = next_seq[sched_r] + ranks
                next_seq += numpy.bincount(sched_r, minlength=R)
                # Deterministic delays come straight from the plan (the
                # distribution never touches the RNG stream); only the
                # sampled rows run Python.  Streams are per-activity
                # per-lane, so sampling order across pairs is free.
                delays = delay_consts[sched_j]
                sampled = numpy.flatnonzero(numpy.isnan(delays))
                if sampled.size:
                    for i in sampled.tolist():
                        j = int(sched_j[i])
                        r = int(sched_r[i])
                        delays[i] = lane_timed[r][j].sample_delay(
                            lane_rngs[r][j]
                        )
                pending_time[sched_j, sched_r] = now[sched_r] + delays

        # -- horizon: final reward stretch, then scatter back ----------------
        advance_rewards(
            numpy.ones(R, dtype=bool), numpy.full(R, float(until))
        )

        for r, lane in enumerate(lanes):
            cells = lane_cells[r]
            row = M[r]
            table = lane.model.places()
            for col, name in enumerate(plan.names):
                value = int(row[col])
                if cells[col].tokens != value:
                    table[name].tokens = value
            for k, reward in enumerate(lane._rate_rewards):
                reward._integral = float(integral[k, r])
                reward._observed_time = float(observed[k, r])
                if isinstance(reward, RatioRateReward):
                    reward._denominator_integral = float(den_integral[k, r])
            lane._completions += int(completions[r])
            lane.ticks_fired += int(ticks[r])
            lane._own_gate_evaluations += evals_all
            _gates.count_evaluations(evals_all)
            # Rebuild the real event wheel: surviving pending events in
            # virtual-sequence order, so any later serial continuation
            # sees the same relative tie-breaks the virtual wheel held.
            queue = lane._queue
            queue.clear()
            lane._pending.clear()
            order = sorted(
                (j for j in range(n_timed) if pending_time[j, r] != math.inf),
                key=lambda j: int(pending_seq[j, r]),
            )
            for j in order:
                lane._pending[plan.timed_keys[j]] = queue.schedule(
                    float(pending_time[j, r]), lane._timed[j]
                )
            # The scatter wrote markings out-of-band of the lane's own
            # compiled arrays: distrust every cached verdict.
            lane._stale[:] = b"\x01" * len(lane._stale)
            lane.clock.advance_to(until)
    finally:
        for lane in begun:
            lane._finish_lane_run()
    return {"waves": rounds, "lane_steps": lane_steps, "vectorized": 1}
