"""Analytical (CTMC) solution of small SAN models.

Mobius solves models either by simulation or analytically/numerically;
the paper used only the simulator.  This module supplies the other
path for models that admit it, because it answers the paper's §V
concern — "evaluating the fidelity of the model" — directly: on small
models, the simulator's estimates can be checked against exact
steady-state numbers.

Requirements on the model (checked, with clear errors):

* every timed activity's delay distribution is :class:`Exponential`
  or :class:`MarkingDependentExponential` (the memoryless property is
  what makes the marking process a CTMC; marking-dependent rates are
  evaluated per state);
* instantaneous activities have a single case (probabilistic zero-time
  branching would need vanishing-marking elimination with branching
  probabilities — unsupported);
* the reachable, instantaneous-settled state space fits in
  ``max_states``.

Timed activities *may* have probabilistic cases: a rate-λ activity
with cases (p₁, p₂, ...) contributes transitions of rate λ·pᵢ.

The solver works on the live model by snapshotting and restoring
markings, so reward functions written for the simulator (closures over
places) evaluate unchanged per state.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

try:
    from scipy import linalg
except ImportError:  # pragma: no cover - exercised via masked-import test
    # scipy is an optional extra; the simulation engines never need it.
    # Only the CTMC steady-state solve below requires a linear-algebra
    # backend, and it raises a clear error when scipy is absent.
    linalg = None

from ..des.distributions import Exponential, MarkingDependentExponential
from ..errors import ModelError, SimulationError
from .activities import InstantaneousActivity, TimedActivity
from .model import ModelBase
from .places import ExtendedPlace, Place


def _freeze(value: Any) -> Hashable:
    """Recursively convert a marking value into a hashable key."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, set):
        return frozenset(_freeze(v) for v in value)
    return value


class CTMCSolver:
    """Exact steady-state solution of an exponential SAN.

    Example (a two-state on/off process):
        >>> solver = CTMCSolver(model)          # doctest: +SKIP
        >>> solver.explore()                    # doctest: +SKIP
        >>> solver.expected_reward(lambda: on.tokens)  # doctest: +SKIP
    """

    def __init__(self, model: ModelBase, max_states: int = 10_000) -> None:
        self.model = model
        self.max_states = int(max_states)
        self._places = model.places()
        self._timed: List[TimedActivity] = []
        self._instantaneous: List[InstantaneousActivity] = []
        for activity in model.activities():
            if isinstance(activity, TimedActivity):
                if not isinstance(
                    activity.distribution,
                    (Exponential, MarkingDependentExponential),
                ):
                    raise ModelError(
                        f"CTMC solution needs exponential delays; activity "
                        f"{activity.qualified_name!r} has "
                        f"{activity.distribution!r}"
                    )
                self._timed.append(activity)
            elif isinstance(activity, InstantaneousActivity):
                if len(activity.cases) != 1:
                    raise ModelError(
                        f"CTMC solution cannot handle probabilistic cases on "
                        f"instantaneous activity {activity.qualified_name!r}"
                    )
                self._instantaneous.append(activity)
        self._instantaneous.sort(key=lambda a: a.priority)
        self._index: Dict[Hashable, int] = {}
        self._snapshots: List[Dict[str, Any]] = []
        self._transitions: List[Tuple[int, int, float]] = []
        self._pi: Optional[np.ndarray] = None

    # -- marking plumbing ---------------------------------------------------

    def _snapshot(self) -> Dict[str, Any]:
        return {name: place.snapshot() for name, place in self._places.items()}

    def _restore(self, snapshot: Dict[str, Any]) -> None:
        import copy

        for name, place in self._places.items():
            value = snapshot[name]
            if isinstance(place, Place):
                place.tokens = value
            else:
                place.value = copy.deepcopy(value)

    def _key(self) -> Hashable:
        # Shared places appear under several names; freezing the whole
        # named snapshot is redundant but canonical, and correctness
        # beats compactness at these state-space sizes.
        return _freeze(self._snapshot())

    def _settle(self) -> None:
        """Fire enabled instantaneous activities to quiescence."""
        for _ in range(100_000):
            for activity in self._instantaneous:
                if activity.enabled():
                    activity.complete(_NO_RNG)
                    break
            else:
                return
        raise SimulationError("instantaneous settling did not converge")

    # -- exploration ----------------------------------------------------------

    def explore(self) -> int:
        """Build the reachable settled state space; returns its size."""
        self.model.reset()
        self._settle()
        frontier = [self._snapshot()]
        self._index[self._key()] = 0
        self._snapshots = [frontier[0]]

        while frontier:
            snapshot = frontier.pop()
            self._restore(snapshot)
            source = self._index[self._key()]
            # Which timed activities are enabled here?
            enabled = [a for a in self._timed if a.enabled()]
            for activity in enabled:
                # Marking-dependent rates must be read in the *source*
                # state (a previous case firing mutated the model).
                self._restore(snapshot)
                rate = activity.distribution.rate
                for case in activity.cases:
                    if case.probability == 0:
                        continue
                    self._restore(snapshot)
                    for gate in activity.input_gates:
                        gate.fire()
                    for gate in case.output_gates:
                        gate.fire()
                    self._settle()
                    key = self._key()
                    target = self._index.get(key)
                    if target is None:
                        if len(self._index) >= self.max_states:
                            raise ModelError(
                                f"state space exceeds max_states={self.max_states}"
                            )
                        target = len(self._index)
                        self._index[key] = target
                        successor = self._snapshot()
                        self._snapshots.append(successor)
                        frontier.append(successor)
                    self._transitions.append(
                        (source, target, rate * case.probability)
                    )
        self.model.reset()
        return len(self._index)

    @property
    def num_states(self) -> int:
        return len(self._index)

    # -- solution ---------------------------------------------------------------

    def steady_state(self) -> np.ndarray:
        """The stationary distribution π (πQ = 0, Σπ = 1).

        Raises:
            ModelError: if exploration has not run, or the chain has an
                absorbing/disconnected structure that leaves the linear
                system singular beyond the usual rank-1 deficiency.
        """
        if self._pi is not None:
            return self._pi
        if not self._snapshots:
            raise ModelError("call explore() before steady_state()")
        if linalg is None:
            raise SimulationError(
                "CTMCSolver.steady_state() requires scipy; install the "
                "'scipy' extra (pip install repro[scipy])"
            )
        n = self.num_states
        q = np.zeros((n, n))
        for source, target, rate in self._transitions:
            if source != target:
                q[source, target] += rate
                q[source, source] -= rate
        # Replace one balance equation with the normalization Σπ = 1.
        a = q.T.copy()
        a[-1, :] = 1.0
        b = np.zeros(n)
        b[-1] = 1.0
        try:
            pi = linalg.solve(a, b)
        except linalg.LinAlgError as exc:
            raise ModelError(f"singular generator matrix: {exc}") from exc
        if np.any(pi < -1e-9):
            raise ModelError(
                "negative stationary probabilities — the chain is likely "
                "reducible; CTMC solution needs an irreducible model"
            )
        self._pi = np.clip(pi, 0.0, None)
        self._pi /= self._pi.sum()
        return self._pi

    def expected_reward(self, rate: Callable[[], float]) -> float:
        """Steady-state expectation of a rate reward.

        ``rate`` is the same zero-argument closure a
        :class:`~repro.san.reward.RateReward` would use; it is evaluated
        with the model restored to each state.
        """
        pi = self.steady_state()
        total = 0.0
        for probability, snapshot in zip(pi, self._snapshots):
            if probability == 0.0:
                continue
            self._restore(snapshot)
            total += probability * float(rate())
        self.model.reset()
        return total

    def state_probability(self, predicate: Callable[[], bool]) -> float:
        """Steady-state probability that ``predicate`` holds."""
        return self.expected_reward(lambda: 1.0 if predicate() else 0.0)


class _NoRng:
    """Stand-in RNG for single-case completions (never consulted)."""

    def random(self) -> float:  # pragma: no cover - guarded by case checks
        raise SimulationError("CTMC settling must not need randomness")


_NO_RNG = _NoRng()
