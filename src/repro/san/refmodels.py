"""Reference SAN models expressed entirely in the gate/reward IR.

The Fig-8 virtualization model (:mod:`repro.vmm.vcpu_scheduler`) keeps
its scheduling function as procedural Python — the paper's algorithms
walk VM topologies and mutate extended places, which has no declarative
form.  That model therefore always takes the batch engine's wave-loop
fallback.  This module provides the counterpart: a token-only,
event-driven abstraction of the same dispatch / time-slice / fail /
repair cycle whose every gate, effect, and reward is an
:mod:`repro.san.exprs` expression, so the batch engine's vectorized
kernel runner (:mod:`repro.san.vector`) can advance all replication
lanes through one ``(R, n_places)`` int64 matrix.

The abstraction keeps the Fig-8 *shape* — G guest-VCPU slots competing
for a bounded PCPU pool under time-slice preemption, with exponential
job arrivals and exponential PCPU fail/repair — while replacing the
tick-driven scheduler walk with event-driven token flow:

* ``Run_g``    — slot ``g`` currently holds a PCPU (0/1).
* ``Load_g``   — remaining work units of slot ``g``'s current job.
* ``Slice_g``  — remaining time-slice budget of the running job.
* ``FreePCPU`` — idle, operational PCPUs.
* ``Up_p``     — PCPU ``p`` is operational (0/1).

A running slot burns one work unit per unit time (``Quantum_g``, a
deterministic timed activity); completion, expiry, failure handling and
dispatch are instantaneous activities whose registration order encodes
the scheduler's priorities (completions first, then capacity changes,
then lowest-index-first dispatch).  This deliberately keeps every
instantaneous chain shallow — a timed event triggers at most a handful
of settle passes — which is the regime where the vectorized batch
runner amortizes: each pass costs a fixed number of numpy operations
regardless of how many replication lanes advance through it.  The
paper's three reward shapes — PCPU utilization, VCPU availability, and
the BUSY/ACTIVE utilization ratio — are declared as IR rate
expressions over these counters.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..des.distributions import Deterministic, Exponential
from . import exprs as E
from .activities import InstantaneousActivity, TimedActivity
from .gates import InputGate
from .model import SANModel
from .places import Place
from .reward import RateReward, RatioRateReward, RewardVariable


def build_ir_reference_model(
    topology: Tuple[int, ...] = (2, 2, 2, 2),
    num_pcpus: int = 2,
    timeslice: int = 3,
    job_size: int = 5,
    arrival_mean: float = 6.0,
    mtbf: float = 400.0,
    mttr: float = 25.0,
    name: str = "IRRef",
) -> SANModel:
    """A fully-IR time-sliced scheduling model with PCPU fail/repair.

    Args:
        topology: VCPUs per VM, Fig-8 style; only the total slot count
            ``G = sum(topology)`` matters to the token abstraction.
        num_pcpus: size of the PCPU pool (initial ``FreePCPU`` marking).
        timeslice: work units a dispatched job may burn before expiry.
        job_size: work units per arriving job.
        arrival_mean: mean inter-arrival time of per-slot jobs.
        mtbf: mean time between failures of each PCPU.
        mttr: mean time to repair a failed PCPU.
        name: model name (activity qualified names derive from it).

    Every call builds a fresh model with its own places, so batch lanes
    get independent state; all lanes built with the same parameters
    share the structural signature the vectorized runner requires.
    """
    slots = int(sum(topology))
    if slots < 1:
        raise ValueError(f"topology {topology!r} has no VCPU slots")
    if num_pcpus < 1:
        raise ValueError(f"num_pcpus must be >= 1, got {num_pcpus}")
    if timeslice < 1:
        raise ValueError(f"timeslice must be >= 1, got {timeslice}")
    if job_size < 1:
        raise ValueError(f"job_size must be >= 1, got {job_size}")

    model = SANModel(name)

    free = model.add_place(Place("FreePCPU", num_pcpus))
    down_wait = model.add_place(Place("DownWait", 0))
    up_wait = model.add_place(Place("UpWait", 0))

    run: List[Place] = []
    load: List[Place] = []
    slc: List[Place] = []
    done: List[Place] = []
    for g in range(slots):
        run.append(model.add_place(Place(f"Run_{g}", 0)))
        load.append(model.add_place(Place(f"Load_{g}", job_size)))
        slc.append(model.add_place(Place(f"Slice_{g}", 0)))
        done.append(model.add_place(Place(f"Done_{g}", 0)))
    up: List[Place] = []
    for p in range(num_pcpus):
        up.append(model.add_place(Place(f"Up_{p}", 1)))

    # -- instantaneous scheduler, in scan-priority registration order ---
    # While a slot runs, the settle loop has already ensured Load > 0
    # and Slice > 0, so the quantum burn below never goes negative.
    for g in range(slots):
        model.add_activity(
            InstantaneousActivity(
                f"Finish_{g}",
                priority=0,
                input_gates=[
                    InputGate(
                        f"Finished_{g}",
                        expr=(E.tokens(run[g]) > 0) & (E.tokens(load[g]) == 0),
                        effect=E.effects(
                            E.remove(run[g]),
                            E.add(free),
                            E.add(done[g]),
                            E.set_tokens(slc[g], 0),
                        ),
                    )
                ],
            )
        )
    for g in range(slots):
        model.add_activity(
            InstantaneousActivity(
                f"Expire_{g}",
                priority=1,
                input_gates=[
                    InputGate(
                        f"Expired_{g}",
                        expr=(E.tokens(run[g]) > 0) & (E.tokens(slc[g]) == 0),
                        effect=E.effects(E.remove(run[g]), E.add(free)),
                    )
                ],
            )
        )
    # Capacity management outranks dispatch: a pending failure claims a
    # freed PCPU before any waiting slot can grab it back.
    model.add_activity(
        InstantaneousActivity(
            "TakeDown",
            priority=2,
            input_gates=[
                InputGate(
                    "Claimable",
                    expr=(E.tokens(down_wait) > 0) & (E.tokens(free) > 0),
                    effect=E.effects(E.remove(down_wait), E.remove(free)),
                )
            ],
        )
    )
    model.add_activity(
        InstantaneousActivity(
            "CancelPair",
            priority=2,
            input_gates=[
                InputGate(
                    "Cancelable",
                    expr=(E.tokens(up_wait) > 0) & (E.tokens(down_wait) > 0),
                    effect=E.effects(E.remove(up_wait), E.remove(down_wait)),
                )
            ],
        )
    )
    model.add_activity(
        InstantaneousActivity(
            "BringUp",
            priority=3,
            input_gates=[
                InputGate(
                    "Restorable",
                    expr=(E.tokens(up_wait) > 0) & (E.tokens(down_wait) == 0),
                    effect=E.effects(E.remove(up_wait), E.add(free)),
                )
            ],
        )
    )
    # Lowest-index-first dispatch: the settle loop's find-first scan is
    # the arbiter, so no explicit cursor tokens are needed.
    for g in range(slots):
        model.add_activity(
            InstantaneousActivity(
                f"Dispatch_{g}",
                priority=4,
                input_gates=[
                    InputGate(
                        f"Dispatchable_{g}",
                        expr=(E.tokens(load[g]) > 0)
                        & (E.tokens(run[g]) == 0)
                        & (E.tokens(free) > 0),
                        effect=E.effects(
                            E.remove(free),
                            E.add(run[g]),
                            E.set_tokens(slc[g], timeslice),
                        ),
                    )
                ],
            )
        )

    # -- timed layer: quanta, arrivals, fail/repair ---------------------
    for g in range(slots):
        model.add_activity(
            TimedActivity(
                f"Quantum_{g}",
                Deterministic(1.0),
                input_gates=[
                    InputGate(
                        f"Running_{g}",
                        expr=E.tokens(run[g]) > 0,
                        effect=E.effects(
                            E.remove(load[g]), E.remove(slc[g])
                        ),
                    )
                ],
            )
        )
    for g in range(slots):
        model.add_activity(
            TimedActivity(
                f"Arrive_{g}",
                Exponential(1.0 / arrival_mean),
                input_gates=[
                    InputGate(
                        f"Idle_{g}",
                        expr=(E.tokens(run[g]) == 0) & (E.tokens(load[g]) == 0),
                        effect=E.effects(E.add(load[g], job_size)),
                    )
                ],
            )
        )
    # All Fail_* then all Repair_* — contiguous registration keeps each
    # group a single kernel family for the vectorized batch runner.
    for p in range(num_pcpus):
        model.add_activity(
            TimedActivity(
                f"Fail_{p}",
                Exponential(1.0 / mtbf),
                input_gates=[
                    InputGate(
                        f"Operational_{p}",
                        expr=E.tokens(up[p]) > 0,
                        effect=E.effects(E.remove(up[p]), E.add(down_wait)),
                    )
                ],
            )
        )
    for p in range(num_pcpus):
        model.add_activity(
            TimedActivity(
                f"Repair_{p}",
                Exponential(1.0 / mttr),
                input_gates=[
                    InputGate(
                        f"Down_{p}",
                        expr=E.tokens(up[p]) == 0,
                        effect=E.effects(E.add(up[p]), E.add(up_wait)),
                    )
                ],
            )
        )

    return model


def reference_rewards(
    model: SANModel,
    num_pcpus: int = 2,
    warmup: float = 0.0,
) -> List[RewardVariable]:
    """The paper's three reward shapes as IR rate expressions.

    Returns fresh reward variables bound to ``model``'s places:

    * ``pcpu_utilization`` — running slots over pool size.
    * ``vcpu_availability`` — fraction of slots with work queued.
    * ``vcpu_utilization`` — running time over active (running or
      loaded) time, the BUSY/ACTIVE ratio shape.
    """
    table: Dict[str, Place] = model.places()

    def _indexed(prefix: str) -> List[Place]:
        names = [n for n in table if n.startswith(prefix)]
        names.sort(key=lambda n: int(n[len(prefix):]))
        return [table[n] for n in names]

    run = _indexed("Run_")
    load = _indexed("Load_")
    slots = len(run)

    running = E.count(E.tokens(run[0]) > 0)
    for place in run[1:]:
        running = running + E.count(E.tokens(place) > 0)
    loaded = E.count(E.tokens(load[0]) > 0)
    for place in load[1:]:
        loaded = loaded + E.count(E.tokens(place) > 0)
    active = E.count((E.tokens(run[0]) > 0) | (E.tokens(load[0]) > 0))
    for r_place, l_place in zip(run[1:], load[1:]):
        active = active + E.count(
            (E.tokens(r_place) > 0) | (E.tokens(l_place) > 0)
        )

    return [
        RateReward(
            "pcpu_utilization", expr=running / E.const(num_pcpus), warmup=warmup
        ),
        RateReward(
            "vcpu_availability", expr=loaded / E.const(slots), warmup=warmup
        ),
        RatioRateReward(
            "vcpu_utilization",
            num_expr=running,
            den_expr=active,
            warmup=warmup,
        ),
    ]
