"""The compiled enablement engine: flat-array lowering + tick fast-forward.

The incremental engine (PR 2) made enablement *queries* cheap but still
walks Python object graphs — ``_ActivityState`` instances, per-gate
record lists, dict hops — on every event.  This module lowers the model
once, at construction, into flat parallel arrays indexed by a dense
integer activity index:

* instantaneous activities occupy indices ``0 .. n_inst-1`` in settle
  order (priority, then registration), timed activities follow in
  registration order — so a single index space covers both hot loops;
* per-activity staleness and enablement live in two ``bytearray``s,
  scanned with ``bytearray.find`` (a C-level memchr) instead of a
  Python loop over state objects;
* the cell -> dependent-activities watcher index maps ``id(cell)`` to a
  prebuilt list of integer indices, and writes propagate *eagerly*: the
  dirty sink installed during completions flips stale bytes directly,
  so there is no deferred flush pass at all;
* timed rescheduling walks prebuilt ``(index, activity, key, rng)``
  rows — no attribute lookups or stream-cache probes per event.

Verdicts are cached at activity granularity (the conjunction over the
gates), refreshed under a read sink exactly like the incremental
engine; the same soundness argument applies (pure predicates re-reading
unchanged cells return unchanged verdicts), as do the same conservative
fallbacks (volatile gates and empty observed read sets re-evaluate at
every synchronisation point, out-of-band writes invalidate everything).

On top of the lowered form the engine implements **clock-tick
fast-forward** for models that publish a ``tick_fast_forward`` spec
(see :class:`repro.vmm.vcpu_scheduler.ClockFastForward`): when the
model certifies that the next ``k`` ticks of its deterministic clock
are pure countdown — every PCPU assigned, every running VCPU burning
load outside critical sections, timeslices and loads at least ``k``
from expiry — and no other timed event intervenes, the engine fires the
clock ``k`` times in closed form: rewards accumulate per unit interval
with the (provably constant) rate evaluated once, markings receive the
net arithmetic update, the completion counter advances by the exact
per-tick completion count, and the clock is rescheduled at the same
model time it would have reached step by step.  No random stream is
touched (the clock is deterministic and every skipped activity has a
single case), so the sample path — and every reward metric — is
bit-for-bit identical to the other engines.  Traces coalesce the
skipped ticks into one ``engine.fastforward`` record; golden
normalization already projects those away (see
:mod:`repro.observability.golden`).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy

from ..des.random_streams import StreamFactory
from ..errors import ConfigurationError, SimulationError
from ..observability import profile as _profile
from ..observability import trace as _trace
from . import exprs as _exprs
from . import gates as _gates
from . import places as _places
from .activities import Activity, TimedActivity
from .model import ModelBase
from .places import Place
from .simulator import SANSimulator

#: Recognised enablement engines, in documentation order.
ENGINES = ("incremental", "rescan", "compiled", "batch")


def resolve_engine(engine: Optional[str] = None, incremental: bool = True) -> str:
    """Normalise the engine selection, honouring the legacy boolean.

    ``engine`` wins when given; otherwise the PR 2-era ``incremental``
    flag picks between the two original engines, keeping every existing
    call site's behaviour unchanged.
    """
    if engine is None:
        return "incremental" if incremental else "rescan"
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown enablement engine {engine!r}; expected one of {ENGINES}"
        )
    return engine


def build_simulator(
    model: ModelBase,
    streams: Optional[StreamFactory] = None,
    engine: Optional[str] = None,
    incremental: bool = True,
    max_instantaneous_chain: int = 100_000,
    wave_window: Optional[float] = None,
) -> SANSimulator:
    """Construct the simulator for the selected enablement engine."""
    name = resolve_engine(engine, incremental)
    if name == "batch":
        return BatchCompiledSANSimulator(
            model,
            streams,
            max_instantaneous_chain=max_instantaneous_chain,
            wave_window=wave_window,
        )
    if name == "compiled":
        return CompiledSANSimulator(
            model, streams, max_instantaneous_chain=max_instantaneous_chain
        )
    return SANSimulator(
        model,
        streams,
        max_instantaneous_chain=max_instantaneous_chain,
        incremental=(name == "incremental"),
    )


class _EagerDirtySink:
    """Dirty sink that flips stale bytes at write time.

    Installed as ``places._dirty_sink`` around completions; any object
    with ``add`` satisfies the sink protocol, so writes propagate to
    the flat stale array with no intermediate set and no flush pass.
    """

    __slots__ = ("_watchers", "_stale")

    def __init__(self, watchers: Dict[int, List[int]], stale: bytearray) -> None:
        self._watchers = watchers
        self._stale = stale

    def add(self, cell: Any) -> None:
        dependents = self._watchers.get(id(cell))
        if dependents is not None:
            stale = self._stale
            for index in dependents:
                stale[index] = 1


class CompiledSANSimulator(SANSimulator):
    """SAN simulator running the lowered, index-based enablement engine.

    Args:
        model: the (atomic or composed) model to simulate.
        streams: replication random streams (default: seed 0, rep 0).
        max_instantaneous_chain: livelock guard for zero-time chains.
        fast_forward: honour the model's ``tick_fast_forward`` spec
            (default).  Disable for ablation benchmarks — lowering and
            fast-forward speedups are then separately attributable.
    """

    def __init__(
        self,
        model: ModelBase,
        streams: Optional[StreamFactory] = None,
        max_instantaneous_chain: int = 100_000,
        fast_forward: bool = True,
    ) -> None:
        # The base class with incremental=False gives us the activity
        # lists, queue, reward plumbing and stream bindings without an
        # EnablementCache we would never consult.
        super().__init__(
            model,
            streams,
            max_instantaneous_chain=max_instantaneous_chain,
            incremental=False,
        )
        self.fast_forward = bool(fast_forward)
        self._compile()

    # -- lowering -----------------------------------------------------------

    def _compile(self) -> None:
        acts: List[Activity] = list(self._instantaneous) + list(self._timed)
        self._acts = acts
        n = len(acts)
        self._n_inst = len(self._instantaneous)
        self._act_gates: List[Tuple[Any, ...]] = [
            tuple(activity.input_gates) for activity in acts
        ]
        self._stale = bytearray(b"\x01" * n)
        self._enabled = bytearray(n)
        # Observed/declared read cells per activity, for watcher dedupe.
        self._act_cells: List[set] = [set() for _ in range(n)]
        # id(cell) -> dependent activity indices; _cell_pins keeps the
        # cells alive so ids cannot be recycled.
        self._watchers: Dict[int, List[int]] = {}
        self._cell_pins: Dict[int, Any] = {}
        self._scratch: set = set()
        self._ff_reads: set = set()
        self._dirty = _EagerDirtySink(self._watchers, self._stale)
        self.refreshes = 0
        # Activities re-marked stale at every synchronisation point:
        # volatile gates up front, empty observed read sets on demand.
        self._always_inst: List[int] = []
        self._always_timed: List[int] = []
        # Scalar IR fast path: an activity whose every gate carries an
        # expression gets one fused specialized conjunction — no read
        # sink, no per-gate holds() dispatch, no demote-to-volatile
        # (its read set is fully derived).  A fully-constant conjunction
        # (TRUE/FALSE gates) is pinned: refreshed only when explicitly
        # staled, never re-evaluated every settle pass — previously a
        # `lambda: True` gate had an empty observed read set and paid
        # the conservative always-re-evaluate path forever.
        self._ir_preds: List[Optional[Any]] = [None] * n
        self._ir_costs: List[int] = [0] * n
        self._ir_consts: List[Optional[int]] = [None] * n
        for index, activity in enumerate(acts):
            gates = self._act_gates[index]
            if gates and all(g.expr is not None for g in gates):
                verdicts = [g.constant_verdict for g in gates]
                if all(v is not None for v in verdicts):
                    self._ir_consts[index] = 1 if all(verdicts) else 0
                else:
                    self._ir_preds[index] = _exprs.compile_scalar_predicate(
                        _exprs.conjunction([g.expr for g in gates])
                    )
                self._ir_costs[index] = len(gates)
            elif activity.input_gates and activity.is_volatile():
                self._always_for(index).append(index)
            for cell in activity.declared_read_cells():
                self._watch(index, cell)
        self._bind_compiled_rows()
        # Clock fast-forward: the model publishes the spec (or not).
        spec = getattr(self.model, "tick_fast_forward", None)
        self._ff_spec = spec
        self._tick_activity = spec.clock if spec is not None else None
        self._tick_key = (
            self._tick_activity.qualified_name
            if self._tick_activity is not None
            else None
        )

    def _bind_compiled_rows(self) -> None:
        """Timed reschedule rows carrying the index alongside the stream."""
        n_inst = self._n_inst
        self._timed_crows: List[tuple] = [
            (n_inst + offset, activity, key, rng)
            for offset, (activity, key, rng) in enumerate(self._timed_rows)
        ]

    def _always_for(self, index: int) -> List[int]:
        return self._always_inst if index < self._n_inst else self._always_timed

    def _watch(self, index: int, cell: Any) -> None:
        cells = self._act_cells[index]
        if cell in cells:
            return
        cells.add(cell)
        key = id(cell)
        dependents = self._watchers.get(key)
        if dependents is None:
            self._watchers[key] = [index]
            self._cell_pins[key] = cell
        else:
            dependents.append(index)

    # -- engine identity ----------------------------------------------------

    @property
    def engine(self) -> str:
        return "compiled"

    def stats(self) -> Dict[str, Any]:
        stats = super().stats()
        stats["enablement_refreshes"] = self.refreshes
        stats["watched_cells"] = len(self._watchers)
        return stats

    def reset(self, streams: Optional[StreamFactory] = None) -> None:
        super().reset(streams)
        self._bind_compiled_rows()
        self._stale[:] = b"\x01" * len(self._stale)
        for index in range(len(self._enabled)):
            self._enabled[index] = 0
        self.refreshes = 0

    # -- enablement refresh --------------------------------------------------

    def _refresh(self, index: int) -> int:
        """Re-evaluate one activity's gate conjunction, tracking reads.

        Same contract as the incremental engine's refresh: pure
        predicates under a read sink, short-circuit at the first
        non-holding gate (so gate-evaluation counts stay comparable),
        watcher edges extended for newly observed cells — stale edges
        from earlier control paths only ever cause spurious refreshes.
        """
        gates = self._act_gates[index]
        if not gates:
            # Gate-less activities are never enabled (the Activity
            # contract) and their verdict can never change.
            self._stale[index] = 0
            self._enabled[index] = 0
            return 0
        const = self._ir_consts[index]
        if const is not None:
            # Pinned constant conjunction: no evaluation at all, but
            # account the gates so counters stay comparable.
            self.refreshes += 1
            _gates.count_evaluations(self._ir_costs[index])
            self._stale[index] = 0
            self._enabled[index] = const
            return const
        pred = self._ir_preds[index]
        if pred is not None:
            # Fused IR conjunction: reads are derived (already watched),
            # so the read-sink protocol is skipped entirely.  The cost
            # is accounted as the gate count — an upper bound, since
            # the generated conjunction short-circuits like holds().
            self.refreshes += 1
            _gates.count_evaluations(self._ir_costs[index])
            enabled = 1 if pred() else 0
            self._stale[index] = 0
            self._enabled[index] = enabled
            return enabled
        self.refreshes += 1
        scratch = self._scratch
        scratch.clear()
        previous = _places._read_sink
        _places._read_sink = scratch
        try:
            enabled = 1
            for gate in gates:
                if not gate.holds():
                    enabled = 0
                    break
        finally:
            _places._read_sink = previous
        if scratch:
            cells = self._act_cells[index]
            for cell in scratch:
                if cell not in cells:
                    self._watch(index, cell)
        elif not self._act_cells[index]:
            # Nothing observed, nothing declared: the read set cannot
            # be established.  Never guess — re-evaluate at every
            # synchronisation point from now on.
            always = self._always_for(index)
            if index not in always:
                always.append(index)
        self._stale[index] = 0
        self._enabled[index] = enabled
        return enabled

    # -- completions ---------------------------------------------------------

    def _complete(self, activity: Activity) -> None:
        if activity is self._tick_activity:
            self.ticks_fired += 1
        tracer = _trace._ACTIVE
        if tracer is not None:
            self._complete_traced(activity, tracer)
            return
        previous = _places._dirty_sink
        _places._dirty_sink = self._dirty
        try:
            activity.complete(self._rngs[activity])
        finally:
            _places._dirty_sink = previous
        self._completions += 1
        self._notify_impulse(activity)

    def _complete_traced(self, activity: Activity, tracer: "_trace.SimTracer") -> None:
        tracer._now = self.clock.now
        written: set = set()
        previous = _places._dirty_sink
        _places._dirty_sink = written
        try:
            activity.complete(self._rngs[activity])
        finally:
            _places._dirty_sink = previous
        mark = self._dirty.add
        for cell in written:
            mark(cell)
        tracer.emit(
            _trace.ACTIVITY_FIRE,
            time=self.clock.now,
            activity=activity.qualified_name,
            timed=isinstance(activity, TimedActivity),
            writes=self._write_names(written),
        )
        self._completions += 1
        self._notify_impulse(activity)

    # -- settle / reschedule --------------------------------------------------

    def _settle_instantaneous(self) -> None:
        """Lowered settle: memchr scans over the stale/enabled arrays.

        Invariant exploited by the scan: indices below the cursor are
        fresh and disabled, so the first set byte in either array —
        whichever comes first — decides without touching state objects.
        """
        stale = self._stale
        enabled = self._enabled
        acts = self._acts
        n = self._n_inst
        always = self._always_inst
        refresh = self._refresh
        complete = self._complete
        chain = 0
        while True:
            for index in always:
                stale[index] = 1
            fired = -1
            cursor = 0
            while True:
                first_stale = stale.find(1, cursor, n)
                if first_stale == -1:
                    fired = enabled.find(1, cursor, n)
                    break
                first_enabled = enabled.find(1, cursor, first_stale)
                if first_enabled != -1:
                    fired = first_enabled
                    break
                if refresh(first_stale):
                    fired = first_stale
                    break
                cursor = first_stale + 1
            if fired == -1:
                return
            fired_activity = acts[fired]
            complete(fired_activity)
            chain += 1
            if chain > self.max_instantaneous_chain:
                raise self._chain_error(fired_activity)

    def _reschedule_timed(self) -> None:
        stale = self._stale
        enabled = self._enabled
        for index in self._always_timed:
            stale[index] = 1
        pending_map = self._pending
        queue = self._queue
        now = self.clock.now
        tracer = _trace._ACTIVE
        refresh = self._refresh
        for index, activity, key, rng in self._timed_crows:
            is_enabled = refresh(index) if stale[index] else enabled[index]
            pending = pending_map.get(key)
            if pending is not None:
                if not is_enabled:
                    queue.cancel(pending)
                    del pending_map[key]
                    if tracer is not None:
                        tracer.emit(_trace.ENGINE_CANCEL, time=now, activity=key)
                elif activity.reactivation:
                    queue.cancel(pending)
                    delay = activity.sample_delay(rng)
                    pending_map[key] = queue.schedule(now + delay, activity)
                    if tracer is not None:
                        tracer.emit(_trace.ENGINE_SCHEDULE, time=now,
                                    activity=key, at=now + delay)
            elif is_enabled:
                delay = activity.sample_delay(rng)
                pending_map[key] = queue.schedule(now + delay, activity)
                if tracer is not None:
                    tracer.emit(_trace.ENGINE_SCHEDULE, time=now,
                                activity=key, at=now + delay)

    # -- out-of-band mutation boundary ----------------------------------------

    def _sync_in(self) -> None:
        if _places.write_epoch() != self._synced_epoch:
            # Out-of-band writes: distrust every cached verdict.  The
            # watcher index stays — stale edges cause only spurious
            # refreshes, never missed invalidations.
            self._stale[:] = b"\x01" * len(self._stale)

    def _sync_out(self) -> None:
        self._synced_epoch = _places.write_epoch()

    # -- clock fast-forward ----------------------------------------------------

    def _try_fast_forward(self, head, until: float, spec) -> int:
        """Coalesce up to ``k`` clock ticks; returns the ticks skipped.

        Called at quiescence with the clock completion at the queue
        head.  Three bounds apply: the run horizon (the last coalesced
        tick must fall strictly before ``until``), the earliest other
        pending timed event (the span may not cross it — an event *at*
        tick ``j`` still wins its tie-break against the re-scheduled
        clock, exactly as step-by-step, because the fresh clock event
        always carries the younger sequence number), and the model's
        own certificate :meth:`max_skip` (evaluated under a read sink:
        pure observation).  Fast-forwarding fewer than 2 ticks buys
        nothing, so the ordinary step runs instead.
        """
        t_first = head.time
        k = math.ceil(until - t_first + 1.0) - 1
        if k < 2:
            return 0
        pending = self._pending
        if len(pending) > 1:
            tick_key = self._tick_key
            horizon = min(
                event.time for key, event in pending.items() if key != tick_key
            )
            bound = math.ceil(horizon - t_first + 1.0) - 1
            if bound < k:
                k = bound
                if k < 2:
                    return 0
        previous = _places._read_sink
        _places._read_sink = self._ff_reads
        try:
            model_bound = spec.max_skip()
        finally:
            _places._read_sink = previous
        self._ff_reads.clear()
        if model_bound < k:
            k = model_bound
            if k < 2:
                return 0
        # Commit: pop the clock completion, batch the span, reschedule.
        event = self._queue.pop()
        del pending[self._tick_key]
        self._advance_rewards(t_first)
        self._advance_rewards_constant(t_first, k - 1)
        self.clock.advance_to(t_first + (k - 1))
        previous = _places._dirty_sink
        _places._dirty_sink = self._dirty
        try:
            spec.apply(k)
        finally:
            _places._dirty_sink = previous
        skipped_completions = k * spec.per_tick_completions
        self._completions += skipped_completions
        self.ticks_fast_forwarded += k
        pending[self._tick_key] = self._queue.schedule(t_first + k, event.payload)
        tracer = _trace._ACTIVE
        if tracer is not None:
            tracer.emit(
                _trace.ENGINE_FASTFORWARD,
                time=t_first,
                ticks=k,
                completions=skipped_completions,
            )
        return k

    def _advance_rewards_constant(self, start: float, steps: int) -> None:
        """Per-unit-interval reward accumulation over a frozen state."""
        if steps > 0 and self._rate_rewards:
            previous = _places._read_sink
            _places._read_sink = self._reward_reads
            try:
                for reward in self._rate_rewards:
                    reward.observe_constant(start, steps)
            finally:
                _places._read_sink = previous

    def run(self, until: float) -> None:
        """Run until ``until``, fast-forwarding idle clock spans.

        Identical contract to the base ``run``; impulse rewards see
        every completion individually, so their presence disables
        fast-forward for the whole run (the countdown ticks the span
        skips *do* complete activities an impulse reward could match).
        ``step()`` never fast-forwards — single-stepping is a debugging
        surface and must show every event.
        """
        if until < self.clock.now:
            raise SimulationError(
                f"cannot run to t={until}: clock is already at {self.clock.now}"
            )
        fired_before = self.ticks_fired
        skipped_before = self.ticks_fast_forwarded
        self._sync_in()
        eval_base = _gates._EVALUATIONS
        try:
            self._ensure_started()
            queue = self._queue
            spec = (
                self._ff_spec
                if self.fast_forward
                and self._ff_spec is not None
                and not self._impulse_rewards
                else None
            )
            tick = self._tick_activity
            while True:
                head = queue.peek()
                if head is None or head.time >= until:
                    break
                if spec is not None and head.payload is tick:
                    if self._try_fast_forward(head, until, spec):
                        continue
                self._step()
            self._advance_rewards(until)
            self.clock.advance_to(until)
        finally:
            self._own_gate_evaluations += _gates._EVALUATIONS - eval_base
            profiler = _profile._ACTIVE
            if profiler is not None:
                profiler.count(
                    "engine.ticks_fired", self.ticks_fired - fired_before
                )
                profiler.count(
                    "engine.ticks_fast_forwarded",
                    self.ticks_fast_forwarded - skipped_before,
                )
            self._sync_out()


# -- replication-batched execution --------------------------------------------


class BatchCompiledSANSimulator(CompiledSANSimulator):
    """Compiled engine lane that can run inside a shared batch calendar.

    One instance simulates one replication with exactly the compiled
    engine's lowered state and sample path — the subclass only exposes
    the engine loop as three lane hooks (begin / drain-window / finish)
    so that :func:`run_lanes` can interleave R replications of the same
    spec through a single structure-of-arrays calendar.  Each lane keeps
    its own marking, event wheel and per-replication
    :class:`~repro.des.random_streams.StreamFactory`, so the batch is
    bit-for-bit identical to running the lanes one after the other; the
    shared calendar only chooses *which* lane steps next (ascending lane
    order within a wave — lanes are independent, so any order would
    yield the same per-lane path).

    Standing alone (``build_simulator(engine="batch")``), the instance
    is a single-lane batch: ``run`` drives the same wave loop with one
    entry, so every differential test of the serial API also exercises
    the batch driver.

    Args:
        wave_window: interleaving window width in clock periods for the
            shared calendar (default: the module's ``WAVE_WINDOW``).
            Lanes are independent, so any positive width is correct —
            this only tunes cache locality vs switching granularity.
    """

    def __init__(
        self,
        model: ModelBase,
        streams: Optional[StreamFactory] = None,
        max_instantaneous_chain: int = 100_000,
        fast_forward: bool = True,
        wave_window: Optional[float] = None,
    ) -> None:
        super().__init__(
            model,
            streams,
            max_instantaneous_chain=max_instantaneous_chain,
            fast_forward=fast_forward,
        )
        if wave_window is None:
            self.wave_window = WAVE_WINDOW
        else:
            window = float(wave_window)
            if not (window > 0.0):
                raise ConfigurationError(
                    f"batch wave window must be positive, got {wave_window!r}"
                )
            self.wave_window = window

    @property
    def engine(self) -> str:
        return "batch"

    def run(self, until: float) -> None:
        run_lanes((self,), until)

    # -- lane protocol (driven by run_lanes) ---------------------------------

    def _begin_lane_run(self, until: float) -> float:
        """Enter the run: sync, settle the initial marking, arm FF.

        Returns the lane's head-event time (``inf`` on an empty wheel)
        for the shared calendar.
        """
        if until < self.clock.now:
            raise SimulationError(
                f"cannot run to t={until}: clock is already at {self.clock.now}"
            )
        self._lane_fired_before = self.ticks_fired
        self._lane_skipped_before = self.ticks_fast_forwarded
        self._sync_in()
        base = _gates._EVALUATIONS
        try:
            self._ensure_started()
        finally:
            self._own_gate_evaluations += _gates._EVALUATIONS - base
        self._lane_ff = (
            self._ff_spec
            if self.fast_forward
            and self._ff_spec is not None
            and not self._impulse_rewards
            else None
        )
        head = self._queue.peek()
        return head.time if head is not None else math.inf

    def _drain_window(self, boundary: float, until: float) -> Tuple[float, int]:
        """Process every head event before ``boundary`` (<= ``until``).

        Returns ``(new_head_time, steps)`` for the shared calendar.
        The loop body mirrors ``CompiledSANSimulator.run`` exactly, so a
        single lane replays the serial event order; running it per
        window (not per event) keeps the wave driver's overhead off the
        hot path.  Fast-forward may legally overshoot the window — the
        lane just re-enters the calendar at the far end of the span.
        """
        peek = self._queue.peek
        step = self._step
        tick = self._tick_activity
        spec = self._lane_ff
        steps = 0
        base = _gates._EVALUATIONS
        try:
            while True:
                head = peek()
                if head is None:
                    return math.inf, steps
                time = head.time
                if time >= boundary:
                    return time, steps
                if spec is None or head.payload is not tick:
                    step()
                elif not self._try_fast_forward(head, until, spec):
                    step()
                steps += 1
        finally:
            self._own_gate_evaluations += _gates._EVALUATIONS - base

    def _settle_lane_run(self, until: float) -> None:
        """Advance rewards and the clock to the horizon (success path)."""
        self._advance_rewards(until)
        self.clock.advance_to(until)

    def _finish_lane_run(self) -> None:
        """Leave the run (always): profiler deltas + epoch sync."""
        profiler = _profile._ACTIVE
        if profiler is not None:
            profiler.count(
                "engine.ticks_fired", self.ticks_fired - self._lane_fired_before
            )
            profiler.count(
                "engine.ticks_fast_forwarded",
                self.ticks_fast_forwarded - self._lane_skipped_before,
            )
        self._sync_out()


#: Wave window width, in clock periods (the framework's Clocks tick at
#: unit cadence).  Lanes are mutually independent, so any window is
#: correct — the width only sets interleaving granularity.  A window of
#: a few ticks lets each lane run a cache-hot burst (its tick pipelines
#: plus the stochastic firings scheduled inside the window) before the
#: driver hops to the next lane, and amortizes the per-wave calendar
#: overhead over many events; measured on the Figure 8 shape, 16 ticks
#: is past the knee and single-tick windows give up a few percent to
#: cross-lane cache thrash.
WAVE_WINDOW = 16.0


def run_lanes(
    lanes: Sequence[BatchCompiledSANSimulator],
    until: float,
    window: Optional[float] = None,
) -> Dict[str, int]:
    """Drive R lanes to ``until`` off one shared numpy calendar.

    When every lane's model carries a fully-IR form — all gates carry
    vectorizable expressions and effects, all rewards vectorizable
    rates (see :mod:`repro.san.vector`) — the driver hands the whole
    batch to the vectorized kernel runner, which advances all R lanes
    per Python-level step through one ``(R, n_places)`` int64 matrix
    and returns bit-identical per-lane results.  Models with any
    closure gate (the VMM scheduler models, whose scheduling function
    is irreducibly procedural) fall back to the wave loop below.

    The wave calendar is a ``(R,)`` float64 vector of per-lane
    head-event times.  Each wave takes the global minimum ``t`` and
    advances every lane whose head falls inside the window
    ``[t, t + window)`` (in ascending lane order), draining the lane's
    events up to the window edge before moving on, so lanes whose
    deterministic Clocks align — the common case, every tick lands on
    integer time — execute their tick pipelines back to back with the
    interpreter's caches hot.  Lanes are independent, so the window
    width (default: lane 0's ``wave_window`` knob) affects only
    interleaving granularity, never any lane's sample path.  Per-lane
    fast-forward still engages: a lane that certifies an idle span
    simply re-enters the calendar at the far end of the span.

    Returns wave/step counters (``waves``, ``lane_steps``) for benches
    and stats; correctness never depends on them.
    """
    if not lanes:
        return {"waves": 0, "lane_steps": 0}
    from . import vector as _vector  # deferred: vector imports this module

    plan = _vector.plan_lanes(lanes)
    if plan is not None:
        return _vector.run_vectorized(plan, lanes, until)
    if window is None:
        window = getattr(lanes[0], "wave_window", WAVE_WINDOW)
    waves = 0
    lane_steps = 0
    begun: List[BatchCompiledSANSimulator] = []
    try:
        heads = numpy.empty(len(lanes), dtype=numpy.float64)
        for index, lane in enumerate(lanes):
            heads[index] = lane._begin_lane_run(until)
            begun.append(lane)
        while True:
            t = heads.min()
            if t >= until:
                break
            waves += 1
            # Events at exactly the window edge wait for the next wave,
            # and the edge never exceeds the horizon, so every drained
            # event is strictly before ``until``.
            boundary = min(t + window, until)
            for index in numpy.nonzero(heads < boundary)[0]:
                head, steps = lanes[index]._drain_window(boundary, until)
                lane_steps += steps
                heads[index] = head
        for lane in lanes:
            lane._settle_lane_run(until)
    finally:
        for lane in begun:
            lane._finish_lane_run()
    return {"waves": waves, "lane_steps": lane_steps}


def place_matrix(lanes: Sequence[BatchCompiledSANSimulator]) -> "numpy.ndarray":
    """Structure-of-arrays snapshot: ``(R, n_places)`` int64 token counts.

    Rows are lanes, columns are the token places of the (shared) model
    shape in name order — extended places hold arbitrary Python values
    and are excluded.  Lanes must share a spec; a lane whose place names
    differ from lane 0's raises :class:`ConfigurationError`.
    """
    if not lanes:
        return numpy.zeros((0, 0), dtype=numpy.int64)
    names = [
        name
        for name, place in sorted(lanes[0].model.places().items())
        if isinstance(place, Place)
    ]
    matrix = numpy.empty((len(lanes), len(names)), dtype=numpy.int64)
    for row, lane in enumerate(lanes):
        places = lane.model.places()
        try:
            for col, name in enumerate(names):
                matrix[row, col] = places[name].tokens
        except KeyError as exc:
            raise ConfigurationError(
                f"lane {row} does not share lane 0's place layout: missing {exc}"
            ) from None
    return matrix
