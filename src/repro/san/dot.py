"""Graphviz DOT export of SAN models.

The paper's users see their models as Mobius diagrams (its Figures 3-7
are screenshots of them).  :func:`to_dot` renders any
:class:`~repro.san.model.ModelBase` in the same visual vocabulary:

* places as circles (extended places as double circles),
* timed activities as thick vertical bars, instantaneous as thin bars,
* input gates as triangles pointing into their activity.

Because gates are opaque closures, place↔gate wiring cannot be
inferred automatically; the graph shows containment (model clusters)
and the gate→activity attachment, which is what one needs to eyeball
a model's structure.  Join places are annotated with their member
lists when the model is composed.

The output is plain DOT text — feed it to ``dot -Tsvg`` (not bundled;
no runtime dependency on graphviz).
"""

from __future__ import annotations

from typing import List

from .activities import InstantaneousActivity, TimedActivity
from .composed import ComposedModel
from .model import ModelBase
from .places import Place


def _escape(text: str) -> str:
    return text.replace('"', r"\"")


def to_dot(model: ModelBase, title: str = "") -> str:
    """Render the model's structure as Graphviz DOT text."""
    lines: List[str] = []
    lines.append("digraph san {")
    lines.append("  rankdir=LR;")
    lines.append('  node [fontname="Helvetica", fontsize=10];')
    if title:
        lines.append(f'  label="{_escape(title)}"; labelloc=t;')

    # Places: circles, doubled for extended places.  Join-shared places
    # are distinct objects over one storage cell, so deduplicate by the
    # cell's identity: one node per shared variable.
    seen_ids = {}
    for name, place in sorted(model.places().items()):
        key = id(place._cell)
        if key in seen_ids:
            seen_ids[key].append(name)
            continue
        seen_ids[key] = [name]
    for names in seen_ids.values():
        label = names[0]
        aliases = names[1:]
        place = model.places()[label]
        shape = "circle" if isinstance(place, Place) else "doublecircle"
        alias_text = ""
        if aliases:
            alias_text = r"\n(= " + ", ".join(aliases[:3])
            if len(aliases) > 3:
                alias_text += ", ..."
            alias_text += ")"
        lines.append(
            f'  "p:{_escape(label)}" [shape={shape}, '
            f'label="{_escape(label)}{alias_text}"];'
        )

    # Activities and their gates.
    for activity in model.activities():
        qualified = activity.qualified_name
        if isinstance(activity, TimedActivity):
            style = "shape=box, width=0.15, style=filled, fillcolor=black, fontcolor=white"
            label = f"{qualified}\\n{activity.distribution!r}"
        elif isinstance(activity, InstantaneousActivity):
            style = "shape=box, width=0.05, style=filled, fillcolor=gray70"
            label = f"{qualified}\\nprio={activity.priority}"
        else:  # pragma: no cover - no other activity kinds exist
            style = "shape=box"
            label = qualified
        lines.append(f'  "a:{_escape(qualified)}" [{style}, label="{_escape(label)}"];')
        for gate in activity.input_gates:
            gate_id = f"g:{qualified}:{gate.name}"
            lines.append(
                f'  "{_escape(gate_id)}" [shape=triangle, label="{_escape(gate.name)}"];'
            )
            lines.append(
                f'  "{_escape(gate_id)}" -> "a:{_escape(qualified)}";'
            )
        for case_index, case in enumerate(activity.cases):
            for gate in case.output_gates:
                gate_id = f"o:{qualified}:{case_index}:{gate.name}"
                lines.append(
                    f'  "{_escape(gate_id)}" [shape=invtriangle, '
                    f'label="{_escape(gate.name)}"];'
                )
                lines.append(
                    f'  "a:{_escape(qualified)}" -> "{_escape(gate_id)}";'
                )

    # Composed models: annotate the join places as a legend.
    if isinstance(model, ComposedModel) and model.shared:
        rows = []
        for row in model.join_place_table():
            members = ", ".join(row["submodel_variables"])
            rows.append(f"{row['state_variable']}: {members}")
        legend = r"\l".join(_escape(row) for row in rows) + r"\l"
        lines.append(
            f'  "join_places" [shape=note, label="Join places\\l{legend}"];'
        )

    lines.append("}")
    return "\n".join(lines)


def save_dot(model: ModelBase, path: str, title: str = "") -> None:
    """Write :func:`to_dot` output to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_dot(model, title))
