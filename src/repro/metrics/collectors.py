"""Auxiliary measurement probes beyond the paper's three headline metrics.

* :func:`per_vm_blocked_fraction` — fraction of time each VM spends
  blocked at a barrier: the *synchronization latency* the co-schedulers
  exist to reduce, measured directly instead of inferred from VCPU
  utilization.
* :func:`workloads_completed` — impulse-style throughput counter per
  VM (completed generations), for sanity-checking that utilization
  differences translate into throughput differences.
* :class:`StateTimeline` — per-tick timeline of every VCPU's status,
  for debugging schedules and for the examples' Gantt-style output.
* :func:`mean_spin_fraction` / :func:`mean_goodput` — measurements for
  the critical-section extension: spin waste (BUSY ticks burned waiting
  on a preempted lock holder) and productive utilization.
"""

from __future__ import annotations

from typing import Dict, List

from ..san import ComposedModel, ImpulseReward, RateReward, RatioRateReward
from ..schedulers.interface import VCPUStatus
from ..vmm.system import SCHEDULER_NAME, slot_value_place, vcpu_label


def per_vm_blocked_fraction(system: ComposedModel, warmup: float = 0.0) -> Dict[str, RateReward]:
    """One rate reward per VM measuring time spent barrier-blocked.

    Returns:
        Mapping ``"blocked_fraction[<vm_name>]"`` -> reward.
    """
    rewards: Dict[str, RateReward] = {}
    for vm_name in system.vm_names:
        blocked = system.place(f"{vm_name}.Blocked")
        name = f"blocked_fraction[{vm_name}]"
        rewards[name] = RateReward(
            name,
            lambda blocked=blocked: 1.0 if blocked.tokens > 0 else 0.0,
            warmup=warmup,
        )
    return rewards


def workloads_generated(system: ComposedModel, warmup: float = 0.0) -> Dict[str, ImpulseReward]:
    """One impulse reward per VM counting workload generations.

    Matches completions of each VM's ``WL_gen`` activity, whose
    qualified name ends with ``<vm_name>.Workload_Generator.WL_gen``.
    """
    rewards: Dict[str, ImpulseReward] = {}
    for vm_name in system.vm_names:
        suffix = f"{vm_name}.Workload_Generator.WL_gen"
        name = f"workloads_generated[{vm_name}]"
        rewards[name] = ImpulseReward(
            name,
            lambda qualified, suffix=suffix: qualified.endswith(suffix),
            warmup=warmup,
        )
    return rewards


def workloads_completed(system: ComposedModel, warmup: float = 0.0) -> Dict[str, ImpulseReward]:
    """Per-VCPU throughput: jobs finished on each VCPU.

    A job completes on the ``Processing_load`` firing that takes the
    VCPU's ``remaining_load`` to zero.  Each reward matches one VCPU's
    ``Processing_load`` completions and adds 1 only when the slot shows
    a freshly completed load (the impulse value is evaluated right
    after the firing, so ``remaining_load == 0`` identifies completion).

    Returns:
        Mapping ``"workloads_completed[VCPU<i>.<k>]"`` -> reward.  Sum a
        VM's entries for VM-level throughput.
    """
    rewards: Dict[str, ImpulseReward] = {}
    for g, (vm_id, vcpu_index) in enumerate(system.slot_map):
        vm_name = system.vm_names[vm_id]
        suffix = f".{vm_name}.VCPU{vcpu_index + 1}.Processing_load"
        slot = slot_value_place(system, g)
        name = f"workloads_completed[{vcpu_label(system, g)}]"
        rewards[name] = ImpulseReward(
            name,
            lambda qualified, suffix=suffix: qualified.endswith(suffix),
            lambda slot=slot: 1.0 if slot.value["remaining_load"] == 0 else 0.0,
            warmup=warmup,
        )
    return rewards


def _lock_probes(system: ComposedModel):
    """Per-VCPU (slot_place, lock_place, owner_id) triples.

    1-VCPU VMs have no shared lock (they cannot contend with
    themselves) and never spin, so their lock place is ``None``.
    """
    probes = []
    for g, (vm_id, vcpu_index) in enumerate(system.slot_map):
        vm_name = system.vm_names[vm_id]
        slot = slot_value_place(system, g)
        if system.topology[vm_id] > 1:
            lock = system.place(f"{vm_name}.Lock")
        else:
            lock = None
        probes.append((slot, lock, vcpu_index + 1))
    return probes


def _is_spinning(slot, lock, owner_id) -> bool:
    if lock is None:
        return False
    value = slot.value
    return (
        value["status"] == VCPUStatus.BUSY
        and value["critical"] == 1
        and lock.value is not None
        and lock.value != owner_id
    )


def mean_spin_fraction(system: ComposedModel, warmup: float = 0.0) -> RateReward:
    """Fraction of time the average VCPU burns spinning on the VM lock.

    Zero for barrier-only workloads; under
    :class:`~repro.workloads.LockingWorkloadModel` this is the direct
    cost of lock-holder preemption (paper §II.B) — co-schedulers should
    drive it toward zero, sibling-oblivious schedulers should not.
    """
    probes = _lock_probes(system)

    def rate() -> float:
        spinning = sum(1 for slot, lock, me in probes if _is_spinning(slot, lock, me))
        return spinning / len(probes)

    return RateReward("spin_fraction", rate, warmup=warmup)


def mean_goodput(system: ComposedModel, warmup: float = 0.0) -> RatioRateReward:
    """Productive BUSY time over ACTIVE time (spin-corrected utilization).

    Equals the paper's VCPU utilization when no critical sections
    exist; with them, it subtracts the spin waste — the metric that
    actually separates schedulers in the lock-holder-preemption study.
    """
    probes = _lock_probes(system)

    def productive_rate() -> float:
        productive = sum(
            1
            for slot, lock, me in probes
            if slot.value["status"] == VCPUStatus.BUSY
            and not _is_spinning(slot, lock, me)
        )
        return productive / len(probes)

    def active_rate() -> float:
        active = sum(
            1 for slot, _, _ in probes if slot.value["status"] in VCPUStatus.ACTIVE
        )
        return active / len(probes)

    return RatioRateReward("goodput", productive_rate, active_rate, warmup=warmup)


def spin_tick_counts(system: ComposedModel) -> Dict[str, int]:
    """Raw ``Spin_ticks`` counters per VCPU (read after a run)."""
    counts = {}
    for g, (vm_id, vcpu_index) in enumerate(system.slot_map):
        vm_name = system.vm_names[vm_id]
        place = system.place(f"{vm_name}.VCPU{vcpu_index + 1}.Spin_ticks")
        counts[vcpu_label(system, g)] = place.tokens
    return counts


class StateTimeline:
    """Records every VCPU's status at each hypervisor tick.

    Attach by calling :meth:`sample` from test/example code after each
    ``sim.run`` step, or use :meth:`watch` to sample on a time grid.

    Example:
        >>> timeline = StateTimeline(system)
        >>> for t in range(1, 101):
        ...     sim.run(until=t)
        ...     timeline.sample(t)  # doctest: +SKIP
    """

    def __init__(self, system: ComposedModel) -> None:
        self._labels = [vcpu_label(system, g) for g in range(len(system.slot_map))]
        self._slots = [slot_value_place(system, g) for g in range(len(system.slot_map))]
        self._rows: List[Dict[str, object]] = []

    def sample(self, time: float) -> None:
        """Record one row of (time, status per VCPU)."""
        row: Dict[str, object] = {"time": time}
        for label, slot in zip(self._labels, self._slots):
            row[label] = slot.value["status"]
        self._rows.append(row)

    def rows(self) -> List[Dict[str, object]]:
        return list(self._rows)

    def series(self, label: str) -> List[str]:
        """The status series of one VCPU (by paper label, e.g. 'VCPU1.2')."""
        if label not in self._labels:
            raise KeyError(f"unknown VCPU label {label!r}; known: {self._labels}")
        return [str(row[label]) for row in self._rows]

    def active_fraction(self, label: str) -> float:
        """Fraction of samples in which the VCPU was ACTIVE."""
        series = self.series(label)
        if not series:
            return 0.0
        return sum(1 for s in series if s in ("READY", "BUSY")) / len(series)

    def __len__(self) -> int:
        return len(self._rows)
