"""Replication statistics: means, confidence intervals, fairness.

The paper reports every figure "with 95% confidence level and < 0.1
confidence interval", estimated over independent simulation
replications — the standard Mobius simulator workflow.  This module
provides the estimators:

* :class:`RunningStats` — Welford's online mean/variance (numerically
  stable, single pass);
* :func:`confidence_interval` — Student-t interval over a sample;
* :class:`ReplicationEstimator` — feeds replications in one at a time
  and answers "is the half-width small enough yet?";
* :class:`ConvergenceMonitor` — the one-pass (Welford) multi-metric
  stopping rule the experiment runner and sweep scheduler use; exact
  same values as :func:`confidence_interval` over every prefix;
* :func:`jain_fairness` — Jain's fairness index, used by the fairness
  analyses around Figure 8.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

try:  # scipy is optional: it is only used for t.ppf, which has a
    # stdlib fallback below (bisection on the incomplete-beta t CDF).
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover - exercised by masking scipy in tests
    _scipy_stats = None

from ..errors import ConfigurationError, StatisticsError


class RunningStats:
    """Welford's online algorithm for mean and variance.

    Example:
        >>> rs = RunningStats()
        >>> for x in [1.0, 2.0, 3.0]:
        ...     rs.push(x)
        >>> rs.mean
        2.0
        >>> round(rs.variance, 6)
        1.0
    """

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def push(self, value: float) -> None:
        """Add one observation."""
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)

    @property
    def n(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        if self._n == 0:
            raise StatisticsError("mean of zero observations")
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance (n-1 denominator)."""
        if self._n < 2:
            raise StatisticsError("variance needs at least two observations")
        return self._m2 / (self._n - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def standard_error(self) -> float:
        """Standard error of the mean."""
        return self.stddev / math.sqrt(self._n)


def _log_beta(a: float, b: float) -> float:
    return math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (modified Lentz)."""
    max_iterations, eps, fpmin = 300, 3e-16, 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < fpmin:
        d = fpmin
    d = 1.0 / d
    h = d
    for m in range(1, max_iterations + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < fpmin:
            d = fpmin
        c = 1.0 + aa / c
        if abs(c) < fpmin:
            c = fpmin
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < fpmin:
            d = fpmin
        c = 1.0 + aa / c
        if abs(c) < fpmin:
            c = fpmin
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < eps:
            break
    return h


def _betainc(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    front = math.exp(a * math.log(x) + b * math.log1p(-x) - _log_beta(a, b))
    # Use the continued fraction on whichever side converges fast.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def _t_cdf(x: float, df: int) -> float:
    """Student-t CDF via the incomplete beta identity."""
    if x == 0.0:
        return 0.5
    tail = 0.5 * _betainc(df / 2.0, 0.5, df / (df + x * x))
    return 1.0 - tail if x > 0.0 else tail


def _t_ppf_fallback(p: float, df: int) -> float:
    """Inverse Student-t CDF without scipy.

    Expands a bracket by doubling, then bisects the incomplete-beta CDF
    to the last representable float — agreement with ``scipy.stats.t.ppf``
    is within 1e-9 over the confidence levels the framework uses.
    """
    if p == 0.5:
        return 0.0
    if p < 0.5:
        return -_t_ppf_fallback(1.0 - p, df)
    lo, hi = 0.0, 1.0
    while _t_cdf(hi, df) < p:
        hi *= 2.0
        if hi > 1e300:
            return math.inf
    for _ in range(300):
        mid = 0.5 * (lo + hi)
        if mid == lo or mid == hi:
            break
        if _t_cdf(mid, df) < p:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def t_quantile(confidence: float, df: int) -> float:
    """Two-sided Student-t critical value for the given confidence level.

    Uses ``scipy.stats.t.ppf`` when scipy is importable; otherwise a
    pure-stdlib inverse (bisection on the incomplete-beta CDF) that
    matches scipy to within 1e-9.
    """
    if not 0 < confidence < 1:
        raise StatisticsError(f"confidence must be in (0, 1), got {confidence}")
    if df < 1:
        raise StatisticsError(f"degrees of freedom must be >= 1, got {df}")
    p = 0.5 + confidence / 2.0
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(p, df))
    return _t_ppf_fallback(p, df)


@lru_cache(maxsize=256)
def _t_quantile_cached(confidence: float, df: int) -> float:
    """Memoized :func:`t_quantile` — the stopping rule asks for the same
    (confidence, df) pairs over and over, and ``scipy.stats.t.ppf`` is
    by far the most expensive term of a half-width."""
    return t_quantile(confidence, df)


def confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """Student-t confidence interval over a sample.

    Returns:
        ``(mean, half_width)`` — the interval is mean +/- half_width.

    Raises:
        StatisticsError: with fewer than two observations (no variance
            estimate exists).
    """
    if len(values) < 2:
        raise StatisticsError(
            f"a confidence interval needs >= 2 replications, got {len(values)}"
        )
    rs = RunningStats()
    for value in values:
        rs.push(value)
    half_width = _t_quantile_cached(confidence, rs.n - 1) * rs.standard_error()
    return rs.mean, half_width


class ConvergenceMonitor:
    """Single-pass replication stopping rule over many metrics at once.

    The experiment runner used to recompute :func:`confidence_interval`
    from scratch over *all* samples after every replication — an O(n²)
    stopping check.  This monitor is the one-pass replacement: one
    Welford :class:`RunningStats` per watched metric, fed each
    replication's metrics exactly once, in replication order.  Because
    :func:`confidence_interval` itself is Welford-based, the half-width
    the monitor sees at prefix length *k* is bit-identical to
    ``confidence_interval(values[:k])`` — the stopping decisions (and
    therefore the included sample sets) cannot drift.

    ``cut`` is the smallest prefix length >= ``min_replications`` whose
    watched half-widths all drop below the target; each prefix length
    is judged exactly once, when its last sample arrives, which is
    sound because a prefix's samples never change after the fact.

    The sweep scheduler also reads :meth:`distance` — how far the
    worst watched metric currently is from the half-width target — to
    rank unconverged points for the next replication grant.
    """

    def __init__(
        self,
        watch_metrics: Sequence[str],
        confidence: float = 0.95,
        target_half_width: float = 0.1,
        min_replications: int = 2,
    ) -> None:
        if not 0 < confidence < 1:
            raise StatisticsError(f"confidence must be in (0, 1), got {confidence}")
        if target_half_width <= 0:
            raise StatisticsError(
                f"target_half_width must be > 0, got {target_half_width}"
            )
        self.watch_metrics = list(watch_metrics)
        self.confidence = confidence
        self.target_half_width = target_half_width
        self.min_replications = max(2, min_replications)
        self._stats: Dict[str, RunningStats] = {
            name: RunningStats() for name in self.watch_metrics
        }
        self._n = 0
        self._cut: Optional[int] = None

    @property
    def n(self) -> int:
        """Samples consumed so far."""
        return self._n

    @property
    def cut(self) -> Optional[int]:
        """Smallest converged prefix length, or None if none yet."""
        return self._cut

    def push(self, metrics: Mapping[str, float]) -> Optional[int]:
        """Consume one replication's metrics; returns the cut, if any."""
        for name in self.watch_metrics:
            if name not in metrics:
                raise ConfigurationError(
                    f"watched metric {name!r} is not produced by this system; "
                    f"available: {sorted(metrics)}"
                )
            self._stats[name].push(metrics[name])
        self._n += 1
        if self._cut is None and self._n >= self.min_replications:
            if all(
                half_width < self.target_half_width
                for half_width in self.half_widths().values()
            ):
                self._cut = self._n
        return self._cut

    def half_widths(self) -> Dict[str, float]:
        """Current CI half-width per watched metric (inf below 2 samples)."""
        if self._n < 2:
            return {name: math.inf for name in self.watch_metrics}
        t = _t_quantile_cached(self.confidence, self._n - 1)
        return {
            name: t * rs.standard_error() for name, rs in self._stats.items()
        }

    def distance(self) -> float:
        """How far the worst watched metric is from the target (>= 0).

        Infinite until a variance estimate exists; 0.0 once converged.
        The sweep scheduler dispatches the next replication to the point
        with the largest distance.
        """
        if self._cut is not None:
            return 0.0
        if self._n < 2:
            return math.inf
        return max(
            max(half_width - self.target_half_width, 0.0)
            for half_width in self.half_widths().values()
        )


class ReplicationEstimator:
    """Sequential stopping rule: replicate until the CI is tight enough.

    Mirrors the Mobius simulator's behaviour the paper relies on: keep
    adding independent replications until the confidence interval
    half-width drops below the target (here: the paper's "< 0.1").

    Example:
        >>> est = ReplicationEstimator(confidence=0.95, target_half_width=0.1)
        >>> for x in [0.50, 0.52, 0.51, 0.49, 0.50]:
        ...     est.push(x)
        >>> est.satisfied(min_replications=5)
        True
    """

    def __init__(self, confidence: float = 0.95, target_half_width: float = 0.1) -> None:
        if not 0 < confidence < 1:
            raise StatisticsError(f"confidence must be in (0, 1), got {confidence}")
        if target_half_width <= 0:
            raise StatisticsError(
                f"target_half_width must be > 0, got {target_half_width}"
            )
        self.confidence = confidence
        self.target_half_width = target_half_width
        self.values: List[float] = []

    def push(self, value: float) -> None:
        """Record one replication's result."""
        self.values.append(float(value))

    @property
    def n(self) -> int:
        return len(self.values)

    def estimate(self) -> Tuple[float, float]:
        """Current ``(mean, half_width)``."""
        return confidence_interval(self.values, self.confidence)

    def satisfied(self, min_replications: int = 2) -> bool:
        """True once enough replications give a tight enough interval."""
        if self.n < max(2, min_replications):
            return False
        _, half_width = self.estimate()
        return half_width < self.target_half_width


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1].

    Equal allocations score 1; the index degrades toward 1/n as the
    allocation concentrates on a single party.  Used to quantify the
    scheduling fairness the paper eyeballs in Figure 8.
    """
    if not values:
        raise StatisticsError("fairness index of zero allocations")
    if any(v < 0 for v in values):
        raise StatisticsError("fairness index needs non-negative allocations")
    total = sum(values)
    squares = sum(v * v for v in values)
    if total == 0 or squares == 0:
        # All-zero allocations are trivially fair; squares can also
        # underflow to zero for denormal inputs even when total does not.
        return 1.0
    return min(1.0, (total * total) / (len(values) * squares))
