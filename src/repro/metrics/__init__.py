"""Measurement: reward definitions, replication statistics, probes."""

from .collectors import (
    StateTimeline,
    mean_goodput,
    mean_spin_fraction,
    per_vm_blocked_fraction,
    spin_tick_counts,
    workloads_completed,
    workloads_generated,
)
from .longrun import (
    BatchMeansEstimator,
    effective_warmup_for,
    moving_average,
    welch_warmup,
)
from .rewards import (
    AVAILABILITY,
    PCPU_UTILIZATION,
    VCPU_BUSY_FRACTION,
    VCPU_UTILIZATION,
    mean_pcpu_utilization,
    mean_vcpu_availability,
    mean_vcpu_busy_fraction,
    mean_vcpu_utilization,
    per_vcpu_availability,
    per_vcpu_utilization,
    standard_rewards,
)
from .stats import (
    ConvergenceMonitor,
    ReplicationEstimator,
    RunningStats,
    confidence_interval,
    jain_fairness,
    t_quantile,
)

__all__ = [
    "AVAILABILITY",
    "PCPU_UTILIZATION",
    "VCPU_UTILIZATION",
    "VCPU_BUSY_FRACTION",
    "per_vcpu_availability",
    "mean_vcpu_availability",
    "mean_pcpu_utilization",
    "per_vcpu_utilization",
    "mean_vcpu_utilization",
    "mean_vcpu_busy_fraction",
    "standard_rewards",
    "per_vm_blocked_fraction",
    "mean_spin_fraction",
    "mean_goodput",
    "spin_tick_counts",
    "workloads_generated",
    "workloads_completed",
    "StateTimeline",
    "RunningStats",
    "BatchMeansEstimator",
    "moving_average",
    "welch_warmup",
    "effective_warmup_for",
    "confidence_interval",
    "t_quantile",
    "ConvergenceMonitor",
    "ReplicationEstimator",
    "jain_fairness",
]
