"""The paper's reward variables, as rate rewards over the system marking.

Section IV defines three metrics, each "obtained by using a reward
variable (in the SAN model)":

* **VCPU Availability** (Fig. 8) — "the average portion of time that a
  VCPU is in the ACTIVE state": indicator of status in {READY, BUSY}.
* **PCPU Utilization** (Fig. 9) — "the portion of time that a PCPU is
  assigned to VCPUs", averaged over all PCPUs.
* **VCPU Utilization** (Fig. 10) — "the portion of time that a VCPU is
  used to process workloads".  Its reward variable "monitors the READY
  and BUSY states" because the metric is the *ratio* BUSY time /
  ACTIVE time: processing time normalized by the time the VCPU held a
  PCPU at all.  (The total-time-normalized BUSY fraction is also
  exposed, as ``vcpu_busy_fraction``, since it is capped by
  availability and therefore mostly restates Figure 8.)

Each factory returns :class:`repro.san.RateReward` objects whose rates
are declarative :mod:`repro.san.exprs` expressions over the system's
places — compiled to specialized evaluators that are bit-identical to
the hand-written closures they replaced (indicators are ``bool * 1.0``,
means sum ``bool * 1`` counts and divide by the population size, the
exact float operations of the old ``sum(...)/len(...)`` idiom).  Attach
them to a simulator with ``sim.add_reward`` and read
``reward.time_average()`` after the run.

Metric naming convention (used across the experiment runner, results
tables, and benches):

* ``vcpu_availability[VCPU<i>.<k>]`` — per-VCPU, paper numbering;
* ``vcpu_availability`` — average over all VCPUs;
* ``pcpu_utilization`` — average over all PCPUs;
* ``vcpu_utilization`` and ``vcpu_utilization[VCPU<i>.<k>]``.
"""

from __future__ import annotations

from typing import Dict, List

from ..san import ComposedModel, RateReward, RatioRateReward
from ..san import exprs as E
from ..san.exprs import Expr
from ..schedulers.interface import PCPUState, VCPUStatus
from ..vmm.system import pcpus_place, slot_value_place, vcpu_label

AVAILABILITY = "vcpu_availability"
PCPU_UTILIZATION = "pcpu_utilization"
VCPU_UTILIZATION = "vcpu_utilization"
VCPU_BUSY_FRACTION = "vcpu_busy_fraction"


def _slot_active(slot) -> Expr:
    """Boolean: the slot's VCPU holds a PCPU (READY or BUSY)."""
    return E.isin(E.field(slot, "status"), VCPUStatus.ACTIVE)


def _slot_busy(slot) -> Expr:
    """Boolean: the slot's VCPU is processing a workload."""
    return E.field(slot, "status") == E.const(VCPUStatus.BUSY)


def _mean_count(parts: List[Expr]) -> Expr:
    """``sum(count(p) for p in parts) / len(parts)`` as an expression."""
    total = E.count(parts[0])
    for part in parts[1:]:
        total = total + E.count(part)
    return total / E.const(len(parts))


def per_vcpu_availability(system: ComposedModel, warmup: float = 0.0) -> List[RateReward]:
    """One availability reward per VCPU, named with the paper's labels."""
    rewards = []
    for g in range(len(system.slot_map)):
        slot = slot_value_place(system, g)
        rewards.append(
            RateReward(
                f"{AVAILABILITY}[{vcpu_label(system, g)}]",
                expr=E.indicator(_slot_active(slot)),
                warmup=warmup,
            )
        )
    return rewards


def mean_vcpu_availability(system: ComposedModel, warmup: float = 0.0) -> RateReward:
    """Availability averaged over all VCPUs."""
    slots = [slot_value_place(system, g) for g in range(len(system.slot_map))]
    return RateReward(
        AVAILABILITY,
        expr=_mean_count([_slot_active(slot) for slot in slots]),
        warmup=warmup,
    )


def mean_pcpu_utilization(system: ComposedModel, warmup: float = 0.0) -> RateReward:
    """The averaged utilization of all PCPUs (paper Figure 9)."""
    pcpus = pcpus_place(system)
    assigned = [
        E.field(pcpus, i, "state") == E.const(PCPUState.ASSIGNED)
        for i in range(len(pcpus.value))
    ]
    return RateReward(PCPU_UTILIZATION, expr=_mean_count(assigned), warmup=warmup)


def per_vcpu_utilization(system: ComposedModel, warmup: float = 0.0) -> List[RatioRateReward]:
    """One BUSY/ACTIVE ratio reward per VCPU (paper's VCPU Utilization).

    A VCPU that is never ACTIVE reports 0.0 (it never processed
    anything), matching how Figure 8/10 treat the co-start-starved VM.
    """
    rewards = []
    for g in range(len(system.slot_map)):
        slot = slot_value_place(system, g)
        rewards.append(
            RatioRateReward(
                f"{VCPU_UTILIZATION}[{vcpu_label(system, g)}]",
                num_expr=E.indicator(_slot_busy(slot)),
                den_expr=E.indicator(_slot_active(slot)),
                warmup=warmup,
            )
        )
    return rewards


def mean_vcpu_utilization(system: ComposedModel, warmup: float = 0.0) -> RatioRateReward:
    """VCPU utilization over all VCPUs (paper Figure 10).

    Aggregated as total BUSY time / total ACTIVE time across the
    system's VCPUs — the ratio of means, which stays well defined even
    when some VCPU is never scheduled.
    """
    slots = [slot_value_place(system, g) for g in range(len(system.slot_map))]
    return RatioRateReward(
        VCPU_UTILIZATION,
        num_expr=_mean_count([_slot_busy(slot) for slot in slots]),
        den_expr=_mean_count([_slot_active(slot) for slot in slots]),
        warmup=warmup,
    )


def mean_vcpu_busy_fraction(system: ComposedModel, warmup: float = 0.0) -> RateReward:
    """BUSY time over *total* time, averaged over VCPUs.

    A throughput-flavoured companion to the paper's utilization: it is
    bounded by availability, so it mixes Figure 8 and Figure 10 into
    one number.  Exposed for the ablation benches.
    """
    slots = [slot_value_place(system, g) for g in range(len(system.slot_map))]
    return RateReward(
        VCPU_BUSY_FRACTION,
        expr=_mean_count([_slot_busy(slot) for slot in slots]),
        warmup=warmup,
    )


def standard_rewards(system: ComposedModel, warmup: float = 0.0) -> Dict[str, RateReward]:
    """The full reward set the experiment runner attaches by default.

    Returns:
        Mapping of metric name to reward: per-VCPU availability and
        utilization, plus the three system-wide averages.
    """
    rewards: Dict[str, RateReward] = {}
    for reward in per_vcpu_availability(system, warmup):
        rewards[reward.name] = reward
    for reward in per_vcpu_utilization(system, warmup):
        rewards[reward.name] = reward
    for reward in (
        mean_vcpu_availability(system, warmup),
        mean_pcpu_utilization(system, warmup),
        mean_vcpu_utilization(system, warmup),
        mean_vcpu_busy_fraction(system, warmup),
    ):
        rewards[reward.name] = reward
    return rewards
