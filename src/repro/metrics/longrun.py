"""Single-long-run output analysis: batch means and Welch's procedure.

The paper (like Mobius) uses independent replications; for expensive
configurations a single long run is often cheaper.  Two standard
techniques:

* :class:`BatchMeansEstimator` — chop one long observation series into
  ``num_batches`` contiguous batches; if batches are long enough to be
  approximately uncorrelated, their means are i.i.d.-ish and a
  Student-t interval over them is valid.  The lag-1 autocorrelation of
  the batch means is exposed so callers can check that assumption.
* :func:`welch_warmup` — Welch's graphical procedure, automated:
  average several replications' time series pointwise, smooth with a
  moving window, and report the first index where the smoothed curve
  stays within a tolerance band of its final value.  Used to pick the
  ``warmup`` parameter honestly instead of guessing.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..errors import StatisticsError
from .stats import confidence_interval


class BatchMeansEstimator:
    """Confidence intervals from one long run via batch means.

    Example:
        >>> est = BatchMeansEstimator(num_batches=10)
        >>> for value in range(1000):
        ...     est.push(float(value % 7))
        >>> mean, half = est.estimate()
    """

    def __init__(self, num_batches: int = 20) -> None:
        if num_batches < 2:
            raise StatisticsError(f"need >= 2 batches, got {num_batches}")
        self.num_batches = int(num_batches)
        self._values: List[float] = []

    def push(self, value: float) -> None:
        """Record one per-tick (or per-event) observation."""
        self._values.append(float(value))

    def extend(self, values: Sequence[float]) -> None:
        """Record many observations at once."""
        self._values.extend(float(v) for v in values)

    @property
    def n(self) -> int:
        return len(self._values)

    def batch_means(self) -> List[float]:
        """Means of the ``num_batches`` contiguous batches.

        Trailing observations that do not fill a whole batch are
        dropped (standard practice: equal-size batches).

        Raises:
            StatisticsError: with fewer than one observation per batch.
        """
        size = len(self._values) // self.num_batches
        if size < 1:
            raise StatisticsError(
                f"{len(self._values)} observations cannot fill "
                f"{self.num_batches} batches"
            )
        return [
            sum(self._values[i * size : (i + 1) * size]) / size
            for i in range(self.num_batches)
        ]

    def estimate(self, confidence: float = 0.95) -> Tuple[float, float]:
        """``(mean, half_width)`` over the batch means."""
        return confidence_interval(self.batch_means(), confidence)

    def lag1_autocorrelation(self) -> float:
        """Lag-1 autocorrelation of the batch means.

        Values near zero support the independence assumption; large
        positive values mean the batches are too short.
        """
        means = self.batch_means()
        n = len(means)
        mean = sum(means) / n
        denominator = sum((m - mean) ** 2 for m in means)
        if denominator == 0:
            return 0.0
        numerator = sum(
            (means[i] - mean) * (means[i + 1] - mean) for i in range(n - 1)
        )
        return numerator / denominator


def moving_average(series: Sequence[float], window: int) -> List[float]:
    """Centered moving average with shrinking windows at the edges.

    This is the smoother Welch's procedure prescribes: at position i,
    average over ``series[i-w : i+w+1]`` with ``w = min(window, i,
    n-1-i)``.
    """
    if window < 0:
        raise StatisticsError(f"window must be >= 0, got {window}")
    n = len(series)
    smoothed = []
    for i in range(n):
        w = min(window, i, n - 1 - i)
        segment = series[i - w : i + w + 1]
        smoothed.append(sum(segment) / len(segment))
    return smoothed


def welch_warmup(
    replications: Sequence[Sequence[float]],
    window: int = 10,
    tolerance: float = 0.05,
) -> int:
    """Estimate the warm-up length from per-replication time series.

    Args:
        replications: one observation series per replication, equal
            lengths (truncated to the shortest).
        window: half-width of the moving-average smoother.
        tolerance: relative band around the terminal value within
            which the smoothed mean must *stay* to count as converged.

    Returns:
        The first index from which the smoothed averaged series remains
        within ``tolerance`` of its *terminal level* — a defensible
        ``warmup`` setting.  The terminal level is the mean of the
        smoothed series' second half (anchoring on the single final
        point is fragile when the run happens to end in a dip of a
        periodic series).  Returns 0 for an already-stationary series.

    Raises:
        StatisticsError: on empty input.
    """
    if not replications or not replications[0]:
        raise StatisticsError("welch_warmup needs at least one non-empty series")
    length = min(len(series) for series in replications)
    averaged = [
        sum(series[i] for series in replications) / len(replications)
        for i in range(length)
    ]
    smoothed = moving_average(averaged, window)
    tail = smoothed[length // 2 :]
    final = sum(tail) / len(tail)
    band = max(abs(final) * tolerance, 1e-12)
    # Walk backwards: find the last index that is OUT of the band.
    last_bad = -1
    for i in range(length - 1, -1, -1):
        if abs(smoothed[i] - final) > band:
            last_bad = i
            break
    return last_bad + 1


def effective_warmup_for(
    metric_series: Sequence[Sequence[float]],
    window: int = 10,
    tolerance: float = 0.05,
    safety_factor: float = 1.5,
) -> int:
    """Welch warm-up with a safety margin, rounded up.

    ``math.ceil(welch_warmup(...) * safety_factor)`` — the standard
    practice of over-deleting slightly rather than biasing the steady
    state.
    """
    if safety_factor < 1.0:
        raise StatisticsError(f"safety_factor must be >= 1, got {safety_factor}")
    return math.ceil(welch_warmup(metric_series, window, tolerance) * safety_factor)
