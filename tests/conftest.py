"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core import SystemSpec, VMSpec, WorkloadSpec
from repro.des import StreamFactory


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite the golden-trace fixtures in tests/golden/fixtures "
        "instead of comparing against them (review the diff like code)",
    )


@pytest.fixture
def rng():
    """A deterministic random stream for sampling tests."""
    return random.Random(12345)


@pytest.fixture
def streams():
    """A deterministic stream factory (root seed 7, replication 0)."""
    return StreamFactory(root_seed=7, replication=0)


@pytest.fixture
def paper_fig8_spec():
    """The paper's Figure 8 setup: VMs 2+1+1, sync 1:5 (PCPUs vary)."""
    return SystemSpec(
        vms=[VMSpec(2), VMSpec(1), VMSpec(1)],
        pcpus=2,
        scheduler="rrs",
        sim_time=600,
        warmup=100,
    )


@pytest.fixture
def small_spec():
    """A tiny 2-VM system for fast end-to-end tests."""
    return SystemSpec(
        vms=[VMSpec(2), VMSpec(1)],
        pcpus=2,
        scheduler="rrs",
        sim_time=300,
        warmup=50,
    )


def make_spec(topology, pcpus, scheduler="rrs", sync_ratio=5, sim_time=600,
              warmup=100, **scheduler_params):
    """Helper used across integration tests to build specs tersely."""
    return SystemSpec(
        vms=[VMSpec(n, WorkloadSpec(sync_ratio=sync_ratio)) for n in topology],
        pcpus=pcpus,
        scheduler=scheduler,
        scheduler_params=scheduler_params,
        sim_time=sim_time,
        warmup=warmup,
    )
