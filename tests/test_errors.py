"""Tests for the exception hierarchy contract."""

import pytest

from repro.errors import (
    CheckpointError,
    ConfigurationError,
    ModelError,
    RegistryError,
    ReplicationError,
    ReproError,
    SchedulingError,
    SimulationError,
    StatisticsError,
)

ALL_ERRORS = [
    ConfigurationError,
    ModelError,
    SimulationError,
    SchedulingError,
    RegistryError,
    StatisticsError,
    ReplicationError,
    CheckpointError,
]


@pytest.mark.parametrize("error", ALL_ERRORS)
def test_every_error_derives_from_repro_error(error):
    assert issubclass(error, ReproError)
    assert issubclass(error, Exception)


def test_one_except_clause_catches_everything():
    for error in ALL_ERRORS:
        try:
            raise error("boom")
        except ReproError as caught:
            assert "boom" in str(caught)


def test_errors_are_distinct_types():
    # Catching ModelError must not swallow SchedulingError etc.
    with pytest.raises(SchedulingError):
        try:
            raise SchedulingError("x")
        except (ConfigurationError, ModelError, SimulationError):
            pytest.fail("wrong handler caught the error")
