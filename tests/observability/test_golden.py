"""Unit tests for golden-trace normalization and diffing."""

from __future__ import annotations

from repro.observability import GOLDEN_KINDS, GOLDEN_SCHEMA, diff_traces, normalize
from repro.observability import trace as trace_mod
from repro.observability.golden import dump_jsonl, load_jsonl


def sched_in(t, seq, **over):
    data = {"kind": trace_mod.SCHED_IN, "t": t, "seq": seq, "vcpu": 0,
            "vm": 0, "vcpu_index": 0, "pcpu": 0, "timeslice": 30}
    data.update(over)
    return data


def test_normalize_keeps_only_golden_kinds():
    records = [
        {"kind": trace_mod.RUN_START, "t": 0.0, "seq": 0, "scheduler": "rrs"},
        sched_in(1.0, 1),
        {"kind": trace_mod.ACTIVITY_FIRE, "t": 1.0, "seq": 2, "activity": "A",
         "timed": True, "writes": []},
    ]
    normalized = normalize(records)
    assert [e["kind"] for e in normalized] == [trace_mod.SCHED_IN]


def test_normalize_is_tolerant_of_added_fields_and_kinds():
    baseline = normalize([sched_in(1.0, 1)])
    grown_schema = normalize([
        sched_in(1.0, 1, future_field="whatever"),
        {"kind": "future.kind", "t": 2.0, "seq": 2, "x": 1},
    ])
    assert grown_schema == baseline


def test_normalize_is_sensitive_to_value_drift():
    a = normalize([sched_in(1.0, 1, pcpu=0)])
    b = normalize([sched_in(1.0, 1, pcpu=1)])
    assert diff_traces(a, b) is not None


def test_normalize_drops_seq_but_keeps_time():
    entry = normalize([sched_in(3.25, 17)])[0]
    assert "seq" not in entry
    assert entry["t"] == 3.25


def test_diff_reports_first_divergence_with_line_number():
    golden = normalize([sched_in(1.0, 0), sched_in(2.0, 1, vcpu=1, pcpu=1)])
    actual = normalize([sched_in(1.0, 0), sched_in(2.0, 1, vcpu=2, pcpu=1)])
    message = diff_traces(actual, golden)
    assert "record 1" in message and "fixture line 2" in message


def test_diff_reports_length_mismatch():
    golden = normalize([sched_in(1.0, 0)])
    actual = normalize([sched_in(1.0, 0), sched_in(2.0, 1)])
    message = diff_traces(actual, golden)
    assert "length mismatch" in message

    assert diff_traces(golden, golden) is None


def test_fixture_roundtrip(tmp_path):
    normalized = normalize([sched_in(1.0, 0), sched_in(2.5, 1, vcpu=1)])
    path = tmp_path / "fixture.jsonl"
    dump_jsonl(str(path), normalized)
    assert load_jsonl(str(path)) == normalized


def test_golden_schema_covers_golden_kinds():
    assert set(GOLDEN_KINDS) == set(GOLDEN_SCHEMA)
    for kind in GOLDEN_KINDS:
        assert set(GOLDEN_SCHEMA[kind]) <= set(trace_mod.RECORD_FIELDS[kind])
