"""Unit tests for the SimTracer record store and its writers."""

from __future__ import annotations

import json

import pytest

from repro.core import simulate_once
from repro.errors import ConfigurationError
from repro.observability import (
    RECORD_FIELDS,
    SimTracer,
    TraceRecord,
    chrome_trace_events,
    read_jsonl,
    tracing,
)
from repro.observability import trace as trace_mod
from tests.conftest import make_spec


def test_emit_records_in_sequence():
    tracer = SimTracer()
    tracer.emit(trace_mod.SCHED_IN, time=1.0, vcpu=0, vm=0, vcpu_index=0,
                pcpu=0, timeslice=30)
    tracer.emit(trace_mod.SCHED_OUT, time=4.0, vcpu=0, vm=0, vcpu_index=0,
                pcpu=0, reason="expire")
    assert len(tracer) == 2
    assert [r.seq for r in tracer.records] == [0, 1]
    assert tracer.records[0].kind == trace_mod.SCHED_IN
    assert tracer.records[1].get("reason") == "expire"


def test_emit_without_time_uses_tracker_now():
    tracer = SimTracer()
    tracer._now = 17.5
    tracer.emit(trace_mod.PCPU_FAIL, pcpu=1, victim=None)
    assert tracer.records[0].t == 17.5


def test_kind_filter_drops_unwanted_records():
    tracer = SimTracer(kinds=(trace_mod.SCHED_IN,))
    tracer.emit(trace_mod.SCHED_IN, time=0.0, vcpu=0)
    tracer.emit(trace_mod.ACTIVITY_FIRE, time=0.0, activity="X")
    assert [r.kind for r in tracer.records] == [trace_mod.SCHED_IN]


def test_inactive_by_default():
    assert trace_mod.active() is None
    with tracing(SimTracer()) as tracer:
        assert trace_mod.active() is tracer
    assert trace_mod.active() is None


def test_tracing_nests_and_restores():
    outer, inner = SimTracer(), SimTracer()
    with tracing(outer):
        with tracing(inner):
            assert trace_mod.active() is inner
        assert trace_mod.active() is outer


def test_untraced_run_emits_nothing():
    tracer = SimTracer()
    simulate_once(make_spec((2, 1), 2, sim_time=100, warmup=0))
    assert tracer.records == []


def test_record_roundtrip_via_dict():
    record = TraceRecord(kind=trace_mod.SCHED_IN, t=3.0, seq=9,
                         data={"vcpu": 1, "pcpu": 0})
    again = TraceRecord.from_dict(record.to_dict())
    assert again == record


def test_jsonl_roundtrip(tmp_path):
    tracer = SimTracer()
    spec = make_spec((2, 1), 2, scheduler="rrs", sim_time=100, warmup=0)
    simulate_once(spec, tracer=tracer)
    path = tmp_path / "trace.jsonl"
    tracer.write(str(path), format="jsonl")
    loaded = read_jsonl(str(path))
    assert [r.to_dict() for r in loaded] == tracer.to_dicts()


def test_emitted_fields_match_schema():
    """Every record a real run emits carries exactly its schema fields."""
    tracer = SimTracer()
    spec = make_spec((2, 1), 2, scheduler="rcs", sim_time=150, warmup=0)
    simulate_once(spec, tracer=tracer)
    seen_kinds = set()
    for record in tracer.records:
        assert record.kind in RECORD_FIELDS, record.kind
        assert set(record.data) == set(RECORD_FIELDS[record.kind]), record.kind
        seen_kinds.add(record.kind)
    assert trace_mod.RUN_START in seen_kinds
    assert trace_mod.SCHED_IN in seen_kinds
    assert trace_mod.SCHED_SKEW in seen_kinds
    assert trace_mod.ACTIVITY_FIRE in seen_kinds


def test_chrome_conversion_builds_slices(tmp_path):
    tracer = SimTracer()
    spec = make_spec((2, 1), 2, scheduler="rrs", sim_time=150, warmup=0)
    simulate_once(spec, tracer=tracer)
    events = chrome_trace_events(tracer.records)
    slices = [e for e in events if e["ph"] == "X"]
    assert slices, "expected at least one complete slice"
    for event in slices:
        assert event["dur"] >= 0
        assert event["name"].startswith("VM")
    # and the full writer emits valid JSON with traceEvents
    path = tmp_path / "trace.json"
    tracer.write(str(path), format="chrome")
    payload = json.loads(path.read_text())
    assert isinstance(payload["traceEvents"], list)


def test_write_rejects_unknown_format(tmp_path):
    with pytest.raises(ConfigurationError):
        SimTracer().write(str(tmp_path / "x"), format="xml")


def test_stats_counts_by_kind():
    tracer = SimTracer()
    tracer.emit(trace_mod.SCHED_IN, time=0.0)
    tracer.emit(trace_mod.SCHED_IN, time=1.0)
    tracer.emit(trace_mod.RUN_END, time=2.0)
    stats = tracer.stats()
    assert stats["trace_records"] == 3
    assert stats["trace_kinds"][trace_mod.SCHED_IN] == 2


def test_clear_resets_sequence():
    tracer = SimTracer()
    tracer.emit(trace_mod.RUN_START, time=0.0)
    tracer.clear()
    assert tracer.records == [] and tracer._seq == 0
