"""Unit tests for the per-subsystem profiler."""

from __future__ import annotations

from repro.core import Simulation
from repro.observability import SimProfiler, profiling
from repro.observability import profile as profile_mod
from tests.conftest import make_spec


def test_counters_and_sections():
    prof = SimProfiler()
    prof.count("ticks")
    prof.count("ticks", 2)
    with prof.section("work"):
        pass
    stats = prof.stats()
    assert stats["counters"]["ticks"] == 3
    assert stats["counters"]["work"] == 1
    assert stats["seconds"]["work"] >= 0.0


def test_profiling_context_installs_and_restores():
    assert profile_mod.active() is None
    with profiling(SimProfiler()) as prof:
        assert profile_mod.active() is prof
    assert profile_mod.active() is None


def test_table_renders_every_bucket():
    prof = SimProfiler()
    with prof.section("alpha"):
        pass
    prof.count("beta", 5)
    table = prof.table()
    assert "alpha" in table and "beta" in table


def test_simulation_stats_include_profile():
    spec = make_spec((2, 1), 2, sim_time=120, warmup=0)
    sim = Simulation(spec, profile=True)
    sim.run()
    stats = sim.stats()
    seconds = stats["profile"]["seconds"]
    assert {"engine.rewards", "engine.completion", "engine.settle",
            "engine.reschedule", "vmm.scheduling_func",
            "vmm.algorithm"} <= set(seconds)
    assert stats["profile"]["counters"]["engine.events"] > 0
    # profiling must not perturb the simulation itself
    baseline = Simulation(spec).run()
    assert Simulation(spec, profile=True).run().metrics == baseline.metrics


def test_unprofiled_run_collects_nothing():
    spec = make_spec((2, 1), 2, sim_time=60, warmup=0)
    sim = Simulation(spec)
    sim.run()
    assert "profile" not in sim.stats()
