"""Unit tests for the trace invariant checker (hand-built bad traces)."""

from __future__ import annotations

from repro.observability import (
    ExclusivePCPU,
    MonotoneTime,
    SkewBound,
    StrictCoScheduling,
    TimesliceAccounting,
    TraceChecker,
    check_trace,
    standard_invariants,
)
from repro.observability import trace as trace_mod


def rec(kind, t, seq, **data):
    d = {"kind": kind, "t": t, "seq": seq}
    d.update(data)
    return d


def sched_in(t, seq, vcpu, pcpu, vm=0, vcpu_index=0, timeslice=30):
    return rec(trace_mod.SCHED_IN, t, seq, vcpu=vcpu, vm=vm,
               vcpu_index=vcpu_index, pcpu=pcpu, timeslice=timeslice)


def sched_out(t, seq, vcpu, pcpu, vm=0, vcpu_index=0, reason="decision"):
    return rec(trace_mod.SCHED_OUT, t, seq, vcpu=vcpu, vm=vm,
               vcpu_index=vcpu_index, pcpu=pcpu, reason=reason)


def run_start(seq=0, **over):
    data = dict(scheduler="rrs", topology=[2, 1], pcpus=2, replication=0,
                root_seed=0, sim_time=100, warmup=0,
                params={"timeslice": 30}, pcpu_failures=False, guard=None,
                chaos=False, engine="incremental")
    data.update(over)
    return rec(trace_mod.RUN_START, 0.0, seq, **data)


def names(violations):
    return {v.invariant for v in violations}


def check(invariant, records):
    return TraceChecker([invariant]).check(records)


class TestMonotoneTime:
    def test_accepts_monotone(self):
        assert not check(MonotoneTime(), [sched_in(1, 0, 0, 0),
                                         sched_out(2, 1, 0, 0)])

    def test_flags_backwards_time(self):
        v = check(MonotoneTime(), [sched_in(5, 0, 0, 0), sched_out(3, 1, 0, 0)])
        assert names(v) == {"monotone-time"}

    def test_run_start_resets_clock_floor(self):
        records = [run_start(0), sched_in(90, 1, 0, 0), sched_out(95, 2, 0, 0),
                   run_start(3), sched_in(1, 4, 0, 0)]
        assert not check(MonotoneTime(), records)

    def test_flags_non_increasing_seq(self):
        v = check(MonotoneTime(), [sched_in(1, 5, 0, 0), sched_out(2, 5, 0, 0)])
        assert names(v) == {"monotone-time"}


class TestExclusivePCPU:
    def test_flags_double_assignment(self):
        v = check(ExclusivePCPU(), [sched_in(1, 0, 0, 0), sched_in(1, 1, 1, 0)])
        assert names(v) == {"exclusive-pcpu"}

    def test_flags_schedule_onto_failed_pcpu(self):
        records = [rec(trace_mod.PCPU_FAIL, 1, 0, pcpu=0, victim=None),
                   sched_in(2, 1, 0, 0)]
        assert names(check(ExclusivePCPU(), records)) == {"exclusive-pcpu"}

    def test_flags_mismatched_out(self):
        v = check(ExclusivePCPU(), [sched_in(1, 0, 0, 0),
                                    sched_out(2, 1, 0, 1)])
        assert names(v) == {"exclusive-pcpu"}

    def test_flags_fail_while_hosting(self):
        records = [sched_in(1, 0, 0, 0),
                   rec(trace_mod.PCPU_FAIL, 2, 1, pcpu=0, victim=0)]
        assert names(check(ExclusivePCPU(), records)) == {"exclusive-pcpu"}

    def test_accepts_clean_rotation(self):
        records = [sched_in(1, 0, 0, 0), sched_out(2, 1, 0, 0),
                   sched_in(2, 2, 1, 0), sched_out(3, 3, 1, 0)]
        assert not check(ExclusivePCPU(), records)


class TestStrictCoScheduling:
    def test_flags_partial_gang(self):
        # VM 0 has 2 VCPUs; only one is running across a time boundary.
        records = [sched_in(1, 0, 0, 0, vm=0), sched_in(2, 1, 2, 1, vm=1)]
        inv = StrictCoScheduling([2, 1])
        assert names(check(inv, records)) == {"strict-co-scheduling"}

    def test_accepts_all_or_none(self):
        records = [sched_in(1, 0, 0, 0, vm=0), sched_in(1, 1, 1, 1, vm=0),
                   sched_out(4, 2, 0, 0, vm=0), sched_out(4, 3, 1, 1, vm=0)]
        assert not check(StrictCoScheduling([2]), records)

    def test_mid_instant_mix_is_legal(self):
        # Co-stop then co-start within one timestamp never trips it.
        records = [sched_in(1, 0, 0, 0, vm=0), sched_in(1, 1, 1, 1, vm=0),
                   sched_out(4, 2, 0, 0, vm=0), sched_out(4, 3, 1, 1, vm=0),
                   sched_in(4, 4, 0, 0, vm=0), sched_in(4, 5, 1, 1, vm=0)]
        assert not check(StrictCoScheduling([2]), records)

    def test_quarantine_disables_the_gang_check(self):
        records = [rec(trace_mod.GUARD_QUARANTINE, 1, 0, scheduler="scs",
                       faults=3),
                   sched_in(2, 1, 0, 0, vm=0), sched_in(5, 2, 2, 1, vm=1)]
        assert not check(StrictCoScheduling([2, 1]), records)


class TestSkewBound:
    def test_accepts_lag_within_bound(self):
        records = [rec(trace_mod.SCHED_SKEW, 1, 0, vm=0, max_lag=10.0,
                       catching_up=False)]
        assert not check(SkewBound(10, 5), records)

    def test_flags_lag_beyond_bound(self):
        records = [rec(trace_mod.SCHED_SKEW, 1, 0, vm=0, max_lag=18.0,
                       catching_up=True)]
        assert names(check(SkewBound(10, 5), records)) == {"skew-bound"}


class TestTimesliceAccounting:
    def test_flags_overlong_residency(self):
        records = [sched_in(0, 0, 0, 0, timeslice=30),
                   sched_out(31, 1, 0, 0, reason="decision")]
        v = check(TimesliceAccounting(), records)
        assert names(v) == {"timeslice-accounting"}

    def test_flags_early_expiry(self):
        records = [sched_in(0, 0, 0, 0, timeslice=30),
                   sched_out(20, 1, 0, 0, reason="expire")]
        v = check(TimesliceAccounting(), records)
        assert names(v) == {"timeslice-accounting"}

    def test_accepts_exact_expiry(self):
        records = [sched_in(0, 0, 0, 0, timeslice=30),
                   sched_out(30, 1, 0, 0, reason="expire")]
        assert not check(TimesliceAccounting(), records)

    def test_flags_busy_exceeding_elapsed(self):
        # Two VCPUs claim the same PCPU back to back without overlap
        # being flagged here (that's exclusive-pcpu's job), but their
        # total busy time exceeds the segment's elapsed time.
        records = [run_start(0),
                   sched_in(0, 1, 0, 0), sched_out(10, 2, 0, 0),
                   sched_in(2, 3, 1, 0), sched_out(10, 4, 1, 0)]
        v = check(TimesliceAccounting(), records)
        assert names(v) == {"timeslice-accounting"}


class TestStandardInvariants:
    def test_configures_from_run_start(self):
        base = {type(i).__name__ for i in standard_invariants([run_start()])}
        assert base == {"MonotoneTime", "ExclusivePCPU", "TimesliceAccounting"}
        scs = {type(i).__name__
               for i in standard_invariants([run_start(scheduler="scs")])}
        assert "StrictCoScheduling" in scs
        rcs = {type(i).__name__
               for i in standard_invariants([run_start(scheduler="rcs")])}
        assert "SkewBound" in rcs

    def test_scs_gang_check_skipped_under_pcpu_failures(self):
        invs = standard_invariants(
            [run_start(scheduler="scs", pcpu_failures=True)])
        assert "StrictCoScheduling" not in {type(i).__name__ for i in invs}

    def test_check_trace_end_to_end(self):
        bad = [run_start(0, scheduler="scs"),
               sched_in(1, 1, 0, 0, vm=0), sched_in(5, 2, 2, 1, vm=1)]
        violations = check_trace(bad)
        assert names(violations) == {"strict-co-scheduling"}
        assert "VM 0" in str(violations[0])
