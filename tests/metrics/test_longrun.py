"""Unit tests for batch means and Welch's warm-up procedure."""

import random

import pytest

from repro.errors import StatisticsError
from repro.metrics import (
    BatchMeansEstimator,
    effective_warmup_for,
    moving_average,
    welch_warmup,
)


class TestBatchMeans:
    def test_batches_partition_the_series(self):
        est = BatchMeansEstimator(num_batches=4)
        est.extend([1.0] * 40 + [3.0] * 40)
        means = est.batch_means()
        assert means == [1.0, 1.0, 3.0, 3.0]

    def test_trailing_remainder_dropped(self):
        est = BatchMeansEstimator(num_batches=3)
        est.extend([1.0] * 10)  # batch size 3, one value dropped
        assert len(est.batch_means()) == 3

    def test_estimate_on_iid_noise(self):
        rng = random.Random(4)
        est = BatchMeansEstimator(num_batches=20)
        est.extend([rng.gauss(5.0, 1.0) for _ in range(10_000)])
        mean, half = est.estimate()
        assert mean == pytest.approx(5.0, abs=0.1)
        assert half < 0.1

    def test_ci_covers_true_mean_most_of_the_time(self):
        covered = 0
        for seed in range(20):
            rng = random.Random(seed)
            est = BatchMeansEstimator(num_batches=10)
            est.extend([rng.uniform(0, 2) for _ in range(2_000)])
            mean, half = est.estimate()
            if abs(mean - 1.0) <= half:
                covered += 1
        assert covered >= 16  # nominal 95%, allow slack

    def test_autocorrelation_low_for_iid(self):
        rng = random.Random(9)
        est = BatchMeansEstimator(num_batches=25)
        est.extend([rng.random() for _ in range(25_000)])
        assert abs(est.lag1_autocorrelation()) < 0.4

    def test_autocorrelation_high_for_trending_series(self):
        est = BatchMeansEstimator(num_batches=10)
        est.extend([float(i) for i in range(1000)])  # strong trend
        assert est.lag1_autocorrelation() > 0.5

    def test_validation(self):
        with pytest.raises(StatisticsError):
            BatchMeansEstimator(num_batches=1)
        est = BatchMeansEstimator(num_batches=10)
        est.extend([1.0] * 5)  # fewer observations than batches
        with pytest.raises(StatisticsError):
            est.batch_means()


class TestMovingAverage:
    def test_preserves_constant_series(self):
        assert moving_average([2.0] * 5, window=2) == [2.0] * 5

    def test_smooths_noise(self):
        series = [0.0, 2.0, 0.0, 2.0, 0.0, 2.0]
        smoothed = moving_average(series, window=1)
        interior = smoothed[1:-1]
        assert all(abs(v - 1.0) < 0.7 for v in interior)

    def test_edges_use_shrinking_windows(self):
        smoothed = moving_average([1.0, 2.0, 3.0], window=5)
        assert smoothed[0] == 1.0  # window shrinks to 0 at the edge
        assert smoothed[1] == 2.0

    def test_negative_window_rejected(self):
        with pytest.raises(StatisticsError):
            moving_average([1.0], window=-1)


class TestWelchWarmup:
    def make_transient_series(self, seed, length=300, transient=60):
        rng = random.Random(seed)
        series = []
        for i in range(length):
            # Exponential approach to 1.0 plus noise.
            level = 1.0 - (1.0 - 0.2) * (0.95 ** min(i, transient) if i < transient else 0.0)
            series.append(level + rng.gauss(0, 0.02))
        return series

    def test_detects_initial_transient(self):
        replications = [self.make_transient_series(seed) for seed in range(8)]
        warmup = welch_warmup(replications, window=10, tolerance=0.05)
        assert 10 <= warmup <= 150

    def test_stationary_series_needs_no_warmup(self):
        rng = random.Random(2)
        replications = [
            [1.0 + rng.gauss(0, 0.001) for _ in range(200)] for _ in range(5)
        ]
        assert welch_warmup(replications, window=5, tolerance=0.05) == 0

    def test_never_settling_series_returns_full_length(self):
        # A pure ramp never stays near its terminal level (the mean of
        # the second half), so the answer is the full length.
        replications = [[float(i) for i in range(100)]]
        assert welch_warmup(replications, window=0, tolerance=0.001) == 100

    def test_empty_input_rejected(self):
        with pytest.raises(StatisticsError):
            welch_warmup([])

    def test_effective_warmup_applies_safety_factor(self):
        replications = [self.make_transient_series(seed) for seed in range(5)]
        base = welch_warmup(replications, window=10, tolerance=0.05)
        padded = effective_warmup_for(replications, window=10, tolerance=0.05)
        assert padded >= base

    def test_bad_safety_factor_rejected(self):
        with pytest.raises(StatisticsError):
            effective_warmup_for([[1.0, 1.0]], safety_factor=0.5)
